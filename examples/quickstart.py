#!/usr/bin/env python3
"""Quickstart: deliver 90/10 frequency shares to two co-located apps.

Builds the simulated Skylake platform, pins *leela* (90 shares) and
*cactusBSSN* (10 shares) to separate cores, runs the paper's userspace
daemon with the frequency-shares policy under a 24 W limit (low enough
that two cores actually contend for power), and prints what each app
received.

Run:  python examples/quickstart.py
"""

from repro import AppSpec, ExperimentConfig, build_stack


def main() -> None:
    config = ExperimentConfig(
        platform="skylake",
        policy="frequency-shares",
        limit_w=24.0,
        apps=(
            AppSpec("leela", shares=90),
            AppSpec("cactusBSSN", shares=10),
        ),
        tick_s=5e-3,
    )
    stack = build_stack(config)

    print(f"platform : {stack.platform.name}")
    print(f"policy   : {stack.daemon.policy.name} @ {config.limit_w:.0f} W")
    print("running 30 simulated seconds...")
    stack.engine.run(30.0)

    record = stack.daemon.history[-1]
    print(f"\npackage power: {record.package_power_w:.1f} W")
    print(f"{'app':15s} {'shares':>6s} {'freq MHz':>9s} {'GIPS':>7s}")
    for spec, label in zip(config.apps, stack.labels):
        freq = record.app_frequency_mhz[label]
        gips = record.app_ips[label] / 1e9
        print(f"{label:15s} {spec.shares:6.0f} {freq:9.0f} {gips:7.2f}")

    ld = record.app_frequency_mhz["leela#0"]
    hd = record.app_frequency_mhz["cactusBSSN#0"]
    print(
        f"\nfrequency split: {100 * ld / (ld + hd):.0f}% / "
        f"{100 * hd / (ld + hd):.0f}%  "
        "(note the floor: 90/10 is not reachable — paper Fig 9)"
    )


if __name__ == "__main__":
    main()
