#!/usr/bin/env python3
"""Power shares on Ryzen: per-core energy telemetry in action.

Only the Ryzen 1700X exposes per-core energy counters, so it is the only
platform where the paper's *power shares* policy can run.  This example
gives three different share levels to three pairs of apps on six cores
(respecting the chip's three-simultaneous-P-state limit via the built-in
selection utility), and shows per-core power tracking the share split —
alongside the policy's weakness: very different performance for apps with
different power demand.

Run:  python examples/ryzen_power_shares.py
"""

from repro import AppSpec, ExperimentConfig, build_stack
from repro.experiments.runner import standalone_reference_ips

APPS = (
    AppSpec("exchange2", shares=60),   # frequency-hungry, low demand
    AppSpec("exchange2", shares=60),
    AppSpec("cactusBSSN", shares=30),  # high demand
    AppSpec("cactusBSSN", shares=30),
    AppSpec("omnetpp", shares=10),     # memory bound, low demand
    AppSpec("omnetpp", shares=10),
)


def main() -> None:
    config = ExperimentConfig(
        platform="ryzen", policy="power-shares", limit_w=40.0,
        apps=APPS, tick_s=5e-3,
    )
    stack = build_stack(config)
    print("power shares @ 40 W on", stack.platform.name)
    stack.engine.run(45.0)

    window = [s for s in stack.daemon.history if s.time_s >= 20.0]
    n = len(window)
    total_power = sum(
        sum(s.app_power_w[label] for label in stack.labels) for s in window
    ) / n

    print(f"\n{'app':15s} {'shares':>6s} {'core W':>7s} {'power %':>8s} "
          f"{'freq MHz':>9s} {'norm perf':>9s}")
    for spec, label in zip(APPS, stack.labels):
        power = sum(s.app_power_w[label] for s in window) / n
        freq = sum(s.app_frequency_mhz[label] for s in window) / n
        base = standalone_reference_ips(stack.platform, spec.benchmark)
        perf = sum(s.app_ips[label] for s in window) / n / base
        print(f"{label:15s} {spec.shares:6.0f} {power:7.2f} "
              f"{100 * power / total_power:8.1f} {freq:9.0f} {perf:9.2f}")

    distinct = {
        round(window[-1].targets_mhz[label]) for label in stack.labels
    }
    print(f"\ndistinct P-state levels in use: {len(distinct)} "
          f"(hardware allows {stack.platform.simultaneous_pstates})")
    print("note how equal *power* does not mean equal *performance* —")
    print("the isolation weakness the paper reports for power shares.")


if __name__ == "__main__":
    main()
