#!/usr/bin/env python3
"""Thermal capping: thermald vs a per-application policy.

Paper section 2.2 points out that thermal limits can be enforced with
*global* mechanisms (RAPL) or per-core ones (DVFS), "and depending on
the mechanisms enabled ... it can have differing effects on application
performance".  This example runs a hot 10-core mix in a warm enclosure
until the 80 C trip point engages, then enforces the thermal power
target two ways:

* **thermald → RAPL**: the classic path — a global cap, so the
  high-priority apps get throttled along with everyone else;
* **thermald → frequency shares**: the same power target delivered as
  the limit of a 90/10 share policy, preserving the important apps.

Run:  python examples/thermal_capping.py
"""

from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.thermal_daemon import ThermalDaemon, ThermalDaemonConfig
from repro.core.types import ManagedApp
from repro.hw.platform import get_platform
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.sim.thermal import ThermalConfig, ThermalModel
from repro.experiments.runner import standalone_reference_ips

HOT_ENCLOSURE = ThermalConfig(ambient_c=48.0, tau_s=3.0)


def run(mode: str) -> dict:
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    apps = (
        ["leela"] * 5       # the important, low-demand class
        + ["cactusBSSN"] * 5  # the bulk heat producers
    )
    from repro.workloads.spec import spec_app

    placements = pin_apps(chip, [spec_app(a, steady=True) for a in apps])
    thermal = ThermalDaemon(
        chip, ThermalModel(HOT_ENCLOSURE),
        ThermalDaemonConfig(trip_c=80.0, gain_w_per_c=6.0),
    )
    thermal.attach(engine)

    if mode == "rapl":
        for p in placements:
            chip.set_requested_frequency(p.core_id, 2200.0)
        engine.every(1.0, lambda _t: thermal.enforce_with_rapl())
    else:
        managed = [
            ManagedApp(label=p.label, core_id=p.core_id,
                       shares=90.0 if i < 5 else 10.0)
            for i, p in enumerate(placements)
        ]
        policy = FrequencySharesPolicy(
            platform, managed, thermal.power_target_w
        )
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        # thermald's moving target becomes the policy's limit
        engine.every(1.0, lambda _t: setattr(
            policy, "limit_w", thermal.power_target_w
        ))

    engine.run(60.0)
    important = [p for i, p in enumerate(placements) if i < 5]
    bulk = [p for i, p in enumerate(placements) if i >= 5]

    def class_perf(group):
        total = 0.0
        for p in group:
            base = standalone_reference_ips(platform, p.app.model.name)
            total += (
                chip.cores[p.core_id].total_instructions / chip.time_s
            ) / base
        return total / len(group)

    return {
        "mode": mode,
        "temp_c": round(thermal.temperature_c, 1),
        "target_w": round(thermal.power_target_w, 1),
        "pkg_w": round(chip.last_package_power_w, 1),
        "important_perf": round(class_perf(important), 2),
        "bulk_perf": round(class_perf(bulk), 2),
    }


def main() -> None:
    print("hot enclosure (48 C ambient), 80 C trip point\n")
    print(f"{'mode':16s} {'temp C':>7s} {'target W':>9s} {'pkg W':>6s} "
          f"{'important':>10s} {'bulk':>6s}")
    for mode in ("rapl", "frequency-shares"):
        r = run(mode)
        print(f"{r['mode']:16s} {r['temp_c']:7.1f} {r['target_w']:9.1f} "
              f"{r['pkg_w']:6.1f} {r['important_perf']:10.2f} "
              f"{r['bulk_perf']:6.2f}")
    print(
        "\nSame thermal envelope, different victims: RAPL throttles\n"
        "everyone, the share policy concentrates the cuts on the\n"
        "low-share bulk class."
    )


if __name__ == "__main__":
    main()
