#!/usr/bin/env python3
"""Protecting a latency-sensitive service from a power virus.

Reproduces the paper's headline end-to-end result (sections 3.2 and
6.4): a websearch-style service on nine cores co-located with a cpuburn
power virus on the tenth, under a 40 W package limit.

* Under RAPL, the virus drags every core's frequency down and the
  service's 90th-percentile latency balloons.
* With 90/10 frequency shares, the virus is pinned at the minimum
  P-state and the service runs almost as if it were alone.

Run:  python examples/latency_isolation.py
"""

from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.rapl_baseline import RaplBaselinePolicy
from repro.core.types import ManagedApp
from repro.hw.platform import get_platform
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad, ClusterCoreLoad
from repro.sim.engine import SimEngine
from repro.workloads.app import RunningApp
from repro.workloads.cpuburn import cpuburn
from repro.workloads.websearch import WebsearchCluster

LIMIT_W = 40.0
SERVING_CORES = list(range(9))
VIRUS_CORE = 9


def run(policy_name: str, with_virus: bool) -> dict:
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=2e-3)
    engine = SimEngine(chip)
    cluster = WebsearchCluster(SERVING_CORES)
    chip.attach_cluster(cluster)

    managed = []
    for core_id in SERVING_CORES:
        chip.assign_load(core_id, ClusterCoreLoad(cluster, core_id))
        managed.append(
            ManagedApp(label=f"websearch@{core_id}", core_id=core_id,
                       shares=90.0)
        )
    if with_virus:
        chip.assign_load(
            VIRUS_CORE,
            BatchCoreLoad(RunningApp(cpuburn()),
                          platform.reference_frequency_mhz),
        )
        managed.append(
            ManagedApp(label="cpuburn#0", core_id=VIRUS_CORE, shares=10.0)
        )

    policy_cls = (
        FrequencySharesPolicy if policy_name == "frequency-shares"
        else RaplBaselinePolicy
    )
    daemon = PowerDaemon(chip, policy_cls(platform, managed, LIMIT_W))
    daemon.attach(engine)

    engine.run(15.0)                 # warm up
    cluster.reset_latency_window()
    engine.run(30.0)                 # measure

    window = daemon.history[-15:]
    n = len(window)
    return {
        "p90_ms": 1e3 * cluster.latency_percentile(90.0),
        "rps": cluster.throughput(),
        "ws_mhz": sum(
            s.app_frequency_mhz["websearch@0"] for s in window
        ) / n,
        "virus_mhz": (
            sum(s.app_frequency_mhz["cpuburn#0"] for s in window) / n
            if with_virus else None
        ),
        "pkg_w": sum(s.package_power_w for s in window) / n,
    }


def main() -> None:
    print(f"websearch (9 cores) + cpuburn (1 core), {LIMIT_W:.0f} W limit\n")
    alone = run("rapl", with_virus=False)
    print(f"{'setup':28s} {'p90 ms':>7s} {'ws MHz':>7s} "
          f"{'virus MHz':>9s} {'pkg W':>6s}")
    print(f"{'websearch alone (RAPL)':28s} {alone['p90_ms']:7.1f} "
          f"{alone['ws_mhz']:7.0f} {'-':>9s} {alone['pkg_w']:6.1f}")
    for policy in ("rapl", "frequency-shares"):
        result = run(policy, with_virus=True)
        label = f"+ cpuburn ({policy})"
        print(f"{label:28s} {result['p90_ms']:7.1f} "
              f"{result['ws_mhz']:7.0f} {result['virus_mhz']:9.0f} "
              f"{result['pkg_w']:6.1f}")
        ratio = result["p90_ms"] / alone["p90_ms"]
        print(f"{'':28s} -> {ratio:.2f}x the latency of running alone")


if __name__ == "__main__":
    main()
