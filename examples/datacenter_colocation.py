#!/usr/bin/env python3
"""Datacenter co-location: priority power delivery vs plain RAPL.

The motivating scenario from the paper's introduction: a power-capped
server runs a mix of high-priority and low-priority batch jobs.  Under
RAPL everyone is throttled alike; under the priority policy the HP jobs
keep (or even exceed) their full-power performance while LP jobs soak up
only the residual power — starving entirely when there is none.

The script sweeps the power limit from the TDP down to 40 W for the
paper's 3H7L mix and prints both policies side by side.

Run:  python examples/datacenter_colocation.py
"""

from repro import AppSpec, ExperimentConfig, Priority, build_stack
from repro.experiments.runner import standalone_reference_ips

MIX = (
    [AppSpec("cactusBSSN", priority=Priority.HIGH)] * 2
    + [AppSpec("leela", priority=Priority.HIGH)]
    + [AppSpec("cactusBSSN", priority=Priority.LOW)] * 3
    + [AppSpec("leela", priority=Priority.LOW)] * 4
)


def run_policy(policy: str, limit_w: float) -> dict:
    config = ExperimentConfig(
        platform="skylake", policy=policy, limit_w=limit_w,
        apps=tuple(MIX), tick_s=5e-3,
    )
    stack = build_stack(config)
    stack.engine.run(45.0)
    window = [s for s in stack.daemon.history if s.time_s >= 20.0]
    n = len(window)

    def class_perf(priority):
        labels = [
            label
            for label, spec in zip(stack.labels, MIX)
            if spec.priority is priority
        ]
        total = 0.0
        for label in labels:
            base = standalone_reference_ips(
                stack.platform, label.split("#")[0]
            )
            total += sum(s.app_ips[label] for s in window) / n / base
        return total / len(labels)

    lp_labels = [
        label
        for label, spec in zip(stack.labels, MIX)
        if spec.priority is Priority.LOW
    ]
    starved = all(window[-1].app_parked[label] for label in lp_labels)
    return {
        "hp": class_perf(Priority.HIGH),
        "lp": class_perf(Priority.LOW),
        "power": sum(s.package_power_w for s in window) / n,
        "lp_starved": starved,
    }


def main() -> None:
    print("3 high-priority + 7 low-priority jobs on a 10-core Skylake")
    print(f"{'limit':>6s}  {'policy':>9s}  {'HP perf':>8s}  "
          f"{'LP perf':>8s}  {'pkg W':>6s}  LP starved?")
    for limit in (85.0, 50.0, 40.0):
        for policy in ("rapl", "priority"):
            result = run_policy(policy, limit)
            print(
                f"{limit:6.0f}  {policy:>9s}  {result['hp']:8.2f}  "
                f"{result['lp']:8.2f}  {result['power']:6.1f}  "
                f"{'yes' if result['lp_starved'] else 'no'}"
            )
    print(
        "\nAt 40 W the priority policy parks the LP jobs and the freed\n"
        "turbo headroom pushes HP performance above its 85 W level —\n"
        "the opportunistic-scaling effect of paper Fig 7."
    )


if __name__ == "__main__":
    main()
