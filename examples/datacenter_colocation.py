#!/usr/bin/env python3
"""Datacenter co-location: priority power delivery vs plain RAPL.

The motivating scenario from the paper's introduction: a power-capped
server runs a mix of high-priority and low-priority batch jobs.  Under
RAPL everyone is throttled alike; under the priority policy the HP jobs
keep (or even exceed) their full-power performance while LP jobs soak up
only the residual power — starving entirely when there is none.

The script sweeps the power limit from the TDP down to 40 W for the
paper's 3H7L mix and prints both policies side by side.

With ``--cluster`` it scales the same story up one level: two sockets
— a production node and a batch node — share one facility budget under
the :mod:`repro.cluster` arbiter, and the 2:1 node shares deliver the
same proportional outcome across machines that the per-app policies
deliver within one.

Run:  python examples/datacenter_colocation.py
      python examples/datacenter_colocation.py --cluster
"""

import argparse

from repro import AppSpec, ExperimentConfig, Priority, build_stack
from repro.experiments.runner import standalone_reference_ips

MIX = (
    [AppSpec("cactusBSSN", priority=Priority.HIGH)] * 2
    + [AppSpec("leela", priority=Priority.HIGH)]
    + [AppSpec("cactusBSSN", priority=Priority.LOW)] * 3
    + [AppSpec("leela", priority=Priority.LOW)] * 4
)


def run_policy(policy: str, limit_w: float) -> dict:
    config = ExperimentConfig(
        platform="skylake", policy=policy, limit_w=limit_w,
        apps=tuple(MIX), tick_s=5e-3,
    )
    stack = build_stack(config)
    stack.engine.run(45.0)
    window = [s for s in stack.daemon.history if s.time_s >= 20.0]
    n = len(window)

    def class_perf(priority):
        labels = [
            label
            for label, spec in zip(stack.labels, MIX)
            if spec.priority is priority
        ]
        total = 0.0
        for label in labels:
            base = standalone_reference_ips(
                stack.platform, label.split("#")[0]
            )
            total += sum(s.app_ips[label] for s in window) / n / base
        return total / len(labels)

    lp_labels = [
        label
        for label, spec in zip(stack.labels, MIX)
        if spec.priority is Priority.LOW
    ]
    starved = all(window[-1].app_parked[label] for label in lp_labels)
    return {
        "hp": class_perf(Priority.HIGH),
        "lp": class_perf(Priority.LOW),
        "power": sum(s.package_power_w for s in window) / n,
        "lp_starved": starved,
    }


def run_cluster_demo() -> None:
    """Two sockets, one facility budget, 2:1 node shares."""
    from repro.cluster import ClusterConfig, NodeSpec, run_cluster

    # all power-hungry apps so both nodes genuinely contend for budget
    busy = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(6))
    config = ClusterConfig(
        budget_w=75.0,
        nodes=(
            NodeSpec(name="prod", apps=busy, shares=2.0, min_cap_w=12.0),
            NodeSpec(name="batch", apps=busy, shares=1.0, min_cap_w=12.0),
        ),
        seed=7,
    )
    print("two 10-core Skylake sockets under one 75 W facility budget")
    run = run_cluster(config, 80.0)
    print(f"{'node':>6s}  {'shares':>6s}  {'cap W':>6s}  {'power W':>7s}")
    for spec in config.nodes:
        caps = run.trace.series(f"{spec.name}.cap_w").window(30.0)
        power = run.trace.series(f"{spec.name}.power_w").window(30.0)
        print(f"{spec.name:>6s}  {spec.shares:6.1f}  "
              f"{caps.mean():6.1f}  {power.mean():7.1f}")
    print(
        f"\nmax cap sum {run.max_cap_sum_w():.1f} W never exceeds the "
        f"{config.budget_w:.0f} W budget; the production node draws "
        "twice the batch node's power — min-funding revocation, one "
        "level up."
    )


def run_sweep() -> None:
    print("3 high-priority + 7 low-priority jobs on a 10-core Skylake")
    print(f"{'limit':>6s}  {'policy':>9s}  {'HP perf':>8s}  "
          f"{'LP perf':>8s}  {'pkg W':>6s}  LP starved?")
    for limit in (85.0, 50.0, 40.0):
        for policy in ("rapl", "priority"):
            result = run_policy(policy, limit)
            print(
                f"{limit:6.0f}  {policy:>9s}  {result['hp']:8.2f}  "
                f"{result['lp']:8.2f}  {result['power']:6.1f}  "
                f"{'yes' if result['lp_starved'] else 'no'}"
            )
    print(
        "\nAt 40 W the priority policy parks the LP jobs and the freed\n"
        "turbo headroom pushes HP performance above its 85 W level —\n"
        "the opportunistic-scaling effect of paper Fig 7."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cluster", action="store_true",
        help="two nodes under one facility budget instead of the "
             "single-socket policy sweep",
    )
    args = parser.parse_args()
    if args.cluster:
        run_cluster_demo()
    else:
        run_sweep()


if __name__ == "__main__":
    main()
