"""Ablations for the paper's discussed extensions.

* **Highest-useful-frequency** (section 4.4): capping memory-bound apps
  at their useful frequency should save power with negligible
  performance loss.
* **Game-ability** (section 8): NOP-padding must have "an overall larger
  negative impact on performance than any benefit" under performance
  shares — the paper's soundness criterion.
* **LP consolidation** (section 4.4): time-slicing starved LP apps on
  the affordable cores trades a little HP boost for non-zero LP
  progress.
"""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.experiments.consolidation_exp import run_consolidation_experiment
from repro.experiments.gaming_exp import run_gaming_experiment


def _run_useful_mode(useful: bool):
    config = ExperimentConfig(
        platform="skylake", policy="frequency-shares", limit_w=85.0,
        apps=tuple([AppSpec("omnetpp")] * 5 + [AppSpec("lbm")] * 5),
        useful_frequency_mode=useful, tick_s=5e-3,
    )
    stack = build_stack(config)
    stack.engine.run(30.0)
    window = [s for s in stack.daemon.history if s.time_s >= 15.0]
    n = len(window)
    power = sum(s.package_power_w for s in window) / n
    ips = sum(
        sum(s.app_ips[label] for label in stack.labels) for s in window
    ) / n
    return power, ips


def test_ablation_useful_frequency_mode(regen):
    results = regen(
        lambda: {mode: _run_useful_mode(mode) for mode in (False, True)}
    )
    power_off, ips_off = results[False]
    power_on, ips_on = results[True]
    # meaningful power savings for the memory-bound mix...
    assert power_on < power_off * 0.92
    # ...at a small throughput cost
    assert ips_on > ips_off * 0.90
    # net: better energy efficiency (instructions per joule)
    assert ips_on / power_on > ips_off / power_off


def test_ablation_gaming_payoff(regen):
    sweep = regen(
        lambda: {
            g: run_gaming_experiment(
                nop_fraction=g, duration_s=30.0, warmup_s=15.0
            )
            for g in (0.2, 0.4, 0.6)
        }
    )
    payoffs = [sweep[g].gaming_payoff for g in (0.2, 0.4, 0.6)]
    # gaming never pays under performance shares
    assert all(p < 1.0 for p in payoffs)
    # and the harder you game, the worse it gets
    assert payoffs[0] > payoffs[2]


def test_ablation_lp_consolidation(regen):
    results = regen(
        lambda: {
            mode: run_consolidation_experiment(
                consolidate=mode, duration_s=20.0
            )
            for mode in (False, True)
        }
    )
    starved, packed = results[False], results[True]
    assert starved.lp_norm_perf == 0.0
    assert packed.lp_norm_perf > 0.03
    # the HP cost of waking LP cores is bounded
    assert packed.hp_norm_perf > starved.hp_norm_perf - 0.15
    # both respect the limit
    assert starved.package_power_w <= 41.0
    assert packed.package_power_w <= 41.0
