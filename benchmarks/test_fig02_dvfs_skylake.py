"""Fig 2: effect of DVFS on Skylake for the SPEC2017 workloads.

Paper shapes: normalized runtime falls as frequency rises with a wide
spread across benchmarks; the AVX apps (lbm, imagick, cam4) are power
outliers whose performance saturates around the AVX cap; package power
jumps by ~5 W when the sweep enters the TurboBoost bins.
"""

import pytest

from repro.experiments.dvfs_sweep import run_dvfs_sweep
from repro.workloads.spec import spec_names


def test_fig2_dvfs_sweep_skylake(regen):
    result = regen(
        run_dvfs_sweep, "skylake", duration_s=6.0, tick_s=10e-3
    )
    assert result.reference_mhz == 2200.0

    for benchmark in spec_names():
        series = sorted(
            result.series(benchmark), key=lambda p: p.set_frequency_mhz
        )
        runtimes = [p.normalized_runtime for p in series]
        # runtime normalized to 2.2 GHz: ~1.0 at the reference
        at_ref = next(
            p for p in series if p.set_frequency_mhz == 2200.0
        )
        assert at_ref.normalized_runtime == pytest.approx(1.0, abs=0.03)
        # monotone non-increasing runtime with frequency (within noise)
        assert all(b <= a * 1.02 for a, b in zip(runtimes, runtimes[1:]))

    # AVX apps saturate: moving 2.2 -> 3.0 GHz buys them nothing
    for avx_app in ("cam4", "lbm", "imagick"):
        series = {p.set_frequency_mhz: p for p in result.series(avx_app)}
        assert series[3000.0].normalized_runtime == pytest.approx(
            series[2200.0].normalized_runtime, rel=0.02
        )
        assert series[3000.0].effective_frequency_mhz <= 1700.0
    # while gcc keeps speeding up
    gcc = {p.set_frequency_mhz: p for p in result.series("gcc")}
    assert gcc[3000.0].normalized_runtime < gcc[2200.0].normalized_runtime

    # AVX apps are among the highest-power at a common frequency
    at_17 = {p.benchmark: p.package_power_w
             for p in result.at_frequency(1700.0)}
    median = sorted(at_17.values())[len(at_17) // 2]
    assert at_17["cam4"] > median

    # turbo power jump: entering the boost bins costs extra watts beyond
    # the frequency increment itself
    gcc_power = {p.set_frequency_mhz: p.package_power_w
                 for p in result.series("gcc")}
    jump = gcc_power[2600.0] - gcc_power[2200.0]
    pre_jump = gcc_power[2200.0] - gcc_power[2000.0]
    assert jump > 2.0 * pre_jump

    # box-plot summary is well-formed at every swept frequency
    box = result.power_boxplot(2200.0)
    assert box["p1"] <= box["q1"] <= box["median"] <= box["q3"] <= box["p99"]
