"""Ablation: the Ryzen simultaneous-P-state budget (paper sections 2.1/5).

The Ryzen 1700X supports only 3 distinct voltage/frequency pairs at
once; the paper's selection utility reduces per-core targets to 3
levels.  This ablation re-runs a 4-level share mix with the level budget
forced to 1, 2, 3, and 8 and measures how much share fidelity the
restriction costs: with one level shares collapse entirely; three levels
recover most of the unrestricted fidelity — evidence for the paper's
claim that the workaround is adequate.
"""

import dataclasses

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.types import ManagedApp
from repro.hw.platform import ryzen_1700x
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app

SHARES = (80.0, 60.0, 40.0, 20.0, 80.0, 60.0, 40.0, 20.0)


def run_with_levels(levels: int) -> dict[float, float]:
    """Returns share value -> mean granted frequency."""
    platform = dataclasses.replace(ryzen_1700x(),
                                   simultaneous_pstates=levels)
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    placements = pin_apps(chip, [spec_app("leela", steady=True)] * 8)
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id, shares=share)
        for p, share in zip(placements, SHARES)
    ]
    policy = FrequencySharesPolicy(platform, managed, 40.0)
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(35.0)
    window = [s for s in daemon.history if s.time_s >= 18.0]
    out: dict[float, list[float]] = {}
    for app in managed:
        out.setdefault(app.shares, []).append(
            sum(s.app_frequency_mhz[app.label] for s in window)
            / len(window)
        )
    return {share: sum(v) / len(v) for share, v in out.items()}


def share_error(freqs: dict[float, float]) -> float:
    """RMS deviation of frequency fractions from share fractions."""
    total_shares = sum(SHARES)
    total_freq = sum(freqs[s] * SHARES.count(s) for s in freqs)
    err = 0.0
    for share, freq in freqs.items():
        target = share / total_shares
        actual = freq / total_freq
        err += (target - actual) ** 2
    return (err / len(freqs)) ** 0.5


def test_ablation_simultaneous_pstate_levels(regen):
    results = regen(
        lambda: {k: run_with_levels(k) for k in (1, 2, 3, 8)}
    )
    errors = {k: share_error(freqs) for k, freqs in results.items()}

    # one level cannot differentiate at all: every share level runs at
    # the same frequency
    one_level = results[1]
    assert max(one_level.values()) - min(one_level.values()) < 30.0

    # more levels, monotonically better (or equal) fidelity
    assert errors[1] >= errors[2] >= errors[3] - 1e-9
    assert errors[3] >= errors[8] - 1e-9

    # three levels recover most of the unrestricted fidelity — the
    # paper's workaround is adequate
    assert errors[3] <= errors[8] + 0.02
    # and beat one level decisively
    assert errors[1] > 2.0 * errors[3]
