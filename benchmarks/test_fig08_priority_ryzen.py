"""Fig 8: priority policy on Ryzen (software-enforced limits).

Paper shapes: results mirror Skylake — at 50 W LP jobs run only with
<= 4 HP jobs, at 40 W only with 2 HP jobs — plus per-class core power
(Ryzen exposes per-core energy), where the HD high-priority class draws
several times the parked/minimum LP class.
"""

import pytest

from repro.experiments.priority_exp import RYZEN_MIXES, run_fig8_priority_ryzen


def test_fig8_priority_ryzen(regen):
    result = regen(
        run_fig8_priority_ryzen,
        limits_w=(95.0, 50.0, 40.0),
        duration_s=45.0,
        warmup_s=20.0,
    )
    assert set(RYZEN_MIXES) == {"8H0L", "6H2L", "4H4L", "2H6L"}

    # -- at 50 W: LP run when <= 4 HP
    assert result.cell("6H2L", 50.0, "priority").lp_parked_fraction > 0.8
    assert result.cell("4H4L", 50.0, "priority").lp_parked_fraction < 0.2
    assert result.cell("2H6L", 50.0, "priority").lp_parked_fraction < 0.2

    # -- at 40 W: LP run only when 2 HP
    assert result.cell("4H4L", 40.0, "priority").lp_parked_fraction > 0.8
    assert result.cell("2H6L", 40.0, "priority").lp_parked_fraction < 0.2

    # -- per-class core power is reported and ordered (HP >> parked LP)
    cell = result.cell("4H4L", 40.0, "priority")
    assert cell.hp_core_power_w is not None
    assert cell.lp_core_power_w is not None
    assert cell.hp_core_power_w > 3.0 * cell.lp_core_power_w

    # -- HP performance degrades gracefully with the limit
    for mix in RYZEN_MIXES:
        hp95 = result.cell(mix, 95.0, "priority").hp_norm_perf
        hp40 = result.cell(mix, 40.0, "priority").hp_norm_perf
        assert hp95 >= hp40 - 0.02

    # -- software enforcement holds the limit without hardware RAPL
    for mix in RYZEN_MIXES:
        for limit in (50.0, 40.0):
            cell = result.cell(mix, limit, "priority")
            assert cell.package_power_w <= limit + 2.0
