"""Fig 12: latency-sensitive experiment with the paper's policies.

Paper shape: at 90/10 shares (websearch cores 90, cpuburn 10) the
proportional policies recover most of the RAPL co-location loss —
"reaching performance comparable to websearch running alone in some
cases" — with both frequency and performance shares behaving similarly.
"""

import pytest

from repro.experiments.latency_exp import (
    normalized_latency,
    run_fig12_policies,
)


def test_fig12_policy_latencies(regen):
    result = regen(
        run_fig12_policies,
        limits_w=(45.0, 40.0, 35.0),
        duration_s=45.0,
        warmup_s=15.0,
    )
    for limit in (40.0, 35.0):
        rapl = normalized_latency(result, "rapl", limit)
        freq = normalized_latency(result, "frequency-shares", limit)
        perf = normalized_latency(result, "performance-shares", limit)

        # RAPL co-location hurts badly at low limits
        assert rapl > 1.3
        # the policies recover most of the loss
        assert freq < rapl - 0.2
        assert perf < rapl - 0.2
        # and approach running alone (paper: comparable in some cases)
        assert freq < 1.25
        # performance shares provide similar improvements (section 6.4)
        assert perf < 1.6

    # throughput is also protected
    for limit in (40.0, 35.0):
        policy_rps = result.run("frequency-shares", limit, True).throughput_rps
        rapl_rps = result.run("rapl", limit, True).throughput_rps
        assert policy_rps >= rapl_rps - 10.0
