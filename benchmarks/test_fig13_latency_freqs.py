"""Fig 13: active frequencies for the latency-sensitive experiment under
the proportional frequency policy.

Paper shape: the websearch cores hold a high frequency while the cpuburn
core is pinned at the minimum — the low dynamic range of available
frequencies is what limits the recovery to ~10% at the lowest limits.
"""

from repro.experiments.latency_exp import run_fig12_policies


def test_fig13_active_frequencies(regen):
    result = regen(
        run_fig12_policies,
        limits_w=(45.0, 40.0, 35.0),
        policies=("frequency-shares",),
        duration_s=40.0,
        warmup_s=15.0,
    )
    for limit in (45.0, 40.0, 35.0):
        run = result.run("frequency-shares", limit, True)
        # cpuburn pinned at (or near) the 800 MHz floor
        assert run.cpuburn_freq_mhz < 900.0
        # websearch cores far above it
        assert run.websearch_freq_mhz > 2.0 * run.cpuburn_freq_mhz

    # under RAPL, by contrast, the two classes are indistinguishable
    for limit in (40.0, 35.0):
        rapl = result.run("rapl", limit, True)
        assert abs(
            rapl.websearch_freq_mhz - rapl.cpuburn_freq_mhz
        ) < 120.0

    # websearch frequency falls with the limit (power conservation)
    freqs = [
        result.run("frequency-shares", limit, True).websearch_freq_mhz
        for limit in (45.0, 40.0, 35.0)
    ]
    assert freqs[0] >= freqs[1] >= freqs[2]
