"""Ablation: control stability under program phases (paper section 6.2).

The paper's argument for frequency shares over performance shares is
stability: "frequency is stable while running, while performance is
measured as IPS ... Small phase changes can affect performance, leading
to control operations to rebalance power."

This ablation makes the phases big — an app whose IPC swings ±25% on a
half-minute period — and measures how much each policy's frequency
programming churns in steady state.  Frequency shares should hold the
operating point; performance shares chase the phase.
"""

import dataclasses

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.types import ManagedApp
from repro.hw.platform import skylake_xeon_4114
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.sim.perf_model import max_standalone_ips
from repro.workloads.app import AppPhase
from repro.workloads.spec import spec_app


def phased_app():
    """deepsjeng with exaggerated phase behaviour."""
    base = spec_app("deepsjeng", steady=True)
    return dataclasses.replace(
        base,
        name="deepsjeng-phased",
        phase=AppPhase(ipc_amplitude=0.25, power_amplitude=0.05,
                       period_s=30.0),
    )


def run_policy(policy_cls):
    platform = skylake_xeon_4114()
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    apps = [phased_app()] * 5 + [spec_app("leela", steady=True)] * 5
    placements = pin_apps(chip, apps)
    managed = [
        ManagedApp(
            label=p.label,
            core_id=p.core_id,
            shares=50.0,
            baseline_ips=max_standalone_ips(platform, p.app.model),
        )
        for p in placements
    ]
    policy = policy_cls(platform, managed, 45.0)
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(90.0)
    window = [s for s in daemon.history if s.time_s >= 30.0]
    # churn: mean absolute per-iteration change of the programmed target
    # for the phased app
    label = "deepsjeng-phased#0"
    targets = [s.targets_mhz[label] for s in window]
    churn = sum(
        abs(b - a) for a, b in zip(targets, targets[1:])
    ) / max(len(targets) - 1, 1)
    power = sum(s.package_power_w for s in window) / len(window)
    return churn, power


def test_ablation_phase_stability(regen):
    results = regen(
        lambda: {
            "frequency-shares": run_policy(FrequencySharesPolicy),
            "performance-shares": run_policy(PerformanceSharesPolicy),
        }
    )
    freq_churn, freq_power = results["frequency-shares"]
    perf_churn, perf_power = results["performance-shares"]

    # both hold the limit
    assert freq_power == pytest.approx(45.0, abs=2.5)
    assert perf_power == pytest.approx(45.0, abs=2.5)
    # performance shares chase the phases; frequency shares do not —
    # the paper's core argument for the simpler policy
    assert perf_churn > 3.0 * freq_churn
    assert freq_churn < 40.0  # MHz per iteration: essentially parked
