"""Fig 1: performance interference between applications under RAPL.

Paper shape: gcc (low demand, fast clock) is throttled *first* and
proportionally harder than cam4 (high demand, AVX-capped); at the lowest
limits both converge to the same frequency, where gcc's relative
frequency loss (~48% in the paper) far exceeds cam4's (~25%).
"""

from repro.experiments.rapl_interference import run_fig1_rapl_interference


def test_fig1_rapl_interference(regen):
    result = regen(
        run_fig1_rapl_interference, duration_s=20.0, warmup_s=8.0
    )
    gcc = {p.limit_w: p for p in result.series("gcc")}
    cam4 = {p.limit_w: p for p in result.series("cam4")}

    # at 85 W both run unthrottled: gcc at its turbo, cam4 at its AVX cap
    assert gcc[85.0].active_frequency_mhz > cam4[85.0].active_frequency_mhz
    assert gcc[85.0].normalized_performance > 0.85
    assert cam4[85.0].normalized_performance > 0.85

    # the cap hits gcc first: by 60 W gcc is throttled, cam4 untouched
    assert gcc[60.0].active_frequency_mhz < gcc[85.0].active_frequency_mhz
    assert cam4[60.0].active_frequency_mhz == (
        cam4[85.0].active_frequency_mhz
    )

    # at 40 W both sit at the same frequency...
    assert abs(
        gcc[40.0].active_frequency_mhz - cam4[40.0].active_frequency_mhz
    ) < 50.0
    # ...which costs gcc a much larger fraction of its standalone speed
    gcc_loss = 1 - gcc[40.0].active_frequency_mhz / (
        gcc[85.0].active_frequency_mhz
    )
    cam4_loss = 1 - cam4[40.0].active_frequency_mhz / (
        cam4[85.0].active_frequency_mhz
    )
    assert gcc_loss > cam4_loss + 0.15
    # performance ordering matches (paper: gcc ends far below cam4)
    assert (
        gcc[40.0].normalized_performance
        < cam4[40.0].normalized_performance
    )
