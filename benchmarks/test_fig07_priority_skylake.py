"""Fig 7 (and Table 2): priority policy vs RAPL on Skylake.

Paper shapes, per mix and limit:

* at 50 W LP apps run only when there are <= 5 HP apps; at 40 W only in
  the 1H9L mix;
* with 3 HP apps at 40 W the policy starves LP and boosts HP *above*
  their 85 W performance (opportunistic scaling);
* under RAPL there is no distinction: HP and LP share the same frequency
  and suffer the same loss.
"""

import pytest

from repro.experiments.priority_exp import (
    TABLE2_MIXES,
    run_fig7_priority_skylake,
)


def test_fig7_priority_vs_rapl(regen):
    result = regen(
        run_fig7_priority_skylake,
        limits_w=(85.0, 50.0, 40.0),
        duration_s=45.0,
        warmup_s=20.0,
    )

    # Table 2 mixes drive the experiment
    assert set(TABLE2_MIXES) == {"10H0L", "7H3L", "5H5L", "3H7L", "1H9L"}

    # -- starvation pattern at 50 W (priority policy)
    assert result.cell("7H3L", 50.0, "priority").lp_parked_fraction > 0.8
    for mix in ("5H5L", "3H7L", "1H9L"):
        assert result.cell(mix, 50.0, "priority").lp_parked_fraction < 0.2

    # -- starvation pattern at 40 W
    for mix in ("7H3L", "5H5L", "3H7L"):
        assert result.cell(mix, 40.0, "priority").lp_parked_fraction > 0.8
    assert result.cell("1H9L", 40.0, "priority").lp_parked_fraction < 0.2

    # -- opportunistic boost: 3H7L at 40 W beats 85 W for HP
    boosted = result.cell("3H7L", 40.0, "priority").hp_norm_perf
    full_power = result.cell("3H7L", 85.0, "priority").hp_norm_perf
    assert boosted > full_power

    # -- HP isolation: priority keeps HP far faster than RAPL does
    for limit in (50.0, 40.0):
        for mix in ("5H5L", "3H7L"):
            prio = result.cell(mix, limit, "priority").hp_norm_perf
            rapl = result.cell(mix, limit, "rapl").hp_norm_perf
            assert prio > rapl + 0.05

    # -- RAPL is priority-blind: HP and LP at the same frequency
    for limit in (50.0, 40.0):
        cell = result.cell("5H5L", limit, "rapl")
        assert cell.hp_freq_mhz == pytest.approx(cell.lp_freq_mhz, rel=0.03)

    # -- at 85 W everything runs fast under either policy
    assert result.cell("10H0L", 85.0, "priority").hp_norm_perf > 0.8

    # -- limits respected in steady state
    for mix in TABLE2_MIXES:
        for limit in (50.0, 40.0):
            cell = result.cell(mix, limit, "priority")
            assert cell.package_power_w <= limit + 2.0
