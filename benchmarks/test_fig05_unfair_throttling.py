"""Fig 5: effect of co-location under RAPL (websearch + cpuburn).

Paper shape: the latency-sensitive websearch suffers a dramatic
90th-percentile latency increase from one co-located power virus under
low RAPL limits — less than 50% of standalone performance below ~40 W —
while running alone it degrades only mildly.
"""

from repro.experiments.latency_exp import run_fig5_unfair_throttling


def test_fig5_unfair_throttling(regen):
    result = regen(
        run_fig5_unfair_throttling,
        limits_w=(85.0, 50.0, 40.0, 35.0),
        duration_s=40.0,
        warmup_s=15.0,
    )

    def ratio(limit):
        alone = result.run("rapl", limit, False).p90_latency_s
        together = result.run("rapl", limit, True).p90_latency_s
        return together / alone

    # no meaningful interference at the TDP limit
    assert ratio(85.0) < 1.15
    # monotically worsening interference as the limit drops
    assert ratio(40.0) > ratio(50.0) > ratio(85.0) - 0.05
    # dramatic loss below 40 W (paper: performance less than half alone)
    assert ratio(35.0) > 1.5

    # mechanism check: under RAPL the virus core and the websearch cores
    # are throttled to about the same frequency (no differentiation)
    run40 = result.run("rapl", 40.0, True)
    assert abs(run40.websearch_freq_mhz - run40.cpuburn_freq_mhz) < 120.0

    # websearch alone keeps most of its latency even at 35 W
    alone35 = result.run("rapl", 35.0, False).p90_latency_s
    alone85 = result.run("rapl", 85.0, False).p90_latency_s
    assert alone35 < alone85 * 1.6
