"""Table 1: summary of power-management features per platform.

Regenerates the feature table from the live platform descriptors and
asserts the paper's documented values.
"""

from repro.experiments.tables import table1_features, table2_rows, table3_rows


def test_table1_feature_summary(regen):
    rows = regen(
        lambda: {
            name: table1_features(name) for name in ("skylake", "ryzen")
        }
    )
    skylake = rows["skylake"]
    assert skylake["cores"] == 10
    assert skylake["threads"] == 20
    assert skylake["dram_gb"] == 192
    assert skylake["dvfs_step_mhz"] == 100.0
    assert skylake["rapl_capping"] == "20-85 W"
    assert skylake["per_core_dvfs"] is True
    assert skylake["per_core_power_telemetry"] is False
    assert skylake["freq_range_ghz"] == "0.8-2.2 + 3.0 boost"

    ryzen = rows["ryzen"]
    assert ryzen["cores"] == 8
    assert ryzen["threads"] == 16
    assert ryzen["dram_gb"] == 16
    assert ryzen["dvfs_step_mhz"] == 25.0
    assert ryzen["simultaneous_pstates"] == 3
    assert ryzen["rapl_capping"] == "none"
    assert ryzen["per_core_power_telemetry"] is True
    assert ryzen["freq_range_ghz"] == "0.4-3.4 + 3.8 boost"


def test_table2_and_table3_consistency(regen):
    tables = regen(lambda: (table2_rows(), table3_rows()))
    table2, table3 = tables
    # Table 2: five mixes covering all ten cores each
    assert len(table2) == 5
    for row in table2:
        assert sum(v for k, v in row.items() if k != "mix") == 10
    # Table 3: the two five-app sets from the paper
    assert len(table3) == 2
    assert table3[0]["app0"] == "deepsjeng"
    assert table3[1]["app4"] == "lbm"
