"""Ablation: robustness of the naive alpha translation model.

The paper's share policies convert power deltas to resource deltas with
``alpha = PowerDelta / MaxPower`` and admit the model is simplistic:
"the error becomes smaller when the system is near the target power" and
"since we dynamically adjust the values later, modeling errors do not
affect steady state behavior".  This ablation proves that claim on the
reproduction: mis-calibrating MaxPower by -50% / +100% changes settling
dynamics but not the steady state.
"""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.core.policy import PolicyConfig
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.daemon import PowerDaemon
from repro.core.types import ManagedApp
from repro.hw.platform import skylake_xeon_4114
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app


def run_with_max_power(max_power_w: float) -> tuple[float, float]:
    platform = skylake_xeon_4114()
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    placements = pin_apps(
        chip,
        [spec_app("leela", steady=True)] * 5
        + [spec_app("cactusBSSN", steady=True)] * 5,
    )
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id,
                   shares=70.0 if i < 5 else 30.0)
        for i, p in enumerate(placements)
    ]
    policy = FrequencySharesPolicy(
        platform, managed, 45.0,
        config=PolicyConfig(max_power_w=max_power_w),
    )
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(70.0)
    window = [s for s in daemon.history if s.time_s >= 45.0]
    steady_power = sum(s.package_power_w for s in window) / len(window)
    ld = sum(s.app_frequency_mhz["leela#0"] for s in window) / len(window)
    hd = sum(
        s.app_frequency_mhz["cactusBSSN#0"] for s in window
    ) / len(window)
    return steady_power, ld / (ld + hd)


def test_ablation_alpha_model_error(regen):
    sweep = regen(
        lambda: {m: run_with_max_power(m) for m in (42.5, 85.0, 170.0)}
    )
    correct_power, correct_split = sweep[85.0]
    for max_power, (steady, split) in sweep.items():
        # steady state is immune to the model error (the paper's claim);
        # a mis-calibrated alpha only changes how fast the loop walks in
        assert steady == pytest.approx(correct_power, abs=3.0)
        assert split == pytest.approx(correct_split, abs=0.05)
        assert steady <= 45.0 + 1.5  # the limit holds regardless
