"""Ablation: daemon control-loop period (paper section 5).

The paper's daemon iterates once per second; its alpha-model step is
*per iteration*, so the control period sets the effective loop gain.
The steady-state operating point sits between quantized P-state bins
(the turbo voltage cliff), so the loop occasionally probes the next bin
up, overshoots, and rolls back — the frequency-shares policy backs those
probes off geometrically, leaving isolated single-iteration excursions
whose cadence decays over time.

This ablation verifies, for 0.5 s / 1 s / 2 s periods:

* mean power tracks the limit regardless of period,
* limit excursions are isolated probes (never sustained), and
* probing gets rarer as the backoff doubles.
"""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack

APPS = tuple(
    [AppSpec("leela", shares=70)] * 5 + [AppSpec("cactusBSSN", shares=30)] * 5
)
LIMIT = 45.0


def run_interval(interval_s: float):
    config = ExperimentConfig(
        platform="skylake", policy="frequency-shares", limit_w=LIMIT,
        apps=APPS, interval_s=interval_s, tick_s=5e-3,
    )
    stack = build_stack(config)
    stack.engine.run(90.0)
    return [
        (s.time_s, s.package_power_w)
        for s in stack.daemon.history
        if s.time_s >= 15.0
    ]


def test_ablation_daemon_interval(regen):
    traces = regen(
        lambda: {i: run_interval(i) for i in (0.5, 1.0, 2.0)}
    )
    for interval, trace in traces.items():
        powers = [p for _, p in trace]
        mean = sum(powers) / len(powers)
        # the limit is tracked on average at every period
        assert mean == pytest.approx(LIMIT, abs=2.5), f"interval {interval}"
        # excursions above the limit are isolated probe iterations:
        # never two consecutive samples more than 3 W over
        over = [p > LIMIT + 3.0 for p in powers]
        assert not any(a and b for a, b in zip(over, over[1:])), (
            f"interval {interval}: sustained violation"
        )
        # probes are rare: under 10% of samples
        assert sum(over) / len(over) < 0.10

    # probe cadence decays: the second half of the 1 s trace has no more
    # probes than the first half (geometric backoff)
    trace = traces[1.0]
    half = len(trace) // 2
    first = sum(p > LIMIT + 3.0 for _, p in trace[:half])
    second = sum(p > LIMIT + 3.0 for _, p in trace[half:])
    assert second <= first
