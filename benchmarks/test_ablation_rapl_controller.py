"""Ablation: RAPL firmware-controller constants.

Past work the paper cites (Zhang & Hoffman) reports RAPL settles fast
and stably.  Our emulated limiter should too, across a range of
controller gains and averaging windows — and the ablation documents
where the design space degrades (tiny gain = slow settling).
"""

import pytest

from repro.hw.platform import skylake_xeon_4114
from repro.hw.rapl import RaplLimiterConfig
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


def run_step_response(gain: float, tau: float) -> tuple[float, float]:
    """Apply a 40 W limit to a hot 10-core workload; return (settling
    time, steady power)."""
    platform = skylake_xeon_4114()
    chip = Chip(
        platform,
        tick_s=1e-3,
        rapl_config=RaplLimiterConfig(
            gain_mhz_per_w=gain, averaging_tau_s=tau
        ),
    )
    engine = SimEngine(chip)
    for core_id in range(10):
        app = RunningApp(spec_app("cactusBSSN", steady=True),
                         instance=core_id)
        chip.assign_load(core_id, BatchCoreLoad(app, 2200.0))
        chip.set_requested_frequency(core_id, 2200.0)
    chip.set_rapl_limit(40.0)
    settle_s = None
    powers = []
    for step in range(4000):  # 4 simulated seconds
        engine.run_ticks(1)
        power = chip.last_package_power_w
        powers.append(power)
        if settle_s is None and power <= 41.0:
            settle_s = chip.time_s
    steady = sum(powers[-500:]) / 500
    return settle_s, steady


def test_ablation_rapl_controller(regen):
    sweep = regen(
        lambda: {
            (gain, tau): run_step_response(gain, tau)
            for gain in (1.0, 4.0, 16.0)
            for tau in (0.005, 0.010, 0.050)
        }
    )
    for (gain, tau), (settle, steady) in sweep.items():
        # every configuration eventually enforces the limit
        assert settle is not None, f"gain={gain} tau={tau} never settled"
        assert steady <= 41.5
        # and none collapses below it (no violent undershoot)
        assert steady >= 35.0

    # higher gain settles faster at a fixed window
    assert sweep[(16.0, 0.010)][0] <= sweep[(1.0, 0.010)][0]
    # the default configuration settles within tens of milliseconds,
    # matching the measured behaviour of real RAPL
    assert sweep[(4.0, 0.010)][0] < 0.2
