"""Fig 3: effect of DVFS on Ryzen for the SPEC2017 workloads.

Paper shapes: performance rises nearly linearly with frequency (smaller
anomalies than Skylake), and package power jumps at 3.5 GHz where
Precision Boost / XFR voltage levels take effect.
"""

import pytest

from repro.experiments.dvfs_sweep import run_dvfs_sweep
from repro.workloads.spec import spec_names


def test_fig3_dvfs_sweep_ryzen(regen):
    result = regen(
        run_dvfs_sweep, "ryzen", duration_s=6.0, tick_s=10e-3
    )
    assert result.reference_mhz == 3000.0

    for benchmark in spec_names():
        series = sorted(
            result.series(benchmark), key=lambda p: p.set_frequency_mhz
        )
        at_ref = next(p for p in series if p.set_frequency_mhz == 3000.0)
        assert at_ref.normalized_runtime == pytest.approx(1.0, abs=0.03)
        runtimes = [p.normalized_runtime for p in series]
        assert all(b <= a * 1.02 for a, b in zip(runtimes, runtimes[1:]))

    # near-linear scaling for the frequency-sensitive exchange2:
    # 0.4 -> 3.4 GHz is an 8.5x clock ratio; speedup should be close
    exchange = {p.set_frequency_mhz: p for p in result.series("exchange2")}
    speedup = exchange[400.0].normalized_runtime / (
        exchange[3400.0].normalized_runtime
    )
    assert speedup > 6.0

    # power jump at 3.5 GHz (Precision Boost voltage step)
    leela_power = {p.set_frequency_mhz: p.package_power_w
                   for p in result.series("leela")}
    boost_slope_w_per_mhz = (
        leela_power[3500.0] - leela_power[3400.0]
    ) / 100.0
    nominal_slope_w_per_mhz = (
        leela_power[3400.0] - leela_power[3000.0]
    ) / 400.0
    # the 100 MHz into boost is much steeper than the nominal slope
    assert boost_slope_w_per_mhz > 2.0 * nominal_slope_w_per_mhz

    # the Ryzen AVX cap (3.0 GHz) saturates cam4/lbm above it
    cam4 = {p.set_frequency_mhz: p for p in result.series("cam4")}
    assert cam4[3400.0].normalized_runtime == pytest.approx(
        cam4[3000.0].normalized_runtime, rel=0.02
    )
