"""Fig 9: proportional-share policies on Skylake (leela vs cactusBSSN).

Paper shapes: (1) low dynamic range — at 90/10 the low-share app gets
more than its share of frequency and power, because the 800 MHz floor
binds; (2) frequency shares and performance shares give very similar
results, the paper's argument for the simpler policy.
"""

import pytest

from repro.experiments.shares_exp import run_fig9_shares_skylake


def test_fig9_shares_skylake(regen):
    result = regen(
        run_fig9_shares_skylake,
        limits_w=(50.0, 40.0),
        duration_s=45.0,
        warmup_s=20.0,
    )

    for policy in ("frequency-shares", "performance-shares"):
        for limit in (50.0, 40.0):
            # monotone: more shares, more resource
            fractions = [
                result.cell(policy, limit, ld).ld_frequency_fraction
                for ld in (10, 30, 50, 70, 90)
            ]
            # non-decreasing: ties happen where the floor/ceiling binds
            assert all(
                b >= a - 0.02 for a, b in zip(fractions, fractions[1:])
            )
            assert fractions[-1] > fractions[0] + 0.2

            # mid-range ratios are honoured
            mid = result.cell(policy, limit, 50.0)
            assert mid.ld_frequency_fraction == pytest.approx(0.5, abs=0.06)

            # low dynamic range: at 90/10 the HD app exceeds its 10%
            edge = result.cell(policy, limit, 90.0)
            assert 1.0 - edge.ld_frequency_fraction > 0.10

            # limits respected
            for ld in (10, 50, 90):
                cell = result.cell(policy, limit, ld)
                assert cell.package_power_w <= limit + 2.0

    # frequency shares ~= performance shares (the paper's headline)
    for limit in (50.0, 40.0):
        for ld in (30, 50, 70):
            freq_cell = result.cell("frequency-shares", limit, ld)
            perf_cell = result.cell("performance-shares", limit, ld)
            assert freq_cell.ld_performance_fraction == pytest.approx(
                perf_cell.ld_performance_fraction, abs=0.07
            )
