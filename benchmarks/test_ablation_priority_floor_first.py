"""Ablation: the two admission orders of paper section 4.1.

The paper describes both priority flavours — starve LP so HP can boost
(what its implementation does) and "first allocate the minimum required
power to all cores to execute" (floor-first).  This ablation runs the
3H7L @ 40 W scenario under both and quantifies the trade: floor-first
buys LP liveness with the HP turbo headroom.
"""

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.priority import PriorityConfig, PriorityPolicy
from repro.core.types import ManagedApp, Priority
from repro.hw.platform import skylake_xeon_4114
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app


def run_variant(floor_first: bool):
    platform = skylake_xeon_4114()
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    apps = (
        [spec_app("cactusBSSN", steady=True)] * 2
        + [spec_app("leela", steady=True)]
        + [spec_app("cactusBSSN", steady=True)] * 3
        + [spec_app("leela", steady=True)] * 4
    )
    placements = pin_apps(chip, apps)
    managed = [
        ManagedApp(
            label=p.label, core_id=p.core_id,
            priority=Priority.HIGH if i < 3 else Priority.LOW,
        )
        for i, p in enumerate(placements)
    ]
    policy = PriorityPolicy(
        platform, managed, 40.0,
        priority_config=PriorityConfig(floor_first=floor_first),
    )
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(40.0)
    window = [s for s in daemon.history if s.time_s >= 20.0]
    n = len(window)
    hp_freq = sum(
        s.app_frequency_mhz["cactusBSSN#0"] for s in window
    ) / n
    lp_parked = sum(s.app_parked["leela#1"] for s in window) / n
    lp_freq = sum(s.app_frequency_mhz["leela#1"] for s in window) / n
    power = sum(s.package_power_w for s in window) / n
    return hp_freq, lp_parked, lp_freq, power


def test_ablation_priority_floor_first(regen):
    results = regen(
        lambda: {mode: run_variant(mode) for mode in (False, True)}
    )
    starve_hp, starve_parked, _starve_lp, starve_power = results[False]
    floor_hp, floor_parked, floor_lp, floor_power = results[True]

    # the paper's implementation: LP parked, HP boosted above nominal
    assert starve_parked > 0.8
    assert starve_hp > 2500.0

    # floor-first: LP alive at or above the floor, HP loses the boost
    assert floor_parked < 0.1
    assert floor_lp >= 790.0
    assert floor_hp < starve_hp - 300.0

    # both enforce the limit
    assert starve_power <= 41.0
    assert floor_power <= 41.5
