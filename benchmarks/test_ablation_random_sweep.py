"""Ablation: many random mixes, not just Table 3's two.

The paper drew two random benchmark subsets for generality (section
6.3); the simulator affords more.  Across several seeded draws of the
Fig 11 methodology, higher shares must never buy *less* frequency — up
to quantisation ties and the legitimate AVX-saturation exception the
paper's own set B exhibits.
"""

import pytest

from repro.experiments.random_sweep import SHARE_LEVELS, run_random_sweep


def test_ablation_random_sweep(regen):
    result = regen(
        run_random_sweep,
        n_seeds=5, duration_s=35.0, warmup_s=15.0, limit_w=45.0,
    )
    assert len(result.mixes) == 5
    # all five draws distinct (the generator actually randomises)
    assert len({m.benchmarks for m in result.mixes}) >= 4

    # monotone share -> frequency ordering in every mix
    assert result.total_ordering_violations() == 0

    for mix in result.mixes:
        # the top share level always gets meaningfully more than the
        # bottom one
        assert mix.freq_by_level_mhz[-1] > mix.freq_by_level_mhz[0] + 400
        # the limit is enforced for every random mix
        assert mix.package_power_w <= result.limit_w + 1.5
        # the floor binds at the bottom (low dynamic range, paper 6.2)
        assert mix.freq_by_level_mhz[0] == pytest.approx(800.0, abs=120.0)
