"""Fig 6: time-shared power consumption on a single Ryzen core.

Paper shape: with cactusBSSN (HD) and gcc (LD) time sharing one core at
3.4 GHz, average core power is the residency-weighted sum of the two
apps' standalone draws — linear in the varied CPU quota, anchored by the
two 100%-alone measurements.
"""

import pytest

from repro.experiments.timeshare_exp import (
    expected_mixture_power_w,
    run_fig6_timeshare,
)


def test_fig6_timeshare_power(regen):
    result = regen(run_fig6_timeshare, duration_s=10.0)

    hd, ld = "cactusBSSN", "gcc"
    # standalone anchor: HD draws more than LD at the same frequency
    assert result.alone_power_w[hd] > result.alone_power_w[ld]

    for fixed, varied in ((hd, ld), (ld, hd)):
        series = result.series(varied)
        powers = [p.core_power_w for p in series]
        quotas = [p.varied_quota for p in series]
        # monotone in the varied quota
        assert all(b > a for a, b in zip(powers, powers[1:]))
        # linear: interior points sit on the chord between the endpoints
        slope = (powers[-1] - powers[0]) / (quotas[-1] - quotas[0])
        for quota, power in zip(quotas, powers):
            predicted = powers[0] + slope * (quota - quotas[0])
            assert power == pytest.approx(predicted, rel=0.03)
        # and close to the residency-weighted mixture model
        for point in series:
            expected = expected_mixture_power_w(
                result, fixed, varied, point.varied_quota
            )
            assert point.core_power_w == pytest.approx(expected, rel=0.10)

    # the two 50/50 mixes coincide (same residency split)
    hd_series = {p.varied_quota: p for p in result.series(hd)}
    ld_series = {p.varied_quota: p for p in result.series(ld)}
    assert hd_series[0.5].core_power_w == pytest.approx(
        ld_series[0.5].core_power_w, rel=0.02
    )
