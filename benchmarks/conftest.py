"""Benchmark-harness helpers.

Every benchmark regenerates one table or figure from the paper's
evaluation and asserts its *shape* — who wins, by roughly what factor,
where the crossovers fall (see DESIGN.md section 4).  Wall-clock time of
the regeneration is what pytest-benchmark reports.

Durations are trimmed relative to the paper's 600 s runs; the simulated
system reaches steady state within a few daemon iterations, so shorter
measurement windows preserve the shapes.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regen(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
            warmup_rounds=0,
        )

    return _run
