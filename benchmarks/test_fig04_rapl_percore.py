"""Fig 4: impact of RAPL on per-core DVFS (gcc on all ten cores).

Paper shapes: (a) power saved by software-throttled cores is used by the
unconstrained cores to run faster; (b) RAPL finds a global maximum
frequency and only reduces the *unconstrained* cores' frequency — the
throttled cores keep their set-points.
"""

import pytest

from repro.experiments.rapl_interference import run_fig4_percore_dvfs


def test_fig4_rapl_with_percore_dvfs(regen):
    result = regen(
        run_fig4_percore_dvfs, duration_s=14.0, warmup_s=6.0,
        limits_w=(85.0, 60.0, 50.0, 40.0),
    )
    for limit in (50.0, 40.0):
        series = result.series(limit)
        by_throttle = {p.throttled_set_mhz: p for p in series}

        # (a) deeper software throttling frees power: the unconstrained
        # group runs faster when the other half is at 800 MHz than when
        # both halves request 2.5 GHz
        assert (
            by_throttle[800.0].unconstrained_freq_mhz
            > by_throttle[2500.0].unconstrained_freq_mhz
        )
        assert (
            by_throttle[800.0].unconstrained_norm_perf
            > by_throttle[2500.0].unconstrained_norm_perf
        )

        # (b) RAPL throttles only the fastest cores: the throttled group
        # keeps its set-point whenever that is below the global cap
        for throttle in (800.0, 1200.0):
            point = by_throttle[throttle]
            assert point.throttled_freq_mhz == pytest.approx(
                throttle, rel=0.02
            )
            # while the unconstrained group is clipped below its request
            assert point.unconstrained_freq_mhz <= 2500.0 + 1.0

        # limits are enforced
        for point in series:
            assert point.package_power_w <= limit + 1.5

    # at 85 W nothing binds: both groups at their requests
    for point in result.series(85.0):
        assert point.unconstrained_freq_mhz == pytest.approx(2500.0, abs=25)
