"""Fig 11 (and Table 3): random-mix share experiments on Skylake.

Paper shapes: for set A, resource and performance rise with shares, with
exchange2 (A3) under-performing and perlbench (A1) over-performing their
shares under performance shares (frequency sensitivity); for set B the
AVX apps (B3 cam4, B4 lbm) saturate and cannot reach full frequency even
at 85 W; at 40 W the shrunken dynamic range compresses proportionality.
"""

import pytest

from repro.experiments.random_exp import run_fig11_random_skylake


def test_fig11_random_mixes(regen):
    result = regen(
        run_fig11_random_skylake,
        limits_w=(85.0, 50.0, 40.0),
        duration_s=45.0,
        warmup_s=20.0,
    )

    # --- set A at 50 W: frequency fractions rise with shares
    for policy in ("frequency-shares", "performance-shares"):
        series = result.series("A", policy, 50.0)
        fractions = [c.frequency_fraction for c in series]
        assert all(b >= a - 0.01 for a, b in zip(fractions, fractions[1:]))

    # --- performance shares: exchange2 (A3) runs *slower* relative to
    # its shares than perlbench (A1) does, despite holding more shares;
    # normalized perf per share reveals the sensitivity gap
    series = {c.benchmark: c
              for c in result.series("A", "performance-shares", 50.0)}
    exchange = series["exchange2"]
    perlbench = series["perlbench"]
    assert (
        perlbench.norm_perf / perlbench.shares
        > exchange.norm_perf / exchange.shares
    )

    # --- set B at 85 W: the AVX apps saturate below full frequency
    series = {c.benchmark: c
              for c in result.series("B", "frequency-shares", 85.0)}
    assert series["cam4"].mean_frequency_mhz <= 1700.0 + 10.0
    assert series["lbm"].mean_frequency_mhz <= 1700.0 + 10.0
    # while the top-share non-AVX app runs way above the AVX cap
    assert series["lbm"].shares == 100.0  # B4 holds the top shares
    non_avx_top = max(
        c.mean_frequency_mhz
        for c in result.series("B", "frequency-shares", 85.0)
        if c.benchmark not in ("cam4", "lbm")
    )
    assert non_avx_top > 2000.0

    # --- compressed dynamic range at 40 W: the spread of frequency
    # fractions between the lowest and highest share is narrower than
    # the share spread itself
    series = result.series("A", "frequency-shares", 40.0)
    spread = series[-1].frequency_fraction - series[0].frequency_fraction
    share_spread = (series[-1].shares - series[0].shares) / sum(
        c.shares for c in series
    )
    assert spread < share_spread

    # --- limits respected
    for app_set in ("A", "B"):
        for limit in (50.0, 40.0):
            cells = result.series(app_set, "frequency-shares", limit)
            assert cells[0].package_power_w <= limit + 2.0
