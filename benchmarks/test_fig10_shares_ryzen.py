"""Fig 10: proportional shares on Ryzen — frequency, performance, and
power shares side by side.

Paper shapes: the daemon shares resources accurately in the 30/70-70/30
band but cannot push an app below ~20% of the resource (the 800 MHz
daemon floor); frequency shares give the most accurate performance
control; power shares provide the worst performance isolation.
"""

import pytest

from repro.experiments.shares_exp import run_fig10_shares_ryzen


def test_fig10_shares_ryzen(regen):
    result = regen(
        run_fig10_shares_ryzen,
        limits_w=(50.0, 40.0),
        duration_s=45.0,
        warmup_s=20.0,
    )

    policies = ("frequency-shares", "performance-shares", "power-shares")

    # accurate sharing in the 30/70..70/30 band, per managed resource.
    # At 40 W no app saturates and the split is honoured everywhere; at
    # 50 W the 70-share leela class reaches its all-core turbo ceiling
    # and min-funding revocation hands the surplus to the other class
    # (work conservation over strict proportionality, paper section 5.2),
    # so the 70/30 point reads lower than 0.70 there by design.
    metric = {
        "frequency-shares": lambda c: c.ld_frequency_fraction,
        "performance-shares": lambda c: c.ld_performance_fraction,
        "power-shares": lambda c: c.ld_power_fraction,
    }
    for policy in policies:
        for ld in (30, 50, 70):
            cell = result.cell(policy, 40.0, ld)
            assert metric[policy](cell) == pytest.approx(
                ld / 100.0, abs=0.06
            )
        for ld in (30, 50):
            cell = result.cell(policy, 50.0, ld)
            assert metric[policy](cell) == pytest.approx(
                ld / 100.0, abs=0.06
            )
        saturated = result.cell(policy, 50.0, 70.0)
        assert 0.58 <= metric[policy](saturated) <= 0.76
        # the saturated class still runs at its achievable ceiling
        assert saturated.ld_norm_perf > 0.85

    # ~20% floor: 10 shares cannot buy less than about a fifth of the
    # frequency (the paper's 800 MHz floor observation)
    for policy in policies:
        cell = result.cell(policy, 40.0, 10.0)
        assert cell.ld_frequency_fraction > 0.15

    # power shares isolate performance worst: their perf fraction
    # deviates most from the share split at the asymmetric ratio
    def perf_deviation(policy, ld):
        cell = result.cell(policy, 40.0, ld)
        return abs(cell.ld_performance_fraction - ld / 100.0)

    assert perf_deviation("power-shares", 30.0) > (
        perf_deviation("frequency-shares", 30.0) + 0.03
    )

    # power shares track *power* precisely even while perf drifts
    cell = result.cell("power-shares", 40.0, 30.0)
    assert cell.ld_power_fraction == pytest.approx(0.30, abs=0.04)

    # per-core power telemetry present on every cell (Ryzen feature)
    for policy in policies:
        assert result.cell(policy, 50.0, 50.0).ld_power_fraction is not None
