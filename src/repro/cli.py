"""Command-line entry point: regenerate any of the paper's experiments.

Usage::

    repro-power list
    repro-power table1 [--platform skylake]
    repro-power fig1 | fig4 | fig5 | fig6 | fig7 | fig8 | fig9 | fig10 \
                | fig11 | fig12
    repro-power run --platform skylake --policy frequency-shares \
                --limit 50 --apps leela:90,cactusBSSN:10 --duration 40
    repro-power run --faults full-storm --fault-seed 7 --duration 120
    repro-power report --quick --jobs 4
    repro-power sweep --seeds 10 --jobs 4
    repro-power fleet --quick
    repro-power fleet --partition-rack row1/rack3
    repro-power faults [--json]

``--quick`` shortens runs for smoke testing; results keep their shape
but are noisier.  ``--jobs N`` (report/sweep) fans independent runs
across N worker processes; results are deterministic and input-ordered
regardless of N.  Completed runs are cached on disk keyed by their full
config — ``--no-cache`` (or ``REPRO_NO_CACHE=1``) bypasses the cache.
``--faults`` replays a named, seeded fault scenario
against the daemon (flaky MSRs, garbage counters, dropped ticks, app
crashes) and reports its health record — holdovers, retries,
quarantines, and safe-mode transitions.  ``--engine scalar|array``
(run/watch/sweep/cluster) picks the simulation engine — the batched
array kernel by default, the scalar reference for cross-checks; both
produce bit-identical results.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import AppSpec, ENGINES, ExperimentConfig
from repro.core.types import Priority
from repro.errors import ReproError
from repro.experiments.report import render_kv, render_table
from repro.experiments.runner import BATCH_TICK_S, run_steady
from repro.experiments import tables as tables_mod


def _duration_args(args) -> dict:
    if args.quick:
        return {"duration_s": 30.0, "warmup_s": 12.0}
    return {}


def _cmd_table1(args) -> int:
    print(render_kv(tables_mod.table1_features(args.platform),
                    title=f"Table 1 — {args.platform}"))
    return 0


def _cmd_table2(args) -> int:
    print(render_table(tables_mod.table2_rows(), title="Table 2"))
    return 0


def _cmd_table3(args) -> int:
    print(render_table(tables_mod.table3_rows(), title="Table 3"))
    return 0


def _cmd_fig1(args) -> int:
    from repro.experiments.rapl_interference import run_fig1_rapl_interference

    result = run_fig1_rapl_interference(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 1 — RAPL interference"))
    return 0


def _cmd_fig2(args) -> int:
    from repro.experiments.dvfs_sweep import run_dvfs_sweep

    result = run_dvfs_sweep("skylake")
    print(render_table(result.to_rows(), title="Fig 2 — DVFS sweep (Skylake)"))
    return 0


def _cmd_fig3(args) -> int:
    from repro.experiments.dvfs_sweep import run_dvfs_sweep

    result = run_dvfs_sweep("ryzen")
    print(render_table(result.to_rows(), title="Fig 3 — DVFS sweep (Ryzen)"))
    return 0


def _cmd_fig4(args) -> int:
    from repro.experiments.rapl_interference import run_fig4_percore_dvfs

    result = run_fig4_percore_dvfs(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 4 — RAPL + per-core DVFS"))
    return 0


def _cmd_fig5(args) -> int:
    from repro.experiments.latency_exp import run_fig5_unfair_throttling

    result = run_fig5_unfair_throttling(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 5 — unfair throttling"))
    return 0


def _cmd_fig6(args) -> int:
    from repro.experiments.timeshare_exp import run_fig6_timeshare

    result = run_fig6_timeshare()
    print(render_table(result.to_rows(), title="Fig 6 — time-shared power"))
    return 0


def _cmd_fig7(args) -> int:
    from repro.experiments.priority_exp import run_fig7_priority_skylake

    result = run_fig7_priority_skylake(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 7 — priority (Skylake)"))
    return 0


def _cmd_fig8(args) -> int:
    from repro.experiments.priority_exp import run_fig8_priority_ryzen

    result = run_fig8_priority_ryzen(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 8 — priority (Ryzen)"))
    return 0


def _cmd_fig9(args) -> int:
    from repro.experiments.shares_exp import run_fig9_shares_skylake

    result = run_fig9_shares_skylake(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 9 — shares (Skylake)"))
    return 0


def _cmd_fig10(args) -> int:
    from repro.experiments.shares_exp import run_fig10_shares_ryzen

    result = run_fig10_shares_ryzen(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 10 — shares (Ryzen)"))
    return 0


def _cmd_fig11(args) -> int:
    from repro.experiments.random_exp import run_fig11_random_skylake

    result = run_fig11_random_skylake(**_duration_args(args))
    print(render_table(result.to_rows(), title="Fig 11 — random mixes"))
    return 0


def _cmd_fig12(args) -> int:
    from repro.experiments.latency_exp import (
        normalized_latency,
        run_fig12_policies,
    )

    result = run_fig12_policies(**_duration_args(args))
    print(render_table(result.to_rows(), title="Figs 12/13 — latency policies"))
    rows = []
    for limit in sorted({r.limit_w for r in result.runs}):
        for policy in ("rapl", "frequency-shares", "performance-shares"):
            try:
                rows.append(
                    {
                        "policy": policy,
                        "limit_w": limit,
                        "latency_vs_alone": normalized_latency(
                            result, policy, limit
                        ),
                    }
                )
            except ReproError:
                continue
    print(render_table(rows, title="Fig 12 normalized"))
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.full_report import generate_report

    generate_report(
        quick=args.quick,
        stream=sys.stdout,
        jobs=getattr(args, "jobs", None),
        use_cache=not getattr(args, "no_cache", False),
    )
    return 0


def _cmd_sweep(args) -> int:
    from repro.experiments.cache import ResultCache
    from repro.experiments.random_sweep import run_random_sweep

    cache = ResultCache.from_env(enabled=not args.no_cache)
    result = run_random_sweep(
        policy=args.policy,
        limit_w=args.limit,
        n_seeds=args.seeds,
        **(
            {"duration_s": 20.0, "warmup_s": 9.0} if args.quick else {}
        ),
        jobs=args.jobs,
        cache=cache,
        engine=args.engine,
    )
    print(render_table(result.to_rows(), title=(
        f"Random sweep — {result.policy} @ {result.limit_w:.0f} W, "
        f"{args.seeds} seeds"
    )))
    print(f"total ordering violations: "
          f"{result.total_ordering_violations()}")
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, "
              f"{cache.stats.misses} misses, "
              f"{cache.stats.stores} stored")
    return 0


def _cmd_cluster(args) -> int:
    from repro.cluster import ClusterConfig, NodeSpec
    from repro.experiments.cache import ResultCache
    from repro.experiments.cluster_exp import run_cluster_experiment

    if args.shares:
        shares = [float(part) for part in args.shares.split(",")]
    else:
        shares = [2.0 if i < args.nodes // 2 else 1.0
                  for i in range(args.nodes)]
    apps = _parse_apps(args.apps)
    nodes = []
    for i, node_shares in enumerate(shares):
        name = f"node{i}"
        crash = (
            args.crash_at
            if args.crash_node is not None and args.crash_node == i
            else None
        )
        nodes.append(NodeSpec(
            name=name,
            apps=apps,
            platform=args.platform,
            policy=args.policy,
            shares=node_shares,
            crashes_at_s=crash,
            faults=args.faults,
        ))
    config = ClusterConfig(
        budget_w=args.budget,
        nodes=tuple(nodes),
        epoch_ticks=args.epoch_ticks,
        seed=args.seed,
        transport=args.transport_faults,
        lease_ttl_epochs=args.lease_ttl,
        crash_faults=args.crash_faults,
        telemetry=args.telemetry_faults,
        **({} if args.engine is None else {"engine": args.engine}),
    )
    cache = ResultCache.from_env(enabled=not args.no_cache)
    result = run_cluster_experiment(
        config,
        duration_s=args.duration,
        warmup_s=min(args.duration / 3, 40.0),
        jobs=args.jobs,
        cache=cache,
    )
    print(render_table(result.to_rows(), title=(
        f"Cluster — {len(nodes)} nodes, {args.policy} @ "
        f"{args.budget:.0f} W facility budget, "
        f"epoch {args.epoch_ticks} ticks"
    )))
    print(f"mean cluster power {result.mean_total_power_w:.1f} W; "
          f"max cap sum {result.max_cap_sum_w:.1f} W of "
          f"{args.budget:.0f} W budget; "
          f"cap violations {result.cap_violations}")
    if args.transport_faults is not None:
        t = result.transport
        print(
            f"control plane ({args.transport_faults}, lease TTL "
            f"{args.lease_ttl} epochs): "
            f"{t.get('sent', 0)} sent, {t.get('delivered', 0)} delivered, "
            f"{t.get('dropped', 0)} dropped, {t.get('delayed', 0)} delayed, "
            f"{t.get('duplicated', 0)} duplicated, "
            f"{t.get('stale', 0)} stale; "
            f"{result.safe_node_epochs} safe node-epochs, "
            f"{result.degraded_grants} degraded grants"
        )
    if args.crash_faults is not None:
        print(
            f"crash faults ({args.crash_faults}): "
            f"{result.crash_recoveries} arbiter recoveries (journal "
            f"redo), {result.node_restarts} node restarts, "
            f"{result.safe_node_epochs} safe node-epochs"
        )
    if args.telemetry_faults is not None:
        print(
            f"telemetry faults ({args.telemetry_faults}): "
            f"{result.trust_violations} reports flagged, "
            f"{result.quarantined_node_epochs} quarantined "
            f"node-epochs, {result.brownout_epochs} brownout epochs"
        )
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, "
              f"{cache.stats.misses} misses, "
              f"{cache.stats.stores} stored")
    return 0


def _cmd_fleet(args) -> int:
    from repro.experiments.cache import ResultCache
    from repro.experiments.fleet_exp import (
        fleet_config,
        fleet_rollup,
        oversubscription_report,
        rack_partition,
        run_fleet_experiment,
    )
    from repro.fleet import DiurnalSchedule, grid_topology

    if args.quick:
        rows, racks, rack_nodes, epoch_ticks = 2, 2, 8, 4
    else:
        rows, racks, rack_nodes, epoch_ticks = (
            args.rows, args.racks, args.rack_nodes, args.epoch_ticks
        )
    schedule = DiurnalSchedule(
        period_epochs=args.period,
        base_active_fraction=args.trough,
        peak_active_fraction=args.peak,
        row_phase_epochs=args.row_phase,
    )
    transport = None
    if args.partition_rack is not None:
        topology, _ = grid_topology(rows, racks, rack_nodes)
        transport = rack_partition(
            topology,
            args.partition_rack,
            args.partition_start,
            args.partition_end,
        )
    config = fleet_config(
        rows,
        racks,
        rack_nodes,
        seed=args.seed,
        schedule=schedule,
        budget_w=args.budget,
        transport=transport,
        crash_faults=args.crash_faults,
        lease_ttl_epochs=args.lease_ttl,
        epoch_ticks=epoch_ticks,
        engine=args.engine,
    )
    forecast = oversubscription_report(config)
    n_nodes = len(config.nodes)
    print(render_kv(
        {
            "nodes": f"{rows} rows x {racks} racks x {rack_nodes} "
                     f"= {n_nodes}",
            "budget_w": f"{config.budget_w:.1f}",
            "sum_ceilings_w": f"{forecast.ceiling_sum_w:.1f}",
            "oversubscription": f"{forecast.ratio:.2f}x",
            "forecast_peak_w": f"{forecast.peak_demand_w:.1f}",
            "forecast_margin_w": f"{forecast.margin_w:.1f}",
            "statistically_safe": str(forecast.safe).lower(),
        },
        title="Fleet — oversubscribed facility budget",
    ))
    cache = ResultCache.from_env(enabled=not args.no_cache)
    result = run_fleet_experiment(
        config,
        duration_s=(
            args.days * args.period * config.epoch_s
            if args.days is not None else None
        ),
        jobs=args.jobs,
        cache=cache,
    )
    print(render_table(fleet_rollup(result), title=(
        f"Row roll-up — diurnal day, {result.duration_s:.0f}s "
        f"simulated"
    )))
    total_epochs = int(result.duration_s / config.epoch_s)
    print(
        f"invariant: max cap sum {result.max_cap_sum_w:.1f} W of "
        f"{config.budget_w:.1f} W budget over {total_epochs} epochs; "
        f"violations {result.cap_violations}"
    )
    print(
        f"SLO attainment {result.slo_attainment:.3f} "
        f"(throttle <= 0.25 on active node-epochs); "
        f"{result.shed_grants} grants shed to floor; "
        f"{result.idle_node_epochs} idle node-epochs skipped"
    )
    refills = result.fleet_refilled + result.fleet_reused
    reuse_pct = 100.0 * result.fleet_reused / refills if refills else 0.0
    print(
        f"incremental arbitration: {result.fleet_refilled} rack "
        f"water-fills recomputed, {result.fleet_reused} reused from "
        f"clean subtrees ({reuse_pct:.0f}% reuse)"
    )
    if transport is not None:
        print(
            f"rack partition {args.partition_rack} epochs "
            f"{args.partition_start}-{args.partition_end}: "
            f"{result.safe_node_epochs} safe node-epochs, "
            f"{result.degraded_grants} degraded grants "
            f"(contained to {rack_nodes} nodes)"
        )
    if args.crash_faults is not None:
        print(
            f"crash faults ({args.crash_faults}): "
            f"{result.crash_recoveries} arbiter recoveries, "
            f"{result.node_restarts} node restarts"
        )
    if cache is not None:
        print(f"cache: {cache.stats.hits} hits, "
              f"{cache.stats.misses} misses, "
              f"{cache.stats.stores} stored")
    return 0


def _cmd_gaming(args) -> int:
    from repro.experiments.gaming_exp import run_gaming_experiment

    result = run_gaming_experiment()
    print(render_table(result.to_rows(), title=(
        f"Gaming ablation — {result.benchmark}, performance shares @ "
        f"{result.limit_w:.0f} W"
    )))
    print(f"gaming payoff: {result.gaming_payoff:.2f} "
          "(<1: padding with NOPs backfired)")
    return 0


def _cmd_consolidation(args) -> int:
    from repro.experiments.consolidation_exp import (
        run_consolidation_experiment,
    )

    rows = [
        run_consolidation_experiment(consolidate=mode).to_row()
        for mode in (False, True)
    ]
    print(render_table(rows, title=(
        "LP starvation vs consolidation (3H7L @ 40 W)"
    )))
    return 0


def _print_health(stack) -> None:
    """Report daemon degradation for a fault-injected run."""
    from repro.faults import health_summary

    summary = health_summary(stack.daemon.history)
    if stack.fault_msr is not None:
        stats = stack.fault_msr.stats
        summary["injected_msr_faults"] = stats.total()
    if stack.tick_gate is not None:
        summary["dropped_ticks"] = stack.tick_gate.stats.dropped
        summary["jittered_ticks"] = stack.tick_gate.stats.jittered
    print()
    print(render_kv(summary, title=(
        f"Daemon health — faults={stack.faults.name} "
        f"(seed {stack.faults.seed})"
    )))


def _cmd_watch(args) -> int:
    from repro.config import build_stack
    from repro.experiments.sparkline import sparkline, strip_chart

    config = ExperimentConfig(
        platform=args.platform,
        policy=args.policy,
        limit_w=args.limit,
        apps=_parse_apps(args.apps),
        tick_s=BATCH_TICK_S,
        faults=args.faults,
        fault_seed=args.fault_seed,
        **({} if args.engine is None else {"engine": args.engine}),
    )
    stack = build_stack(config)
    stack.engine.run(args.duration)
    history = stack.daemon.history
    power = [s.package_power_w for s in history]
    print(strip_chart(
        power,
        label=(
            f"package power, {args.policy} @ {args.limit:.0f} W "
            f"(dashes mark the limit)"
        ),
        reference=args.limit,
    ))
    print()
    width = max(len(label) for label in stack.labels)
    for label in stack.labels:
        series = [s.app_frequency_mhz[label] for s in history]
        print(f"{label.ljust(width)}  {sparkline(series, width=60)} "
              f"{series[-1]:6.0f} MHz")
    if stack.faults is not None:
        modes = [
            "S" if s.health.mode == "safe" else
            ("h" if s.health.holdover else ".")
            for s in history
        ]
        print(f"{'mode'.ljust(width)}  {''.join(modes[-60:])} "
              "(.=normal h=holdover S=safe)")
        _print_health(stack)
    return 0


def _parse_apps(spec: str) -> tuple[AppSpec, ...]:
    apps = []
    for part in spec.split(","):
        fields = part.strip().split(":")
        name = fields[0]
        shares = float(fields[1]) if len(fields) > 1 else 1.0
        priority = Priority.LOW if (
            len(fields) > 2 and fields[2].lower().startswith("l")
        ) else Priority.HIGH
        apps.append(AppSpec(name, shares=shares, priority=priority))
    return tuple(apps)


def _cmd_run(args) -> int:
    from repro.config import build_stack

    config = ExperimentConfig(
        platform=args.platform,
        policy=args.policy,
        limit_w=args.limit,
        apps=_parse_apps(args.apps),
        tick_s=BATCH_TICK_S,
        faults=args.faults,
        fault_seed=args.fault_seed,
        **({} if args.engine is None else {"engine": args.engine}),
    )
    stack = build_stack(config)
    result = run_steady(
        config,
        duration_s=args.duration,
        warmup_s=min(args.duration / 2, 20.0),
        stack=stack,
    )
    rows = [
        {
            "app": a.label,
            "freq_mhz": a.mean_frequency_mhz,
            "norm_perf": a.normalized_performance,
            "core_w": a.mean_power_w,
            "parked": a.parked_fraction,
        }
        for a in result.apps
    ]
    print(render_table(rows, title=(
        f"{args.policy} @ {args.limit} W on {args.platform} "
        f"(pkg {result.mean_package_power_w:.1f} W)"
    )))
    if stack.faults is not None:
        _print_health(stack)
    return 0


_COMMANDS = {
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "table3": _cmd_table3,
    "fig1": _cmd_fig1,
    "fig2": _cmd_fig2,
    "fig3": _cmd_fig3,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "fig9": _cmd_fig9,
    "fig10": _cmd_fig10,
    "fig11": _cmd_fig11,
    "fig12": _cmd_fig12,
    "fig13": _cmd_fig12,  # Fig 13 data comes out of the Fig 12 runs
    "gaming": _cmd_gaming,
    "consolidation": _cmd_consolidation,
    "report": _cmd_report,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=(
            "Reproduce experiments from 'Per-Application Power Delivery' "
            "(EuroSys 2019)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    list_parser = sub.add_parser("list", help="list available experiments")
    faults_parser = sub.add_parser(
        "faults", help="list fault-injection scenarios for --faults"
    )
    faults_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable listing (all scenario fields, one JSON "
             "object keyed by scenario family)",
    )
    for name in _COMMANDS:
        exp_parser = sub.add_parser(name, help=f"regenerate {name}")
        exp_parser.add_argument("--platform", default="skylake")
        exp_parser.add_argument(
            "--quick", action="store_true", help="shorter, noisier runs"
        )
        if name == "report":
            exp_parser.add_argument(
                "--jobs", type=int, default=None, metavar="N",
                help="fan independent runs across N worker processes",
            )
            exp_parser.add_argument(
                "--no-cache", action="store_true",
                help="bypass the on-disk result cache",
            )
    # 'lint' is listed for help/discoverability; main() forwards its
    # arguments to repro.analysis.cli before this parser ever runs
    # (argparse.REMAINDER cannot forward leading options).
    sub.add_parser(
        "lint",
        help="static analysis: determinism, unit-safety, fail-safety "
             "contracts (see DESIGN.md §10)",
        add_help=False,
    )
    cluster = sub.add_parser(
        "cluster",
        help="N simulated nodes under one facility budget "
             "(hierarchical arbitration)",
    )
    cluster.add_argument("--nodes", type=int, default=4, metavar="N",
                         help="number of nodes (default 4)")
    cluster.add_argument("--budget", type=float, default=150.0,
                         help="facility power budget, watts")
    cluster.add_argument(
        "--shares", default=None, metavar="S0,S1,...",
        help="per-node shares (overrides --nodes; default 2:...:1:...)",
    )
    cluster.add_argument("--platform", default="skylake")
    cluster.add_argument("--policy", default="frequency-shares")
    cluster.add_argument(
        "--apps",
        default="leela:50,cactusBSSN:50,leela:50,cactusBSSN:50,"
                "leela:50,cactusBSSN:50",
        help="per-node app list, name[:shares[:high|low]] comma list",
    )
    cluster.add_argument("--epoch-ticks", type=int, default=10,
                         help="daemon iterations per arbitration epoch")
    cluster.add_argument("--duration", type=float, default=120.0,
                         help="simulated seconds")
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--crash-node", type=int, default=None, metavar="I",
        help="index of a node to crash mid-run",
    )
    cluster.add_argument(
        "--crash-at", type=float, default=60.0, metavar="T",
        help="cluster time of the crash (with --crash-node)",
    )
    cluster.add_argument(
        "--faults", default=None, metavar="SCENARIO",
        help="inject a named fault scenario into every node's daemon "
             "(per-node schedules derive from --seed)",
    )
    cluster.add_argument(
        "--transport-faults", default=None, metavar="SCENARIO",
        help="inject a named control-plane fault scenario into the "
             "node<->arbiter message layer (see 'repro-power faults')",
    )
    cluster.add_argument(
        "--telemetry-faults", default=None, metavar="SCENARIO",
        help="corrupt the node->arbiter report stream with a named "
             "telemetry scenario — stuck sensors, drift, demand "
             "inflation, NaN bursts (see 'repro-power faults')",
    )
    cluster.add_argument(
        "--lease-ttl", type=int, default=3, metavar="EPOCHS",
        help="cap-lease TTL in epochs before a silent node steps down "
             "to its floor and then to RAPL-backstop safe mode",
    )
    cluster.add_argument(
        "--crash-faults", default=None, metavar="SCENARIO",
        help="inject a named crash scenario — seeded arbiter crashes "
             "(recovered by journal redo) and node crash/restart "
             "windows (see 'repro-power faults')",
    )
    cluster.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="step nodes across N worker processes (byte-identical "
             "to serial)",
    )
    cluster.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    cluster.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for every node stack (default: "
             "REPRO_SIM_ENGINE or 'array'; results are bit-identical)",
    )
    fleet = sub.add_parser(
        "fleet",
        help="facility -> row -> rack -> node hierarchy at 1,000+ "
             "nodes: diurnal traffic under an oversubscribed budget",
    )
    fleet.add_argument("--rows", type=int, default=4,
                       help="rows in the facility (default 4)")
    fleet.add_argument("--racks", type=int, default=8, metavar="N",
                       help="racks per row (default 8)")
    fleet.add_argument("--rack-nodes", type=int, default=32, metavar="N",
                       help="nodes per rack (default 32; 4x8x32=1024)")
    fleet.add_argument(
        "--budget", type=float, default=None,
        help="facility budget, watts (default: 1.02x the forecast "
             "diurnal peak — statistically-safe oversubscription)",
    )
    fleet.add_argument("--period", type=int, default=24, metavar="EPOCHS",
                       help="diurnal period length (default 24)")
    fleet.add_argument("--trough", type=float, default=0.15,
                       help="active fraction at the diurnal trough")
    fleet.add_argument("--peak", type=float, default=0.65,
                       help="active fraction at the diurnal peak")
    fleet.add_argument(
        "--row-phase", type=int, default=2, metavar="EPOCHS",
        help="phase shift between rows (traffic rolls across the fleet)",
    )
    fleet.add_argument(
        "--days", type=float, default=None,
        help="periods to simulate (default 1.0 — one full day)",
    )
    fleet.add_argument("--epoch-ticks", type=int, default=10,
                       help="daemon iterations per arbitration epoch")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--partition-rack", default=None, metavar="ROW/RACK",
        help="sever one whole rack from the arbiter (e.g. row1/rack3); "
             "only that subtree degrades to floors and SAFE",
    )
    fleet.add_argument(
        "--partition-start", type=int, default=8, metavar="EPOCH",
        help="partition window start (with --partition-rack)",
    )
    fleet.add_argument(
        "--partition-end", type=int, default=14, metavar="EPOCH",
        help="partition window end, exclusive (with --partition-rack)",
    )
    fleet.add_argument(
        "--crash-faults", default=None, metavar="SCENARIO",
        help="inject a named crash scenario (see 'repro-power faults')",
    )
    fleet.add_argument(
        "--lease-ttl", type=int, default=3, metavar="EPOCHS",
        help="cap-lease TTL in epochs",
    )
    fleet.add_argument(
        "--quick", action="store_true",
        help="small smoke fleet (2x2x8 nodes, short epochs)",
    )
    fleet.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="step nodes across N worker processes (byte-identical "
             "to serial)",
    )
    fleet.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    fleet.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for every node stack",
    )
    sweep = sub.add_parser(
        "sweep", help="seeded random-mix sweep (generalized Fig 11)"
    )
    sweep.add_argument("--policy", default="frequency-shares")
    sweep.add_argument("--limit", type=float, default=45.0)
    sweep.add_argument("--seeds", type=int, default=5)
    sweep.add_argument(
        "--quick", action="store_true", help="shorter, noisier runs"
    )
    sweep.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent runs across N worker processes",
    )
    sweep.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache",
    )
    sweep.add_argument(
        "--engine", choices=ENGINES, default=None,
        help="simulation engine for every run (default: "
             "REPRO_SIM_ENGINE or 'array'; results are bit-identical)",
    )
    for name, helptext in (
        ("run", "run a custom configuration"),
        ("watch", "run a custom configuration and chart its dynamics"),
    ):
        custom = sub.add_parser(name, help=helptext)
        custom.add_argument("--platform", default="skylake")
        custom.add_argument("--policy", default="frequency-shares")
        custom.add_argument("--limit", type=float, default=50.0)
        custom.add_argument(
            "--apps",
            default="leela:90,cactusBSSN:10",
            help="comma list of name[:shares[:high|low]]",
        )
        custom.add_argument("--duration", type=float, default=40.0)
        custom.add_argument(
            "--faults",
            default=None,
            metavar="SCENARIO",
            help=(
                "inject a named fault scenario into the daemon "
                "(see 'repro-power faults')"
            ),
        )
        custom.add_argument(
            "--fault-seed", type=int, default=0,
            help="seed for the fault schedule (deterministic replay)",
        )
        custom.add_argument(
            "--engine", choices=ENGINES, default=None,
            help="simulation engine (default: REPRO_SIM_ENGINE or "
                 "'array'; results are bit-identical)",
        )
    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv[:1] == ["lint"]:
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in sorted(_COMMANDS) + [
            "cluster", "fleet", "lint", "run", "sweep", "watch"
        ]:
            print(name)
        return 0
    if args.command == "faults":
        from repro.faults import (
            CRASH_SCENARIOS,
            SCENARIOS,
            TELEMETRY_SCENARIOS,
            TRANSPORT_SCENARIOS,
        )

        if args.json:
            import dataclasses
            import json

            payload = {
                "daemon": {
                    name: dataclasses.asdict(s)
                    for name, s in SCENARIOS.items()
                },
                "transport": {
                    name: dataclasses.asdict(s)
                    for name, s in TRANSPORT_SCENARIOS.items()
                },
                "crash": {
                    name: dataclasses.asdict(s)
                    for name, s in CRASH_SCENARIOS.items()
                },
                "telemetry": {
                    name: dataclasses.asdict(s)
                    for name, s in TELEMETRY_SCENARIOS.items()
                },
            }
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        width = max(
            len(name)
            for name in (
                list(SCENARIOS)
                + list(TRANSPORT_SCENARIOS)
                + list(CRASH_SCENARIOS)
                + list(TELEMETRY_SCENARIOS)
            )
        )
        for name, scenario in sorted(SCENARIOS.items()):
            active = [
                f for f in (
                    "msr_read_fail_rate", "msr_write_fail_rate",
                    "stuck_counter_rate", "garbage_counter_rate",
                    "wrap_storm_rate", "tick_drop_rate",
                    "tick_jitter_rate",
                ) if getattr(scenario, f) > 0
            ]
            if scenario.app_crashes:
                active.append("app_crashes")
            if scenario.window_s is not None:
                active.append(f"window={scenario.window_s}")
            print(f"{name.ljust(width)}  {', '.join(active) or 'clean'}")
        print()
        print("transport scenarios (cluster --transport-faults):")
        for name, ts in sorted(TRANSPORT_SCENARIOS.items()):
            active = [
                f for f in (
                    "drop_rate", "dup_rate", "delay_rate", "reorder_rate",
                ) if getattr(ts, f) > 0
            ]
            if ts.partitions:
                active.append(
                    "partitions=" + ",".join(
                        f"{p.node or '*'}@{p.start_epoch}-{p.end_epoch}"
                        for p in ts.partitions
                    )
                )
            print(f"{name.ljust(width)}  {', '.join(active) or 'clean'}")
        print()
        print("crash scenarios (cluster --crash-faults):")
        for name, cs in sorted(CRASH_SCENARIOS.items()):
            print(f"{name.ljust(width)}  {cs.description}")
        print()
        print("telemetry scenarios (cluster --telemetry-faults):")
        for name, tel in sorted(TELEMETRY_SCENARIOS.items()):
            active = [
                f"{f.node}:{f.kind}@{f.start_epoch}-"
                f"{'' if f.end_epoch is None else f.end_epoch}"
                for f in tel.faults
            ]
            if tel.garbage_rate > 0:
                active.append(f"garbage_rate={tel.garbage_rate}")
            print(f"{name.ljust(width)}  {', '.join(active) or 'clean'}")
        return 0
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "watch":
            return _cmd_watch(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
