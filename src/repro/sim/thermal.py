"""First-order package thermal model (optional substrate).

The paper's experiments are power-limited, not thermally limited, so the
policies never hit thermal throttling in the reproduced figures.  The
model exists because section 2.2 discusses *thermald* and thermally
triggered mechanisms; the ablation benches use it to show the policies
keep working when a thermal cap, rather than RAPL, is the binding
constraint.

Model: lumped RC —

    ``T' = T_ambient + P · R_th``  (steady state)
    ``dT/dt = (T' - T) / tau``

with throttling engaging proportionally above ``t_throttle_c`` and fully
stopping the clock at ``t_max_c``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import clamp


@dataclass(frozen=True)
class ThermalConfig:
    ambient_c: float = 35.0
    #: thermal resistance junction->ambient, Kelvin per watt.
    r_th_k_per_w: float = 0.45
    #: thermal time constant, seconds.
    tau_s: float = 8.0
    t_throttle_c: float = 85.0
    t_max_c: float = 100.0

    def __post_init__(self) -> None:
        if self.tau_s <= 0 or self.r_th_k_per_w <= 0:
            raise ConfigError("tau and R_th must be positive")
        if not self.ambient_c < self.t_throttle_c < self.t_max_c:
            raise ConfigError(
                "need ambient < throttle < max temperatures"
            )


class ThermalModel:
    """Lumped package temperature with proportional throttling."""

    def __init__(self, config: ThermalConfig | None = None):
        self.config = config or ThermalConfig()
        self.temperature_c = self.config.ambient_c

    def step(self, package_power_w: float, dt_s: float) -> None:
        """Advance temperature one tick under the given power draw."""
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        cfg = self.config
        steady = cfg.ambient_c + package_power_w * cfg.r_th_k_per_w
        alpha = clamp(dt_s / cfg.tau_s, 0.0, 1.0)
        self.temperature_c += alpha * (steady - self.temperature_c)

    def throttle_factor(self) -> float:
        """Frequency multiplier in [0, 1] demanded by thermals.

        1.0 below the throttle point, linearly falling to 0.0 at the
        critical temperature.
        """
        cfg = self.config
        if self.temperature_c <= cfg.t_throttle_c:
            return 1.0
        if self.temperature_c >= cfg.t_max_c:
            return 0.0
        span = cfg.t_max_c - cfg.t_throttle_c
        return 1.0 - (self.temperature_c - cfg.t_throttle_c) / span

    def steady_state_c(self, package_power_w: float) -> float:
        """Equilibrium temperature at a constant power draw."""
        return self.config.ambient_c + package_power_w * self.config.r_th_k_per_w
