"""Struct-of-arrays batched chip stepping: the ``array`` engine.

The scalar hot loop (:meth:`repro.sim.chip.Chip.tick`) walks Python
``Core`` objects once per tick.  This module replaces whole *batches* of
ticks with numpy matrix transforms over a ``(ticks, cores)`` layout —
and, for a cluster stepped in lockstep, over all chips stacked along the
core axis into one ``(ticks, nodes x cores)`` batch — while keeping the
``Chip``/``Core`` object graph the single source of truth: state is
*gathered* into arrays at the start of a batch and *committed* back at
the end, so every consumer (daemon, telemetry, policies, tests) sees
exactly the objects it always did.

Equivalence contract (DESIGN.md section 13): results are bit-identical
to the scalar reference.  That holds because

* every elementwise formula replicates the scalar association order
  (:mod:`repro.sim.kernel`);
* order-sensitive accumulators use strictly-sequential
  ``np.add.accumulate`` seeded with the live running value;
* batches are *optimistically* sized and cut at the first tick whose
  behaviour diverges from the batch's invariants: a load finishing (the
  turbo ceiling changes next tick), a ``done`` flip re-marking the chip
  dirty, or the RAPL frequency cap dropping below the fastest unparked
  core's base frequency (the cap would start clipping, which the
  candidate matrices did not model);
* the RAPL limiter's EWMA control loop is a sequential recurrence with
  no closed form, so it is replayed tick-by-tick on local floats in the
  limiter's exact operation order and written back only for the
  committed prefix;
* anything the array path cannot reproduce exactly falls back to the
  scalar loop: websearch clusters attached, non-batch loads (timeshare,
  cluster serving cores), ``dirty_caching=False`` reference mode, grids
  with fewer than two points, gaps shorter than :data:`MIN_BATCH_TICKS`,
  or numpy being unavailable.

Gathering is two-tier.  Rows derived from the resolved P-state view and
the load placement (:class:`_ChipStatic`) are cached on the chip and
rebuilt only when the chip is dirty — every mutation that can change
them (``set_requested_frequency``, ``park``, ``assign_load``, a ``done``
flip) marks the chip dirty.  The one mutation that does *not* is an app
externally marked finished (crash faults); that is why the ``running``
mask is re-read every batch.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING

try:  # pragma: no cover - exercised by absence only
    import numpy as np
except ImportError:  # pragma: no cover - the array engine is then disabled
    np = None  # type: ignore[assignment]

from repro.hw.cstates import EXIT_LATENCY_S, CState
from repro.sim import kernel
from repro.sim.core import BatchCoreLoad, IdleLoad, LoadSample
from repro.units import clamp

if TYPE_CHECKING:
    from repro.hw.pstate import PStateTable
    from repro.hw.rapl import RaplLimiter
    from repro.sim.chip import Chip

#: True when the array engine can run at all.
HAVE_NUMPY = np is not None

#: below this many ticks the fixed numpy call overhead outweighs the
#: vector win; the scalar loop takes the gap (1-tick cadences like the
#: thermal daemon land here automatically).
MIN_BATCH_TICKS = 8
#: candidate-batch ceiling: bounds the work discarded when an event
#: (finish / RAPL bind) cuts a batch short.
MAX_BATCH_TICKS = 512
#: scalar ticks taken after a batch commits nothing (the RAPL cap is
#: actively clipping): the cap moves every tick there, so immediately
#: retrying the vector path would compute and discard full candidate
#: batches one committed tick at a time.
RAPL_SCALAR_TICKS = 32

#: per-table cached grid arrays for the vectorized V/f interpolation
#: (PStateTable is an immutable value type with content hashing).
_GRID_CACHE: dict["PStateTable", tuple["np.ndarray", "np.ndarray"]] = {}

#: shared idle sample: LoadSample is frozen, so idle/parked lanes can
#: all reference one instance (consumers compare fields, not identity).
_IDLE_SAMPLE = LoadSample(0.0, 0.0, 0.0, done=True)

_STATIC_SERIAL = itertools.count()


def _grid_arrays(table: "PStateTable") -> tuple["np.ndarray", "np.ndarray"]:
    cached = _GRID_CACHE.get(table)
    if cached is None:
        freqs = np.asarray(table.frequencies_mhz, dtype=np.float64)
        volts = np.asarray(
            [p.voltage_v for p in table], dtype=np.float64
        )
        cached = (freqs, volts)
        # repro-lint: disable=shared-state-race — pure memo of a frozen table; every process recomputes identical arrays, nothing reads across processes
        _GRID_CACHE[table] = cached
    return cached


def chip_supports_array(chip: "Chip") -> bool:
    """Whether the batched array path can step this chip exactly.

    Anything outside the fast path's modelled invariants — websearch
    clusters (advanced with a global frequency view each tick),
    non-batch loads, the ``dirty_caching=False`` reference mode (which
    re-resolves P-states every tick), or a degenerate V/f grid — takes
    the scalar loop instead.
    """
    if not HAVE_NUMPY or not chip.dirty_caching or chip.clusters:
        return False
    if len(chip.platform.pstates.frequencies_mhz) < 2:
        return False
    for core in chip.cores:
        load_type = type(core.load)
        if load_type is not IdleLoad and load_type is not BatchCoreLoad:
            return False
    return True


class _ChipStatic:
    """Gather rows valid until the chip next re-resolves its P-state view.

    Everything here is a pure function of the resolved base frequencies,
    the load placement, and the platform constants.  Rows come in
    *running* and *idle* variants (the scalar loop evaluates the same
    elementwise formulas at ``eff = base`` for busy lanes and
    ``eff = reference`` for idle/parked lanes); the per-batch step
    selects between them with the live ``running`` mask, which keeps the
    precomputation bit-identical to evaluating on the masked frequency
    row directly.
    """

    def __init__(self, chip: "Chip"):
        self.serial = next(_STATIC_SERIAL)
        self.view_generation = chip._view_generation
        platform = chip.platform
        power = platform.power
        dt = chip.tick_s
        self.grid_f, self.grid_v = _grid_arrays(platform.pstates)
        base = list(chip._base_effective_mhz)
        # parked cores carry base 0.0, so this is the fastest *unparked*
        # base frequency: the threshold below which the RAPL cap clips
        self.base_max = max(base) if base else 0.0
        self.base_list = base
        self.n = len(chip.cores)
        self.uncore = power.uncore_watts
        self.wake_eff = max(0.0, 1.0 - EXIT_LATENCY_S[CState.C6] / dt)

        parked: list[bool] = []
        loads: list[BatchCoreLoad | None] = []
        ref: list[float] = []
        mem: list[float] = []
        base_ipc: list[float] = []
        stall: list[float] = []
        ceff: list[float] = []
        ipc_amp: list[float] = []
        pow_amp: list[float] = []
        period: list[float] = []
        offset: list[float] = []
        budget: list[float] = []
        for core in chip.cores:
            load = core.load
            parked.append(core.parked)
            if not core.parked and type(load) is BatchCoreLoad:
                app = load.app
                model = app.model
                loads.append(load)
                ref.append(load.reference_mhz)
                mem.append(model.mem_fraction)
                base_ipc.append(model.base_ipc)
                stall.append(model.stall_power_factor)
                ceff.append(model.c_eff)
                phase = model.phase
                ipc_amp.append(phase.ipc_amplitude)
                pow_amp.append(phase.power_amplitude)
                period.append(phase.period_s)
                offset.append(model._phase_offset())
                work = model.instructions
                budget.append(math.inf if work is None else work)
            else:
                # placeholder lanes: masked out of every result, chosen
                # only to keep the elementwise math finite
                loads.append(None)
                ref.append(1.0)
                mem.append(0.0)
                base_ipc.append(1.0)
                stall.append(1.0)
                ceff.append(0.0)
                ipc_amp.append(0.0)
                pow_amp.append(0.0)
                period.append(1.0)
                offset.append(0.0)
                budget.append(math.inf)
        self.parked = parked
        self.loads = loads
        self.has_budget = any(not math.isinf(b) for b in budget)

        n = self.n
        base_row = np.asarray(base, dtype=np.float64)
        ref_row = np.asarray(ref, dtype=np.float64)
        mem_row = np.asarray(mem, dtype=np.float64)
        ipc_row = np.asarray(base_ipc, dtype=np.float64)
        stall_row = np.asarray(stall, dtype=np.float64)
        # running lanes always have base > 0 (parked lanes are the only
        # zero entries); guard the precomputed running view against the
        # division anyway — those lanes are masked out of every use
        eff_run = np.where(base_row > 0.0, base_row, ref_row)
        rate_run, factor_run = kernel.roofline_rows(
            eff_run, ref_row, mem_row, ipc_row, stall_row
        )
        rate_idle, factor_idle = kernel.roofline_rows(
            ref_row, ref_row, mem_row, ipc_row, stall_row
        )
        tsc_scaled = (chip._tsc_mhz * 1e6) * dt
        self.rows: dict[str, "np.ndarray"] = {
            "base_row": base_row,
            "ref_row": ref_row,
            "rate_run": rate_run,
            "rate_idle": rate_idle,
            "factor_run": factor_run,
            "factor_idle": factor_idle,
            "volt_run": kernel.voltage_rows(eff_run, self.grid_f, self.grid_v),
            "volt_idle": kernel.voltage_rows(ref_row, self.grid_f, self.grid_v),
            "fghz_run": base_row / 1000.0,
            "fghz_idle": ref_row / 1000.0,
            "aperf_run": (base_row * 1e6) * dt,
            "mperf_run": np.full(n, tsc_scaled, dtype=np.float64),
            "ceff_row": np.asarray(ceff, dtype=np.float64),
            "period_row": np.asarray(period, dtype=np.float64),
            "offset_row": np.asarray(offset, dtype=np.float64),
            "ipc_amp_row": np.asarray(ipc_amp, dtype=np.float64),
            "pow_amp_row": np.asarray(pow_amp, dtype=np.float64),
            "budget_row": np.asarray(budget, dtype=np.float64),
            "scale_row": np.full(n, power.c_eff_scale, dtype=np.float64),
            "leak_row": np.full(n, power.leak_coeff_w_per_v, dtype=np.float64),
            "idle_row": np.full(n, power.idle_core_watts, dtype=np.float64),
            "wake_row": np.full(n, self.wake_eff, dtype=np.float64),
            "c1_idle": np.where(np.asarray(parked, dtype=bool), 0.0, dt),
            "c6_inc": np.where(np.asarray(parked, dtype=bool), dt, 0.0),
        }


class ChipArrayState:
    """One chip's per-batch gather: cached static rows + live masks.

    Built at the start of every batch; the constructor performs the same
    lazy P-state refresh the scalar tick would (so a pending dirty flag
    resolves identically, including raising on invalid simultaneous
    P-state requests).  Static rows are keyed on the chip's view
    *generation*, not on who cleared the dirty flag: a refresh run by a
    scalar tick in between batches (which consumes ``_dirty``) must
    still invalidate rows gathered from the older view.
    """

    def __init__(self, chip: "Chip"):
        if chip._dirty or not chip.dirty_caching:
            chip._refresh_pstate_view()
        static = chip.__dict__.get("_soa_static")
        if static is None or static.view_generation != chip._view_generation:
            static = _ChipStatic(chip)
            chip._soa_static = static
        self.chip = chip
        self.static = static
        self.dt = chip.tick_s
        self.t0 = chip.time_s

        loads = static.loads
        running: list[bool] = []
        retired0: list[float] = []
        elapsed0: list[float] = []
        prev_c6: list[bool] = []
        residencies = chip.cstates._cores
        for local, core in enumerate(chip.cores):
            load = loads[local]
            if load is not None and not load.app.finished:
                running.append(True)
                retired0.append(load.app.retired_instructions)
                elapsed0.append(load.app.elapsed_s)
            else:
                running.append(False)
                retired0.append(0.0)
                elapsed0.append(0.0)
            prev_c6.append(residencies[core.core_id].current is CState.C6)
        self.running = running
        self.running_arr = np.asarray(running, dtype=bool)
        self.retired0 = retired0
        self.elapsed0 = elapsed0
        self.prev_c6 = prev_c6


def advance_chip(chip: "Chip", n_ticks: int) -> None:
    """Advance one chip ``n_ticks`` via the array path (with fallback)."""
    advance_chips([chip], n_ticks)


def advance_chips(chips: list["Chip"], n_ticks: int) -> None:
    """Advance every chip by ``n_ticks``, batching where possible.

    Chips the array path cannot step exactly take the scalar loop;
    the rest are stacked along the core axis (grouped by tick length)
    and stepped as one ``(ticks, total cores)`` batch.
    """
    if n_ticks <= 0:
        for chip in chips:
            chip.advance_ticks(n_ticks)
        return
    groups: dict[float, list["Chip"]] = {}
    for chip in chips:
        if chip_supports_array(chip):
            groups.setdefault(chip.tick_s, []).append(chip)
        else:
            chip.advance_ticks(n_ticks)
    for group in groups.values():
        _advance_group(group, n_ticks)


def _advance_group(chips: list["Chip"], n_ticks: int) -> None:
    remaining = n_ticks
    while remaining > 0:
        if remaining < MIN_BATCH_TICKS:
            for chip in chips:
                chip.advance_ticks(remaining)
            return
        states = [ChipArrayState(chip) for chip in chips]
        committed = _advance_batch(states, min(remaining, MAX_BATCH_TICKS))
        if committed == 0:
            # the RAPL cap is clipping right now: run scalar for a
            # stretch instead of re-deriving candidates one tick at a
            # time while the cap walks
            committed = min(remaining, RAPL_SCALAR_TICKS)
            for chip in chips:
                chip.advance_ticks(committed)
        remaining -= committed


#: last stacked static-row set, keyed by the group's static serials, so
#: lockstep cluster batches don't re-concatenate unchanged rows.
_GROUP_KEY: tuple[int, ...] | None = None
_GROUP_ROWS: dict[str, "np.ndarray"] | None = None


def _group_rows(states: list[ChipArrayState]) -> dict[str, "np.ndarray"]:
    global _GROUP_KEY, _GROUP_ROWS
    if len(states) == 1:
        return states[0].static.rows
    key = tuple(st.static.serial for st in states)
    if key != _GROUP_KEY or _GROUP_ROWS is None:
        statics = [st.static for st in states]
        # repro-lint: disable=shared-state-race — per-process memo keyed by static serials; each worker rebuilds identical rows from its own chips
        _GROUP_ROWS = {
            name: np.concatenate([s.rows[name] for s in statics])
            for name in statics[0].rows
        }
        # repro-lint: disable=shared-state-race — cache key for the row memo above; same per-process recomputation argument
        _GROUP_KEY = key
    return _GROUP_ROWS


def _stack_dyn(arrays: list["np.ndarray"]) -> "np.ndarray":
    if len(arrays) == 1:
        return arrays[0]
    return np.concatenate(arrays)


def _replay_rapl(
    limiter: "RaplLimiter",
    pkg_list: list[float],
    dt: float,
    base_max: float,
    max_ticks: int,
) -> tuple[int, tuple[float, float, bool]]:
    """Run the limiter recurrence forward on local floats.

    Replicates :meth:`RaplLimiter.observe` operation-for-operation
    (EWMA update, proportional step, cap clamp) without per-tick method
    and attribute dispatch.  Stops before the first tick whose
    pre-observe cap falls below ``base_max`` — from that tick on
    ``clip()`` would alter effective frequencies and invalidate the
    batch's candidate matrices.  Returns the number of valid ticks and
    the control state after them; the caller writes the state back only
    for the globally committed prefix.
    """
    avg, cap, primed = limiter.control_state()
    config = limiter.config
    alpha = clamp(dt / config.averaging_tau_s, 0.0, 1.0)
    if cap < base_max:
        return 0, (avg, cap, primed)
    limit = limiter.limit_w
    if limit is None:
        # the cap never moves without a limit: every tick is valid and
        # only the running average advances
        start = 0
        if not primed and max_ticks > 0:
            avg = pkg_list[0]
            primed = True
            start = 1
        for pkg in pkg_list[start:max_ticks]:
            avg += alpha * (pkg - avg)
        return max_ticks, (avg, cap, primed)
    gain = config.gain_mhz_per_w
    hyst = config.hysteresis_w
    min_f = limiter.platform.min_frequency_mhz
    max_f = limiter.platform.max_frequency_mhz
    observed = 0
    while observed < max_ticks:
        if cap < base_max:
            break
        pkg = pkg_list[observed]
        if primed:
            avg += alpha * (pkg - avg)
        else:
            avg = pkg
            primed = True
        error = avg - limit
        if error > 0.0:
            cap = max(min_f, min(max_f, cap - gain * error))
        elif error < -hyst:
            cap = max(min_f, min(max_f, cap - gain * (error + hyst)))
        observed += 1
    return observed, (avg, cap, primed)


def _advance_batch(states: list[ChipArrayState], n_ticks: int) -> int:
    """Step every gathered chip up to ``n_ticks``; returns ticks committed.

    Returns 0 (committing nothing) only when the RAPL cap would clip the
    very first tick — the caller then takes the scalar path.
    """
    dt = states[0].dt
    total = 0
    slices: list[slice] = []
    for state in states:
        slices.append(slice(total, total + state.static.n))
        total += state.static.n
    rows = _group_rows(states)

    running = _stack_dyn([st.running_arr for st in states])
    prev_done = _stack_dyn(
        [
            np.asarray(st.chip._prev_sample_done, dtype=bool)
            for st in states
        ]
    )
    rate0 = np.where(running, rows["rate_run"], rows["rate_idle"])
    factor = np.where(running, rows["factor_run"], rows["factor_idle"])
    any_budget = any(st.static.has_budget for st in states)

    # event split, part 1: without instruction budgets the only split
    # trigger is a `done` flip at tick 0 (fresh assignment, external
    # finish), detectable before any matrix work — a flip commits a
    # single tick so the scalar dirty/refresh cascade replays exactly
    if any_budget:
        window = n_ticks
    else:
        done0 = ~running
        window = 1 if bool((done0 != prev_done).any()) else n_ticks

    # per-chip simulated-time series, broadcast to that chip's columns
    times = np.empty((window, total), dtype=np.float64)
    t_series: list["np.ndarray"] = []
    dt_col = np.full(window, dt, dtype=np.float64)
    for state, cols in zip(states, slices):
        t_acc = kernel.seeded_series(state.t0, dt_col)
        t_series.append(t_acc)
        times[:, cols] = t_acc[:window, None]
    ipc_t, pow_t = kernel.phase_factors(
        times,
        rows["period_row"],
        rows["offset_row"],
        rows["ipc_amp_row"],
        rows["pow_amp_row"],
    )
    cand = np.where(running, kernel.retired_rows(rate0, ipc_t, dt), 0.0)

    # event split, part 2: with budgets in play, scan for the earliest
    # finishing tick; the batch runs through it inclusive (behaviour
    # changes the tick after)
    if any_budget:
        budget_row = rows["budget_row"]
        r0 = _stack_dyn(
            [np.asarray(st.retired0, dtype=np.float64) for st in states]
        )
        r_acc = kernel.seeded_accumulate(r0, cand)
        hits = (cand >= (budget_row - r_acc[:window])) & running
        first_hit = kernel.first_hit_rows(hits, window)
        done0 = np.where(running, first_hit == 0, True)
        if bool((done0 != prev_done).any()):
            length = 1
        else:
            length = min(window, int(first_hit.min()) + 1)
    else:
        first_hit = None
        length = window

    # power matrix over the candidate window
    volt = np.where(running, rows["volt_run"], rows["volt_idle"])
    fghz = np.where(running, rows["fghz_run"], rows["fghz_idle"])
    ceff_t = (rows["ceff_row"] * factor) * pow_t[:length]
    power = kernel.power_rows(
        ceff_t,
        volt,
        fghz,
        rows["scale_row"],
        rows["leak_row"],
        rows["idle_row"],
        running,
    )
    pkg_lists: list[list[float]] = []
    for state, cols in zip(states, slices):
        pkg = kernel.sequential_row_sum(power[:, cols]) + state.static.uncore
        pkg_lists.append(pkg.tolist())

    # RAPL: replay the EWMA/cap recurrence; a tick is only valid while
    # the cap clears the fastest unparked base frequency (otherwise
    # clip() would have altered effective MHz and every candidate
    # matrix after it)
    commit = length
    replays: list[
        tuple["RaplLimiter", list[float], float, int, tuple[float, float, bool]]
    ] = []
    for state, pkg_list in zip(states, pkg_lists):
        limiter = state.chip.rapl
        if limiter is None:
            continue
        observed, final = _replay_rapl(
            limiter, pkg_list, dt, state.static.base_max, length
        )
        replays.append(
            (limiter, pkg_list, state.static.base_max, observed, final)
        )
        if observed < commit:
            commit = observed
    if commit == 0:
        return 0
    for limiter, pkg_list, base_max, observed, final in replays:
        if observed != commit:
            # a shorter global prefix committed: re-derive the control
            # state after exactly the committed ticks
            _, final = _replay_rapl(limiter, pkg_list, dt, base_max, commit)
        limiter.restore_control_state(final)

    # instruction view the counters see: the finishing tick is clamped
    # to the app's remaining budget, then (order matters) the first tick
    # after a C6 exit is discounted by the wake-up efficiency
    inst = cand[:commit]
    copied = False
    r_final_list: list[float] | None = None
    if first_hit is not None:
        finisher = running & (first_hit == commit - 1)
        any_finish = bool(finisher.any())
    else:
        finisher = None
        any_finish = False
    if any_finish:
        inst = inst.copy()
        copied = True
        clamped = np.maximum(budget_row - r_acc[commit - 1], 0.0)
        inst[commit - 1] = np.where(finisher, clamped, inst[commit - 1])
        r_final_list = np.where(
            finisher, r_acc[commit - 1] + clamped, r_acc[commit]
        ).tolist()
    wake_needed = any(
        c6 and run
        for st in states
        for c6, run in zip(st.prev_c6, st.running)
    )
    if wake_needed:
        if not copied:
            inst = inst.copy()
        wake = (
            _stack_dyn(
                [np.asarray(st.prev_c6, dtype=bool) for st in states]
            )
            & running
        )
        inst[0] = np.where(
            wake & (inst[0] > 0.0), inst[0] * rows["wake_row"], inst[0]
        )

    # seeded running sums, fused: one strictly-sequential accumulate
    # over 13 side-by-side column blocks (each column is an independent
    # chained `x += inc`, so fusing preserves bit-exactness) instead of
    # 13 separate numpy calls
    dt_running = np.where(running, dt, 0.0)
    energy_inc = power[:commit] * dt
    seeds: list[float] = []
    for st in states:
        seeds.extend(st.chip._instr_total)
    for st in states:
        seeds.extend(c.total_instructions for c in st.chip.cores)
    for st in states:
        seeds.extend(st.chip.energy._core_energy_j)
    for st in states:
        seeds.extend(c.total_energy_j for c in st.chip.cores)
    for st in states:
        seeds.extend(c.total_busy_s for c in st.chip.cores)
    for st in states:
        seeds.extend(c.total_time_s for c in st.chip.cores)
    for st in states:
        seeds.extend(st.chip._aperf_cycles)
    for st in states:
        seeds.extend(st.chip._mperf_cycles)
    for st in states:
        seeds.extend(r.c0_s for r in st.chip.cstates._cores)
    for st in states:
        seeds.extend(r.c1_s for r in st.chip.cstates._cores)
    for st in states:
        seeds.extend(r.c6_s for r in st.chip.cstates._cores)
    for st in states:
        seeds.extend(st.elapsed0)
    for st in states:
        seeds.extend(st.retired0)
    big = np.empty((commit, 13 * total), dtype=np.float64)
    big[:, 0:total] = inst                                # MSR instr
    big[:, total : 2 * total] = inst                      # core totals
    big[:, 2 * total : 3 * total] = energy_inc            # RAPL per-core
    big[:, 3 * total : 4 * total] = energy_inc            # core totals
    big[:, 4 * total : 5 * total] = dt_running            # busy seconds
    big[:, 5 * total : 6 * total] = dt                    # wall seconds
    big[:, 6 * total : 7 * total] = np.where(running, rows["aperf_run"], 0.0)
    big[:, 7 * total : 8 * total] = np.where(running, rows["mperf_run"], 0.0)
    big[:, 8 * total : 9 * total] = dt_running            # C0 residency
    big[:, 9 * total : 10 * total] = np.where(running, 0.0, rows["c1_idle"])
    big[:, 10 * total : 11 * total] = rows["c6_inc"]
    big[:, 11 * total : 12 * total] = dt_running          # app elapsed_s
    big[:, 12 * total : 13 * total] = cand[:commit]       # app retired
    finals = kernel.seeded_accumulate(
        np.asarray(seeds, dtype=np.float64), big
    )[commit].tolist()
    i_f = finals[0:total]
    ti_f = finals[total : 2 * total]
    e_f = finals[2 * total : 3 * total]
    te_f = finals[3 * total : 4 * total]
    b_f = finals[4 * total : 5 * total]
    tt_f = finals[5 * total : 6 * total]
    a_f = finals[6 * total : 7 * total]
    m_f = finals[7 * total : 8 * total]
    c0_f = finals[8 * total : 9 * total]
    c1_f = finals[9 * total : 10 * total]
    c6_f = finals[10 * total : 11 * total]
    el_f = finals[11 * total : 12 * total]
    r_f = (
        r_final_list
        if r_final_list is not None
        else finals[12 * total : 13 * total]
    )

    if finisher is not None:
        done_last = np.where(running, finisher, True)
    else:
        done_last = ~running
    done_list = done_last.tolist()
    if commit == 1:
        flip_list = (done_last != prev_done).tolist()
    elif commit == length and finisher is not None:
        flip_list = finisher.tolist()
    else:
        # a RAPL cut strictly precedes every budget hit (the window ran
        # past `commit`), so no lane's done state can have flipped
        flip_list = None
    finisher_list = finisher.tolist() if any_finish else None

    # commit: scatter the final values back into the object graph (the
    # tolist() extractions above yield plain Python floats and bools —
    # np.float64 must never leak into state)
    inst_last = inst[commit - 1].tolist()
    ceff_last = ceff_t[commit - 1].tolist()
    power_last = power[commit - 1].tolist()
    factor_list = factor.tolist()
    for idx, (state, cols) in enumerate(zip(states, slices)):
        chip = state.chip
        static = state.static
        base_list = static.base_list
        loads = static.loads
        parked = static.parked
        is_running = state.running
        aperf = chip._aperf_cycles
        mperf = chip._mperf_cycles
        instr = chip._instr_total
        prev = chip._prev_sample_done
        core_energy = chip.energy._core_energy_j
        residencies = chip.cstates._cores
        start = cols.start
        dirty = False
        for local, core in enumerate(chip.cores):
            g = start + local
            cpu = core.core_id
            if is_running[local]:
                load = loads[local]
                assert load is not None
                app = load.app
                app.retired_instructions = r_f[g]
                app.elapsed_s = el_f[g]
                if finisher_list is not None and finisher_list[g]:
                    app.finished = True
                load._factor = factor_list[g]
                load._factor_freq = base_list[local]
                core.effective_mhz = base_list[local]
                core.last_sample = LoadSample(
                    instructions=inst_last[g],
                    busy_fraction=1.0,
                    c_eff=ceff_last[g],
                    done=done_list[g],
                )
                new_state = CState.C0
            else:
                core.effective_mhz = (
                    0.0 if parked[local] else base_list[local]
                )
                core.last_sample = _IDLE_SAMPLE
                new_state = CState.C6 if parked[local] else CState.C1
            core.total_instructions = ti_f[g]
            core.total_energy_j = te_f[g]
            core.total_busy_s = b_f[g]
            core.total_time_s = tt_f[g]
            aperf[cpu] = a_f[g]
            mperf[cpu] = m_f[g]
            instr[cpu] = i_f[g]
            core_energy[cpu] = e_f[g]
            residency = residencies[cpu]
            residency.c0_s = c0_f[g]
            residency.c1_s = c1_f[g]
            residency.c6_s = c6_f[g]
            if new_state is not residency.current:
                residency.transitions += 1
                residency.current = new_state
            prev[cpu] = done_list[g]
            if flip_list is not None and flip_list[g]:
                dirty = True
        chip.last_core_powers_w = power_last[cols]
        pkg_list = pkg_lists[idx]
        chip.last_package_power_w = pkg_list[commit - 1]
        pkg_energy = chip.energy._pkg_energy_j
        for pkg in pkg_list[:commit]:
            pkg_energy += pkg * dt
        chip.energy._pkg_energy_j = pkg_energy
        chip.time_s = float(t_series[idx][commit])
        if dirty:
            chip._dirty = True
    return commit
