"""Simulated cores and the loads that run on them.

A :class:`Core` owns a *requested* frequency (what software programmed
via the cpufreq/MSR interface) and resolves an *effective* frequency each
tick after hardware-side constraints: the AVX frequency cap, the RAPL
limiter's global cap, and turbo grants.  The distinction matters — the
paper's Fig 4 hinges on RAPL silently lowering effective frequency below
the software request on the fastest cores.

Loads implement the small :class:`CoreLoad` interface so batch SPEC apps,
the websearch cluster's per-core servers, the cpuburn virus, and
time-shared app groups all plug into the same core model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import SimulationError
from repro.workloads.app import RunningApp
from repro.workloads.websearch import WebsearchCluster


@dataclass(frozen=True)
class LoadSample:
    """What a load did during one tick.

    Attributes:
        instructions: instructions retired this tick.
        busy_fraction: C0 (active) residency in [0, 1].
        c_eff: effective switching capacitance during the busy time,
            already including activity/stall and phase factors.
        done: the load finished and the core may enter deep idle.
    """

    instructions: float
    busy_fraction: float
    c_eff: float
    done: bool = False


@runtime_checkable
class CoreLoad(Protocol):
    """Anything that can occupy a core."""

    @property
    def name(self) -> str: ...

    @property
    def uses_avx(self) -> bool: ...

    def advance(
        self, dt_s: float, frequency_mhz: float, sim_time_s: float
    ) -> LoadSample: ...


class IdleLoad:
    """Placeholder for an unoccupied core (deep C-state)."""

    name = "idle"
    uses_avx = False

    def advance(
        self, dt_s: float, frequency_mhz: float, sim_time_s: float
    ) -> LoadSample:
        return LoadSample(instructions=0.0, busy_fraction=0.0, c_eff=0.0, done=True)


class BatchCoreLoad:
    """A pinned single-threaded batch application (one SPEC instance).

    ``reference_mhz`` anchors the app's roofline model; the platform's
    reference frequency is the natural choice and is what the experiment
    harness passes.
    """

    def __init__(self, app: RunningApp, reference_mhz: float):
        if reference_mhz <= 0:
            raise SimulationError("reference frequency must be positive")
        self.app = app
        self.reference_mhz = reference_mhz
        # activity factor depends only on frequency, which changes at
        # daemon cadence, not tick cadence: memoize the last value
        self._factor_freq = -1.0
        self._factor = 1.0

    @property
    def name(self) -> str:
        return self.app.label

    @property
    def uses_avx(self) -> bool:
        return self.app.model.uses_avx

    def advance(
        self, dt_s: float, frequency_mhz: float, sim_time_s: float
    ) -> LoadSample:
        if self.app.finished:
            return LoadSample(0.0, 0.0, 0.0, done=True)
        retired = self.app.advance(
            dt_s, frequency_mhz, self.reference_mhz, sim_time_s
        )
        model = self.app.model
        # repro-lint: disable=float-equality — memo key: same quantized grid point, identity is intended
        if frequency_mhz != self._factor_freq:
            self._factor = model.activity_power_factor(
                frequency_mhz, self.reference_mhz
            )
            self._factor_freq = frequency_mhz
        c_eff = model.c_eff * self._factor * model.power_factor(sim_time_s)
        return LoadSample(
            instructions=retired,
            busy_fraction=1.0,
            c_eff=c_eff,
            done=self.app.finished,
        )


class ClusterCoreLoad:
    """One serving core of a :class:`WebsearchCluster`.

    The cluster itself is advanced once per tick by the chip (it needs a
    globally consistent view of all serving-core frequencies); this
    adapter only *collects* the per-core busy time and instruction counts
    the cluster accumulated, and converts them into a power-relevant
    sample.
    """

    def __init__(self, cluster: WebsearchCluster, core_id: int):
        if core_id not in cluster.core_ids:
            raise SimulationError(
                f"core {core_id} is not a serving core of the cluster"
            )
        self.cluster = cluster
        self.core_id = core_id

    @property
    def name(self) -> str:
        return f"websearch@{self.core_id}"

    @property
    def uses_avx(self) -> bool:
        return False

    def advance(
        self, dt_s: float, frequency_mhz: float, sim_time_s: float
    ) -> LoadSample:
        busy_s, instructions = self.cluster.take_core_sample(self.core_id)
        busy_fraction = min(1.0, busy_s / dt_s) if dt_s > 0 else 0.0
        return LoadSample(
            instructions=instructions,
            busy_fraction=busy_fraction,
            c_eff=self.cluster.config.c_eff,
            done=False,
        )


class Core:
    """One physical core: frequency request/effective split plus counters."""

    def __init__(self, core_id: int, initial_frequency_mhz: float):
        self.core_id = core_id
        self.requested_mhz = initial_frequency_mhz
        self.effective_mhz = initial_frequency_mhz
        self.load: CoreLoad = IdleLoad()
        #: set True by the policy layer to park the core in a deep C-state
        #: (paper section 4.4 starvation handling).
        self.parked = False
        # lifetime counters
        self.total_instructions = 0.0
        self.total_energy_j = 0.0
        self.total_busy_s = 0.0
        self.total_time_s = 0.0
        self.last_sample: LoadSample | None = None

    @property
    def active(self) -> bool:
        """Core has unfinished work and is not parked."""
        if self.parked:
            return False
        sample = self.last_sample
        if sample is None:
            return not isinstance(self.load, IdleLoad)
        return not (isinstance(self.load, IdleLoad) or sample.done)

    def assign(self, load: CoreLoad) -> None:
        self.load = load
        self.last_sample = None

    def clear(self) -> None:
        self.load = IdleLoad()
        self.last_sample = None

    def record(self, sample: LoadSample, power_w: float, dt_s: float) -> None:
        self.last_sample = sample
        self.total_instructions += sample.instructions
        self.total_energy_j += power_w * dt_s
        self.total_busy_s += sample.busy_fraction * dt_s
        self.total_time_s += dt_s
