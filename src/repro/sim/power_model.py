"""Analytic power model.

Dynamic power follows the textbook relation the paper cites in section
2.1: ``P_dyn ∝ C_eff · V² · f``.  We add voltage-dependent leakage and a
package-level uncore adder::

    P_core  = scale · c_eff · V(f)² · f_GHz · busy  +  leak · V   (active)
    P_core  = idle_core_watts                                     (idle/parked)
    P_pkg   = Σ P_core + uncore_watts

The platform's voltage curve makes power superlinear in frequency, and
the discrete voltage step at turbo points produces the ~5 W package jump
the paper observes when TurboBoost/XFR engages (Figs 2 and 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class PowerBreakdown:
    """Per-core decomposition, useful in tests and ablations."""

    dynamic_w: float
    leakage_w: float
    idle_w: float

    @property
    def total_w(self) -> float:
        return self.dynamic_w + self.leakage_w + self.idle_w


def core_power_breakdown(
    platform: PlatformSpec,
    frequency_mhz: float,
    c_eff: float,
    busy_fraction: float,
    *,
    active: bool = True,
) -> PowerBreakdown:
    """Compute one core's power decomposition for a tick.

    ``c_eff`` is the load-reported effective capacitance (already folding
    in activity/stall factors); ``busy_fraction`` is C0 residency.  An
    inactive (idle or parked) core draws only its deep-idle floor —
    milliwatt-scale versus tens of watts at full tilt (paper section 2.1,
    "Core Idling").
    """
    if not active or busy_fraction <= 0.0:
        return PowerBreakdown(0.0, 0.0, platform.power.idle_core_watts)
    if frequency_mhz <= 0:
        raise SimulationError("active core must have positive frequency")
    if not 0.0 <= busy_fraction <= 1.0:
        raise SimulationError(f"bad busy fraction {busy_fraction}")
    voltage = platform.pstates.voltage_for_frequency(frequency_mhz)
    f_ghz = frequency_mhz / 1000.0
    dynamic = (
        platform.power.c_eff_scale
        * c_eff
        * voltage
        * voltage
        * f_ghz
        * busy_fraction
    )
    leakage = platform.power.leak_coeff_w_per_v * voltage
    # idle floor is charged for the non-C0 remainder of the tick
    idle = platform.power.idle_core_watts * (1.0 - busy_fraction)
    return PowerBreakdown(dynamic, leakage, idle)


def core_power_watts(
    platform: PlatformSpec,
    frequency_mhz: float,
    c_eff: float,
    busy_fraction: float,
    *,
    active: bool = True,
) -> float:
    """Total core power for a tick (see :func:`core_power_breakdown`)."""
    return core_power_breakdown(
        platform, frequency_mhz, c_eff, busy_fraction, active=active
    ).total_w


def package_power_watts(platform: PlatformSpec, core_powers_w: list[float]) -> float:
    """Package power: cores plus the uncore/DRAM-controller adder."""
    return sum(core_powers_w) + platform.power.uncore_watts
