"""Simulation engine: tick loop with periodic callbacks.

The engine advances a :class:`~repro.sim.chip.Chip` tick by tick and
invokes registered periodic callbacks — most importantly the power
daemon's 1 s control iteration (paper section 5) and the telemetry
sampler.  Callbacks fire *after* the ticks covering their period have
run, which matches a real daemon waking from ``sleep(1)`` and reading
counters that accumulated while it slept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import SimulationError
from repro.sim.chip import Chip


@dataclass
class _Periodic:
    period_ticks: int
    callback: Callable[[float], None]
    next_due: int


class SimEngine:
    """Drives a chip and its periodic software."""

    def __init__(self, chip: Chip):
        self.chip = chip
        self._periodics: list[_Periodic] = []
        self._ticks_run = 0

    @property
    def time_s(self) -> float:
        return self.chip.time_s

    def every(
        self, period_s: float, callback: Callable[[float], None], *,
        phase_s: float | None = None,
    ) -> None:
        """Register ``callback(sim_time_s)`` to run every ``period_s``.

        ``phase_s`` delays the first invocation (default: one full
        period, like a daemon that sleeps before its first sample).
        """
        period_ticks = int(round(period_s / self.chip.tick_s))
        if period_ticks <= 0:
            raise SimulationError(
                f"period {period_s}s is below one tick "
                f"({self.chip.tick_s}s)"
            )
        if phase_s is None:
            first = self._ticks_run + period_ticks
        else:
            phase_ticks = int(round(phase_s / self.chip.tick_s))
            if phase_ticks < 0:
                raise SimulationError("phase cannot be negative")
            first = self._ticks_run + max(phase_ticks, 1)
        self._periodics.append(_Periodic(period_ticks, callback, first))

    def run(self, duration_s: float) -> None:
        """Advance simulated time by ``duration_s``."""
        n_ticks = int(round(duration_s / self.chip.tick_s))
        if n_ticks < 0:
            raise SimulationError("duration cannot be negative")
        self.run_ticks(n_ticks)

    def run_ticks(self, n_ticks: int) -> None:
        for _ in range(n_ticks):
            self.chip.tick()
            self._ticks_run += 1
            flushed = False
            for periodic in self._periodics:
                if self._ticks_run >= periodic.next_due:
                    if not flushed:
                        # counters are published lazily; latch them so
                        # software callbacks read fresh values
                        self.chip.flush_counters()
                        flushed = True
                    periodic.callback(self.chip.time_s)
                    periodic.next_due = self._ticks_run + periodic.period_ticks
        self.chip.flush_counters()

    def run_until(
        self,
        condition: Callable[[], bool],
        *,
        max_duration_s: float,
    ) -> bool:
        """Run until ``condition()`` is true; returns False on timeout."""
        max_ticks = int(round(max_duration_s / self.chip.tick_s))
        for _ in range(max_ticks):
            if condition():
                return True
            self.run_ticks(1)
        return condition()
