"""Simulation engine: tick loop with periodic callbacks.

The engine advances a :class:`~repro.sim.chip.Chip` tick by tick and
invokes registered periodic callbacks — most importantly the power
daemon's 1 s control iteration (paper section 5) and the telemetry
sampler.  Callbacks fire *after* the ticks covering their period have
run, which matches a real daemon waking from ``sleep(1)`` and reading
counters that accumulated while it slept.

Periodic callbacks accept an optional *gate* — a scheduling-fault hook
consulted at every deadline that can let the callback fire, drop the
deadline outright (a missed wakeup; the next deadline is a full period
later), or defer it by some seconds (scheduler jitter).  The fault
injector (:mod:`repro.faults.ticks`) uses this to model a daemon that
oversleeps or gets preempted past its deadline.  One-shot events
(:meth:`SimEngine.at`) model externally-timed happenings such as an
application crashing mid-run.

The tick loop has two execution paths with identical semantics:

* **batched fast path** (default): compute the next pending deadline
  across all periodic and one-shot callbacks and let the chip advance
  the whole gap in one :meth:`~repro.sim.chip.Chip.advance_ticks` call,
  skipping the per-tick callback scan entirely;
* **per-tick slow path**: the original tick-by-tick dispatch.

Any registered *gate* forces the slow path: gates must be consulted at
every deadline with the fault stream drawn in per-deadline order, so
fault-injected runs keep PR 1's chaos semantics bit-identical.  Setting
``engine.batching = False`` also forces the slow path (the equivalence
tests' reference mode).

Orthogonally to *when* callbacks fire, ``engine="scalar"|"array"``
selects *how* a batched gap is stepped: the per-tick reference loop or
the struct-of-arrays numpy kernel (:mod:`repro.sim.soa`), which is
bit-identical by contract and falls back to the scalar loop for
anything it cannot reproduce exactly.  :func:`run_lockstep` extends the
array path across engines: chips of multiple nodes stepped through the
same window are stacked along the core axis into one batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Union

from repro.analysis.sanitizer import StateDigest, sanitize_enabled
from repro.errors import SimulationError
from repro.sim import soa
from repro.sim.chip import Chip
from repro.units import is_zero

#: engine selector values accepted by :class:`SimEngine` and the config
#: layers above it.
ENGINES = ("scalar", "array")

#: What a gate may return: ``"fire"`` (or ``None``) runs the callback,
#: ``"drop"`` skips this deadline entirely, a positive float defers the
#: deadline by that many seconds (at least one tick).
GateResult = Union[str, float, None]
TickGate = Callable[[float], GateResult]


def _chip_digest(chip: Chip) -> dict[str, object]:
    """Canonical per-window chip state for the determinism sanitizer.

    Everything downstream software can observe: simulated time, package
    energy, and the per-core frequency and counter vectors.  Floats are
    left exact — the sanitizer's canonical form uses ``repr``, so a
    single-ULP divergence between engines is visible.
    """
    n = chip.platform.n_cores
    return {
        "time_s": float(chip.time_s),
        "pkg_energy_j": float(chip.energy.package_energy_joules),
        "eff_mhz": [float(chip.effective_frequency(i)) for i in range(n)],
        "aperf": [float(x) for x in chip._aperf_cycles],
        "mperf": [float(x) for x in chip._mperf_cycles],
        "instr": [float(x) for x in chip._instr_total],
    }


@dataclass
class _Periodic:
    period_ticks: int
    callback: Callable[[float], None]
    next_due: int
    gate: TickGate | None = None


@dataclass
class _OneShot:
    due_tick: int
    callback: Callable[[float], None]
    fired: bool = False


class SimEngine:
    """Drives a chip and its periodic software."""

    def __init__(self, chip: Chip, *, engine: str = "array"):
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        if engine == "array" and not soa.HAVE_NUMPY:
            # numpy is an optional dependency of the fast path only;
            # without it the reference loop is the engine
            engine = "scalar"
        self.chip = chip
        #: resolved stepping mode: ``"scalar"`` or ``"array"``.
        self.engine_mode = engine
        self._periodics: list[_Periodic] = []
        self._oneshots: list[_OneShot] = []
        self._ticks_run = 0
        #: set False to force the per-tick slow path (reference mode).
        self.batching = True
        #: number of batched chip advances taken (observability/tests).
        self.batched_segments = 0
        #: determinism sanitizer (``REPRO_SANITIZE=1``): records a chip
        #: digest after every ``run_ticks`` window, keyed by tick count,
        #: so scalar/array/lockstep runs can be diffed field by field.
        self.sanitizer: StateDigest | None = (
            StateDigest(f"engine/{engine}") if sanitize_enabled() else None
        )

    @property
    def time_s(self) -> float:
        return self.chip.time_s

    def every(
        self, period_s: float, callback: Callable[[float], None], *,
        phase_s: float | None = None,
        gate: TickGate | None = None,
    ) -> None:
        """Register ``callback(sim_time_s)`` to run every ``period_s``.

        ``phase_s`` delays the first invocation (default: one full
        period, like a daemon that sleeps before its first sample).  A
        phase of exactly zero fires at the next tick boundary; a
        non-zero phase below one tick cannot be honoured and raises
        rather than being silently rewritten.

        ``gate`` is consulted at every deadline; see :data:`GateResult`.
        """
        period_ticks = int(round(period_s / self.chip.tick_s))
        if period_ticks <= 0:
            raise SimulationError(
                f"period {period_s}s is below one tick "
                f"({self.chip.tick_s}s)"
            )
        if phase_s is None:
            first = self._ticks_run + period_ticks
        else:
            phase_ticks = int(round(phase_s / self.chip.tick_s))
            if phase_ticks < 0:
                raise SimulationError("phase cannot be negative")
            if phase_ticks == 0 and not is_zero(phase_s):
                raise SimulationError(
                    f"phase {phase_s}s is below one tick "
                    f"({self.chip.tick_s}s); use phase_s=0 for the next "
                    "tick boundary"
                )
            first = self._ticks_run + phase_ticks
        self._periodics.append(_Periodic(period_ticks, callback, first, gate))

    def at(self, time_s: float, callback: Callable[[float], None]) -> None:
        """Schedule a one-shot ``callback(sim_time_s)`` at ``time_s``.

        Fires after the tick covering ``time_s`` has run, alongside any
        periodic callbacks due on the same boundary.
        """
        due_tick = int(round(time_s / self.chip.tick_s))
        if due_tick <= self._ticks_run:
            raise SimulationError(
                f"one-shot at {time_s}s is not in the future "
                f"(simulated time is {self.time_s}s)"
            )
        self._oneshots.append(_OneShot(due_tick, callback))

    def run(self, duration_s: float) -> None:
        """Advance simulated time by ``duration_s``."""
        n_ticks = int(round(duration_s / self.chip.tick_s))
        if n_ticks < 0:
            raise SimulationError("duration cannot be negative")
        self.run_ticks(n_ticks)

    def _delay_ticks(self, delay_s: float) -> int:
        if delay_s < 0:
            raise SimulationError("gate returned a negative deferral")
        return max(1, int(round(delay_s / self.chip.tick_s)))

    def _process_due_callbacks(self) -> None:
        """Fire every periodic/one-shot due at the current tick count."""
        flushed = False
        for periodic in self._periodics:
            if self._ticks_run < periodic.next_due:
                continue
            verdict: GateResult = "fire"
            if periodic.gate is not None:
                verdict = periodic.gate(self.chip.time_s)
            if verdict == "drop":
                # missed deadline: the wakeup never happens and the
                # next one is a full period out
                periodic.next_due = (
                    self._ticks_run + periodic.period_ticks
                )
                continue
            if isinstance(verdict, (int, float)) and not isinstance(
                verdict, bool
            ):
                # jitter: the wakeup slips by the returned seconds
                periodic.next_due = (
                    self._ticks_run + self._delay_ticks(float(verdict))
                )
                continue
            if not flushed:
                # counters are published lazily; latch them so
                # software callbacks read fresh values
                self.chip.flush_counters()
                flushed = True
            periodic.callback(self.chip.time_s)
            periodic.next_due = self._ticks_run + periodic.period_ticks
        any_fired = False
        for oneshot in self._oneshots:
            if oneshot.fired or self._ticks_run < oneshot.due_tick:
                continue
            if not flushed:
                self.chip.flush_counters()
                flushed = True
            oneshot.callback(self.chip.time_s)
            oneshot.fired = True
            any_fired = True
        if any_fired:
            self._oneshots = [
                o for o in self._oneshots if not o.fired
            ]

    def _gap_to_next_deadline(self, remaining: int) -> int:
        """Ticks until the earliest pending deadline, capped and >= 1."""
        gap: int | None = None
        now = self._ticks_run
        for periodic in self._periodics:
            delta = periodic.next_due - now
            if gap is None or delta < gap:
                gap = delta
        for oneshot in self._oneshots:
            if oneshot.fired:
                continue
            delta = oneshot.due_tick - now
            if gap is None or delta < gap:
                gap = delta
        if gap is None:
            return remaining
        return max(1, min(remaining, gap))

    def _needs_slow_path(self) -> bool:
        """Whether callback semantics force the per-tick dispatch."""
        return not self.batching or any(
            p.gate is not None for p in self._periodics
        )

    def run_ticks(self, n_ticks: int) -> None:
        remaining = n_ticks
        while remaining > 0:
            if self._needs_slow_path():
                # slow path: gates draw from a seeded fault stream at
                # every deadline, so chaos runs stay bit-identical
                self.chip.tick()
                self._ticks_run += 1
                remaining -= 1
            else:
                gap = self._gap_to_next_deadline(remaining)
                if self.engine_mode == "array":
                    soa.advance_chip(self.chip, gap)
                else:
                    self.chip.advance_ticks(gap)
                self._ticks_run += gap
                remaining -= gap
                self.batched_segments += 1
            self._process_due_callbacks()
        self.chip.flush_counters()
        if self.sanitizer is not None and n_ticks > 0:
            self.sanitizer.record(
                self._ticks_run, "chip", _chip_digest(self.chip)
            )

    def run_until(
        self,
        condition: Callable[[], bool],
        *,
        max_duration_s: float,
    ) -> bool:
        """Run until ``condition()`` is true; returns False on timeout."""
        max_ticks = int(round(max_duration_s / self.chip.tick_s))
        for _ in range(max_ticks):
            if condition():
                return True
            self.run_ticks(1)
        return condition()


def run_lockstep(engines: Sequence[SimEngine], n_ticks: int) -> None:
    """Advance several engines through the same tick window together.

    Engines that must take the per-tick slow path (gates, reference
    mode) or that run the scalar engine step individually; the rest are
    gang-stepped: their chips advance as one stacked ``(ticks, nodes x
    cores)`` array batch per shared deadline gap, with each engine's
    callbacks fired at its own deadlines exactly as :meth:`SimEngine.\
run_ticks` would.  Semantically equivalent to running each engine's
    ``run_ticks(n_ticks)`` in sequence — node chips are independent, so
    interleaving their ticks cannot change any result.
    """
    gang: list[SimEngine] = []
    for engine in engines:
        if engine._needs_slow_path() or engine.engine_mode != "array":
            engine.run_ticks(n_ticks)
        else:
            gang.append(engine)
    if not gang:
        return
    chips = [engine.chip for engine in gang]
    remaining = n_ticks
    while remaining > 0:
        gap = min(
            engine._gap_to_next_deadline(remaining) for engine in gang
        )
        soa.advance_chips(chips, gap)
        for engine in gang:
            engine._ticks_run += gap
            engine.batched_segments += 1
            engine._process_due_callbacks()
        remaining -= gap
    for engine in gang:
        engine.chip.flush_counters()
        if engine.sanitizer is not None and n_ticks > 0:
            engine.sanitizer.record(
                engine._ticks_run, "chip", _chip_digest(engine.chip)
            )
