"""The simulated package: cores + uncore + firmware + counters.

:class:`Chip` wires the substrate together.  Each tick it:

1. counts active cores and derives the turbo ceiling,
2. resolves every core's *effective* frequency =
   min(requested, turbo ceiling, AVX cap, RAPL cap),
3. advances attached websearch clusters with a consistent frequency view,
4. advances every core's load, computes per-core power,
5. aggregates package power, feeds the RAPL limiter's control loop, and
6. publishes all counters (energy, APERF/MPERF, instructions, P-state
   status) into the MSR file for the driver/telemetry layers.

Software never touches chip internals directly: frequency requests come
in through MSR writes (:meth:`_on_perf_ctl_write`), exactly like a real
userspace daemon driving ``/dev/cpu/*/msr``.

Hot-path note: requests, parking, and load placement change at *daemon*
cadence (roughly once a second) while the chip ticks at millisecond
cadence, so the P-state validity check and the turbo-ceiling/AVX
resolution are cached behind a dirty flag and only re-run when one of
the chip's mutators (:meth:`set_requested_frequency`, :meth:`park`,
:meth:`assign_load`) actually changed something, or when a load finished
(which changes the active-core count and hence the turbo ceiling).
Mutating ``chip.cores[i]`` directly bypasses the flag — always go
through the chip's methods.  ``dirty_caching=False`` disables the cache
and recomputes everything every tick (the equivalence tests' reference
mode).
"""

from __future__ import annotations

from repro.errors import PlatformError, SimulationError
from repro.hw import msr as msrdef
from repro.hw.cstates import CStateModel
from repro.hw.msr import MSRDef, MSRFile
from repro.hw.platform import PlatformSpec
from repro.hw.rapl import (
    RaplController,
    RaplLimiter,
    RaplLimiterConfig,
    decode_pkg_power_limit,
    encode_pkg_power_limit,
)
from repro.hw.turbo import TurboModel
from repro.sim.core import Core, CoreLoad, IdleLoad, LoadSample
from repro.sim.power_model import core_power_watts, package_power_watts
from repro.units import DEFAULT_TICK_SECONDS
from repro.workloads.websearch import WebsearchCluster

#: Intel PERF_CTL encodes the target ratio in bits [15:8], in units of
#: the 100 MHz bus clock.
_INTEL_RATIO_SHIFT = 8
_INTEL_BUS_MHZ = 100.0
#: Our AMD register encoding: frequency in 25 MHz steps (the paper writes
#: frequency/voltage directly to Ryzen MSRs; section 2.1).
_AMD_STEP_MHZ = 25.0


class Chip:
    """A single simulated socket of the selected platform."""

    def __init__(
        self,
        platform: PlatformSpec,
        *,
        tick_s: float = DEFAULT_TICK_SECONDS,
        rapl_config: RaplLimiterConfig | None = None,
        enforce_pstate_limit: bool = True,
    ):
        if tick_s <= 0:
            raise SimulationError("tick must be positive")
        self.platform = platform
        self.tick_s = tick_s
        self.enforce_pstate_limit = enforce_pstate_limit
        min_mhz = platform.min_frequency_mhz
        self.cores = [Core(i, min_mhz) for i in platform.core_ids()]
        self.msr = MSRFile(platform.n_cores)
        self.energy = RaplController(platform)
        self.turbo = TurboModel(platform)
        self.cstates = CStateModel(platform.n_cores)
        self.rapl: RaplLimiter | None = (
            RaplLimiter(platform, rapl_config)
            if platform.has_rapl_limit
            else None
        )
        self.clusters: list[WebsearchCluster] = []
        self.time_s = 0.0
        self.last_core_powers_w = [0.0] * platform.n_cores
        self.last_package_power_w = 0.0
        self._tsc_mhz = platform.max_nominal_frequency_mhz
        # cumulative per-core counters, kept as floats on the hot path
        # and published to the MSR file by flush_counters()
        n = platform.n_cores
        self._aperf_cycles = [0.0] * n
        self._mperf_cycles = [0.0] * n
        self._instr_total = [0.0] * n
        #: set False to re-resolve the P-state check and turbo ceiling
        #: every tick (reference mode for the fast-path equivalence tests)
        self.dirty_caching = True
        self._dirty = True
        #: bumped on every P-state view refresh; the array engine keys
        #: its cached static rows on it, so a refresh triggered by the
        #: scalar path (which consumes ``_dirty``) still invalidates them
        self._view_generation = 0
        self._base_effective_mhz = [0.0] * n
        self._prev_sample_done = [False] * n
        self._register_msrs()

    # -- MSR surface ---------------------------------------------------------

    def _register_msrs(self) -> None:
        reg = self.msr.register
        if self.platform.vendor == "intel":
            reg(MSRDef(msrdef.IA32_PERF_CTL, "IA32_PERF_CTL", writable=True,
                       on_write=self._on_perf_ctl_write))
            reg(MSRDef(msrdef.IA32_PERF_STATUS, "IA32_PERF_STATUS"))
            reg(MSRDef(msrdef.MSR_PKG_ENERGY_STATUS, "MSR_PKG_ENERGY_STATUS",
                       package_scope=True))
            reg(MSRDef(msrdef.MSR_RAPL_POWER_UNIT, "MSR_RAPL_POWER_UNIT",
                       package_scope=True))
            reg(MSRDef(msrdef.MSR_PKG_POWER_LIMIT, "MSR_PKG_POWER_LIMIT",
                       writable=True, package_scope=True,
                       on_write=self._on_power_limit_write))
        else:
            reg(MSRDef(msrdef.MSR_AMD_PSTATE_CTL, "MSR_AMD_PSTATE_CTL",
                       writable=True, on_write=self._on_amd_pstate_write))
            reg(MSRDef(msrdef.MSR_AMD_PSTATE_STATUS, "MSR_AMD_PSTATE_STATUS"))
            reg(MSRDef(msrdef.MSR_AMD_PKG_ENERGY, "MSR_AMD_PKG_ENERGY",
                       package_scope=True))
            reg(MSRDef(msrdef.MSR_AMD_RAPL_POWER_UNIT,
                       "MSR_AMD_RAPL_POWER_UNIT", package_scope=True))
            reg(MSRDef(msrdef.MSR_AMD_CORE_ENERGY, "MSR_AMD_CORE_ENERGY"))
        reg(MSRDef(msrdef.IA32_APERF, "IA32_APERF"))
        reg(MSRDef(msrdef.IA32_MPERF, "IA32_MPERF"))
        reg(MSRDef(msrdef.IA32_FIXED_CTR0, "IA32_FIXED_CTR0"))

    def _on_perf_ctl_write(self, cpu: int, value: int) -> None:
        ratio = (value >> _INTEL_RATIO_SHIFT) & 0xFF
        self.set_requested_frequency(cpu, ratio * _INTEL_BUS_MHZ)

    def _on_amd_pstate_write(self, cpu: int, value: int) -> None:
        self.set_requested_frequency(cpu, value * _AMD_STEP_MHZ)

    def _on_power_limit_write(self, cpu: int, value: int) -> None:
        # Power limit encoded in 1/8 W units, 0 disables (simplified
        # PKG_POWER_LIMIT layout: enable bit 15, limit bits [14:0]).
        if self.rapl is None:
            raise PlatformError("no RAPL limiter on this platform")
        self.rapl.set_limit(decode_pkg_power_limit(value))

    # -- software-facing controls ---------------------------------------------

    def set_requested_frequency(self, core_id: int, frequency_mhz: float) -> None:
        """Program a core's P-state request (must be on the DVFS grid)."""
        self.platform.validate_core(core_id)
        pstate = self.platform.pstates.pstate_for_frequency(frequency_mhz)
        core = self.cores[core_id]
        # repro-lint: disable=float-equality — both sides are points of the same quantized P-state grid
        if core.requested_mhz != pstate.frequency_mhz:
            core.requested_mhz = pstate.frequency_mhz
            self._dirty = True

    def requested_frequency(self, core_id: int) -> float:
        self.platform.validate_core(core_id)
        return self.cores[core_id].requested_mhz

    def effective_frequency(self, core_id: int) -> float:
        self.platform.validate_core(core_id)
        return self.cores[core_id].effective_mhz

    def assign_load(self, core_id: int, load: CoreLoad) -> None:
        self.platform.validate_core(core_id)
        self.cores[core_id].assign(load)
        self._dirty = True

    def park(self, core_id: int, parked: bool = True) -> None:
        """Force a core into (or out of) deep idle (C6)."""
        self.platform.validate_core(core_id)
        core = self.cores[core_id]
        if core.parked != parked:
            core.parked = parked
            self._dirty = True

    def attach_cluster(self, cluster: WebsearchCluster) -> None:
        for core_id in cluster.core_ids:
            self.platform.validate_core(core_id)
        self.clusters.append(cluster)

    def set_rapl_limit(self, limit_w: float | None) -> None:
        """Convenience wrapper over the PKG_POWER_LIMIT MSR."""
        if self.rapl is None:
            raise PlatformError(
                f"{self.platform.name} has no RAPL power limiting"
            )
        self.msr.write(
            0, msrdef.MSR_PKG_POWER_LIMIT, encode_pkg_power_limit(limit_w)
        )

    # -- simulation ------------------------------------------------------------

    def active_core_count(self) -> int:
        return sum(1 for core in self.cores if core.active)

    def _check_simultaneous_pstates(self) -> None:
        limit = self.platform.simultaneous_pstates
        if not self.enforce_pstate_limit or limit >= self.platform.n_cores:
            return
        distinct = {
            core.requested_mhz for core in self.cores if core.active
        }
        if len(distinct) > limit:
            raise PlatformError(
                f"{self.platform.name} supports only {limit} simultaneous "
                f"P-states; {len(distinct)} distinct frequencies requested "
                f"({sorted(distinct)})"
            )

    def _refresh_pstate_view(self) -> None:
        """Re-run the P-state validity check and turbo/AVX resolution.

        The result — the pre-RAPL *base* effective frequency per core —
        only changes when a request, a parking decision, a load
        placement, or the active-core count changes, all of which mark
        the chip dirty; between those events every tick reuses the
        cached view (the RAPL cap moves every tick and is applied on
        top, uncached).
        """
        self._check_simultaneous_pstates()
        active_count = self.active_core_count()
        ceiling = self.turbo.ceiling_mhz(active_count)
        avx_cap = self.platform.avx_max_frequency_mhz
        base = self._base_effective_mhz
        for core in self.cores:
            if core.parked:
                base[core.core_id] = 0.0
                continue
            eff = min(core.requested_mhz, ceiling)
            if core.load.uses_avx:
                eff = min(eff, avx_cap)
            base[core.core_id] = eff
        self._dirty = False
        self._view_generation += 1

    def tick(self) -> None:
        """Advance the chip by one tick."""
        dt = self.tick_s
        if self._dirty or not self.dirty_caching:
            self._refresh_pstate_view()
        # 1. resolve effective frequencies (cached base + live RAPL cap)
        base = self._base_effective_mhz
        rapl = self.rapl
        for core in self.cores:
            if core.parked:
                core.effective_mhz = 0.0
                continue
            eff = base[core.core_id]
            if rapl is not None:
                eff = rapl.clip(eff)
            core.effective_mhz = max(eff, 0.0)
        # 2. advance clusters with a consistent view of serving cores
        if self.clusters:
            freq_view = {
                core.core_id: core.effective_mhz
                for core in self.cores
                if not core.parked
            }
            for cluster in self.clusters:
                cluster.advance(dt, freq_view)
        # 3. advance loads, compute power, accumulate counters
        core_powers: list[float] = []
        aperf = self._aperf_cycles
        mperf = self._mperf_cycles
        instr = self._instr_total
        prev_done = self._prev_sample_done
        tsc_mhz = self._tsc_mhz
        for core in self.cores:
            cpu = core.core_id
            if core.parked:
                sample = IdleLoad().advance(dt, 0.0, self.time_s)
                efficiency = self.cstates.observe(cpu, dt, 0.0, True)
            else:
                sample = core.load.advance(dt, core.effective_mhz, self.time_s)
                efficiency = self.cstates.observe(
                    cpu, dt, sample.busy_fraction, False
                )
                if efficiency < 1.0 and sample.instructions > 0:
                    sample = _scale_sample(sample, efficiency)
            active = not core.parked and sample.busy_fraction > 0.0
            power = core_power_watts(
                self.platform,
                core.effective_mhz if active else 0.0,
                sample.c_eff,
                sample.busy_fraction,
                active=active,
            )
            core.record(sample, power, dt)
            core_powers.append(power)
            # free-running counters (published lazily by flush_counters)
            busy = sample.busy_fraction
            if busy > 0.0:
                aperf[cpu] += core.effective_mhz * 1e6 * dt * busy
                mperf[cpu] += tsc_mhz * 1e6 * dt * busy
                instr[cpu] += sample.instructions
            if sample.done != prev_done[cpu]:
                # a load finishing (or restarting) changes the active
                # count and hence the turbo ceiling next tick
                prev_done[cpu] = sample.done
                self._dirty = True
        pkg_power = package_power_watts(self.platform, core_powers)
        self.last_core_powers_w = core_powers
        self.last_package_power_w = pkg_power
        # 4. energy accounting + limiter feedback
        self.energy.accumulate(core_powers, pkg_power, dt)
        if rapl is not None:
            rapl.observe(pkg_power, dt)
        self.time_s += dt

    def flush_counters(self) -> None:
        """Publish accumulated counters into the MSR file.

        Hardware counters tick continuously; our accumulators do too, as
        floats.  The MSR-visible integer values are latched here — the
        engine flushes before every periodic software callback, and any
        direct MSR consumer (tests, ad-hoc telemetry) should flush first.
        """
        intel = self.platform.vendor == "intel"
        if intel:
            self.msr.poke(
                0, msrdef.MSR_PKG_ENERGY_STATUS, self.energy.package_energy_uj
            )
        else:
            self.msr.poke(
                0, msrdef.MSR_AMD_PKG_ENERGY, self.energy.package_energy_uj
            )
        for core in self.cores:
            cpu = core.core_id
            self.msr.poke(cpu, msrdef.IA32_APERF, int(self._aperf_cycles[cpu]))
            self.msr.poke(cpu, msrdef.IA32_MPERF, int(self._mperf_cycles[cpu]))
            self.msr.poke(
                cpu, msrdef.IA32_FIXED_CTR0, int(self._instr_total[cpu])
            )
            if intel:
                ratio = int(core.effective_mhz // _INTEL_BUS_MHZ)
                self.msr.poke(
                    cpu, msrdef.IA32_PERF_STATUS, ratio << _INTEL_RATIO_SHIFT
                )
            else:
                self.msr.poke(
                    cpu, msrdef.MSR_AMD_PSTATE_STATUS,
                    int(core.effective_mhz // _AMD_STEP_MHZ),
                )
                self.msr.poke(
                    cpu, msrdef.MSR_AMD_CORE_ENERGY,
                    self.energy.core_energy_uj(cpu),
                )

    def advance_ticks(self, n: int) -> None:
        """Advance ``n`` ticks back-to-back *without* flushing counters.

        This is the engine's batched fast path: one call covers the
        whole gap to the next software deadline instead of one Python
        dispatch round per tick.
        """
        if n < 0:
            raise SimulationError("cannot run negative ticks")
        tick = self.tick
        for _ in range(n):
            tick()

    def run_ticks(self, n: int) -> None:
        """Advance ``n`` ticks and flush counters (helper for tests;
        experiments use :class:`repro.sim.engine.SimEngine`)."""
        self.advance_ticks(n)
        self.flush_counters()


def _scale_sample(sample: LoadSample, efficiency: float) -> LoadSample:
    """Discount a load sample's work by a C-state wake-up efficiency."""
    return LoadSample(
        instructions=sample.instructions * efficiency,
        busy_fraction=sample.busy_fraction,
        c_eff=sample.c_eff,
        done=sample.done,
    )
