"""Execution substrate: a discrete-time multicore chip simulator.

The simulator advances in fixed ticks (1 ms by default).  Each tick every
core resolves its *effective* frequency (requested P-state, clipped by
AVX caps, the RAPL limiter, and turbo grants), runs its attached load,
and reports power; the chip aggregates package power and publishes all
counters into the MSR file that the driver/telemetry layers read.
"""

from repro.sim.core import (
    Core,
    CoreLoad,
    LoadSample,
    BatchCoreLoad,
    ClusterCoreLoad,
    IdleLoad,
)
from repro.sim.power_model import core_power_watts, PowerBreakdown
from repro.sim.perf_model import standalone_runtime_s, standalone_ips
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.sim.thermal import ThermalModel, ThermalConfig

__all__ = [
    "Core",
    "CoreLoad",
    "LoadSample",
    "BatchCoreLoad",
    "ClusterCoreLoad",
    "IdleLoad",
    "core_power_watts",
    "PowerBreakdown",
    "standalone_runtime_s",
    "standalone_ips",
    "Chip",
    "SimEngine",
    "ThermalModel",
    "ThermalConfig",
]
