"""Pure numpy kernels for the struct-of-arrays batched simulator step.

Every function here is a *pure array transform*: arrays in, arrays out,
no object traversal, no Python-level per-core loops (the ``kernel-purity``
repro-lint rule enforces both).  The orchestration layer
(:mod:`repro.sim.soa`) gathers chip state into arrays, calls these
kernels over a ``(ticks, cores)`` batch, and commits the results back.

Bit-exactness contract (DESIGN.md section 13): each kernel replicates the
scalar hot loop's float operations *in the same order and association*,
so elementwise results are bit-identical to the per-tick reference
implementation.  Two rules keep that true:

* order-sensitive running sums use ``np.add.accumulate`` (strictly
  sequential per axis), never ``np.sum``/``np.add.reduce`` (pairwise);
* interpolation is spelled out with ``searchsorted`` + the exact
  ``lo + frac * (hi - lo)`` form the scalar table uses — ``np.interp``
  rounds differently and must not be used.
"""

from __future__ import annotations

import math

try:  # pragma: no cover - exercised by absence only
    import numpy as np
except ImportError:  # pragma: no cover - the array engine is then disabled
    np = None  # type: ignore[assignment]

#: precomputed ``2.0 * math.pi``: the scalar phase model computes
#: ``2.0 * math.pi * t`` left-associated, so ``(2.0 * pi)`` first is the
#: identical constant fold.
TWO_PI = 2.0 * math.pi


def seeded_series(seed, increments):
    """Running sum of a 1-D increment series, seeded with ``seed``.

    Returns length ``len(increments) + 1``: element ``k`` is the value
    after folding the first ``k`` increments into ``seed`` one at a
    time, bit-identical to the scalar ``acc += inc`` chain.
    """
    stacked = np.concatenate(
        (np.asarray((seed,), dtype=np.float64), increments)
    )
    return np.add.accumulate(stacked)


def seeded_accumulate(seed_row, increments):
    """Column-wise running sums of a ``(T, C)`` increment matrix.

    ``seed_row`` is the ``(C,)`` vector of starting values; the result
    is ``(T + 1, C)`` with row ``k`` holding each column's value after
    ``k`` chained additions (``np.add.accumulate`` is strictly
    sequential along the accumulation axis).
    """
    stacked = np.concatenate(
        (np.reshape(seed_row, (1, -1)), increments), axis=0
    )
    return np.add.accumulate(stacked, axis=0)


def sequential_row_sum(matrix):
    """Left-fold of each row of ``(T, C)``, matching ``sum(list)``.

    Python's ``sum`` folds ``((0.0 + p0) + p1) + ...``; for the
    non-negative per-core powers ``0.0 + p0 == p0`` bit-exactly, so the
    sequential accumulate's last column is the identical fold.
    """
    return np.add.accumulate(matrix, axis=1)[:, -1]


def phase_factors(times, period, offset, ipc_amp, pow_amp):
    """IPC and power phase multipliers for a ``(T, C)`` time matrix.

    Replicates ``AppModel.ipc_factor`` / ``power_factor``: the angle is
    ``((2*pi * t) / period) + offset`` and zero amplitudes reduce to an
    exact ``1.0`` because ``1.0 + 0.0 * sin(x) == 1.0``.
    """
    angle = (TWO_PI * times) / period + offset
    return 1.0 + ipc_amp * np.sin(angle), 1.0 + pow_amp * np.sin(angle * 0.5)


def roofline_rows(eff, ref, mem_frac, base_ipc, stall):
    """Per-core roofline throughput and activity-power factor.

    Returns ``(rate, factor)``: instructions/second at the effective
    frequency (``AppModel.ips``) and the time-weighted dynamic-power
    activity factor (``AppModel.activity_power_factor``), with every
    intermediate in the scalar model's association order.
    """
    cpu_time = ((1.0 - mem_frac) * ref) / eff
    speedup = 1.0 / (cpu_time + mem_frac)
    rate = (base_ipc * ref) * 1e6 * speedup
    active = cpu_time / (cpu_time + mem_frac)
    factor = active + (1.0 - active) * stall
    return rate, factor


def voltage_rows(freq, grid_freqs, grid_volts):
    """V/f table lookup, bit-identical to the scalar bisect form.

    ``PStateTable.voltage_for_frequency`` interpolates with
    ``bisect_right`` and ``lo + frac * (hi - lo)``; ``searchsorted``
    with ``side="right"`` selects the same bracket, and the boundary
    lanes collapse onto the table's end voltages.
    """
    pos = np.searchsorted(grid_freqs, freq, side="right")
    pos = np.clip(pos, 1, len(grid_freqs) - 1)
    lo_f = grid_freqs[pos - 1]
    hi_f = grid_freqs[pos]
    lo_v = grid_volts[pos - 1]
    hi_v = grid_volts[pos]
    frac = (freq - lo_f) / (hi_f - lo_f)
    mid = lo_v + frac * (hi_v - lo_v)
    return np.where(
        freq <= grid_freqs[0],
        grid_volts[0],
        np.where(freq >= grid_freqs[-1], grid_volts[-1], mid),
    )


def retired_rows(rate, ipc_t, dt):
    """Instructions retired per tick: ``(rate * ipc_factor) * dt``.

    The scalar app computes ``rate *= ipc_factor`` then
    ``retired = rate * dt * share`` with ``share == 1.0`` (an exact
    multiplicative identity), so the two-factor product matches.
    """
    return (rate * ipc_t) * dt


def power_rows(ceff_t, volt, f_ghz, scale, leak_coeff, idle_w, running):
    """Per-core power matrix, replicating ``core_power_breakdown``.

    Running lanes: ``scale*c_eff*V*V*f_ghz*busy + leak*V + idle*(1-busy)``
    with ``busy == 1.0``, so the trailing identities (``* 1.0`` and
    ``+ 0.0``) drop out bit-exactly.  Idle and parked lanes draw the
    deep-idle floor.
    """
    dyn = scale * ceff_t * volt * volt * f_ghz
    return np.where(running, dyn + leak_coeff * volt, idle_w)


def first_hit_rows(hits, n_ticks):
    """First tick index where each column of ``hits`` is True.

    Columns with no hit report ``n_ticks`` (one past the window), the
    sentinel the event-split logic treats as "no behaviour change".
    """
    any_hit = np.any(hits, axis=0)
    first = np.argmax(hits, axis=0)
    return np.where(any_hit, first, n_ticks)


def counter_increment_rows(eff, dt, tsc, running):
    """Per-tick APERF/MPERF increments for running lanes.

    The scalar loop adds ``eff * 1e6 * dt * busy`` with ``busy == 1.0``
    (exact identity); idle lanes contribute an exact ``0.0``, which is a
    bitwise no-op on the non-negative accumulators.
    """
    aperf = np.where(running, (eff * 1e6) * dt, 0.0)
    mperf = np.where(running, (tsc * 1e6) * dt, 0.0)
    return aperf, mperf


def residency_increment_rows(dt, running, parked):
    """Per-tick C0/C1/C6 residency increments by lane classification.

    Running lanes accrue ``dt * busy == dt`` of C0 (the C1 remainder is
    an exact ``0.0``), unparked idle lanes accrue ``dt`` of C1, parked
    lanes ``dt`` of C6.
    """
    c0 = np.where(running, dt, 0.0)
    c1 = np.where(running, 0.0, np.where(parked, 0.0, dt))
    c6 = np.where(parked, dt, 0.0)
    return c0, c1, c6
