"""Closed-form performance helpers.

These mirror what the simulator computes tick-by-tick, in closed form:
standalone runtime and IPS of an app at a fixed frequency.  The
experiment harness uses them for the offline baselines the paper's
performance-share policy needs ("performance of an application running
alone at maximum frequency, measured offline" — section 5.2) and for
normalizing results the way the figures do.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.platform import PlatformSpec
from repro.workloads.app import AppModel


def effective_frequency_mhz(
    platform: PlatformSpec, app: AppModel, requested_mhz: float
) -> float:
    """Frequency the app would actually sustain at a software request,
    accounting for the platform AVX cap (no RAPL, no turbo contention)."""
    if requested_mhz <= 0:
        raise ConfigError("requested frequency must be positive")
    return min(requested_mhz, platform.effective_max_frequency_mhz(app.uses_avx))


def standalone_ips(
    platform: PlatformSpec, app: AppModel, frequency_mhz: float
) -> float:
    """Instructions per second running alone at ``frequency_mhz``."""
    freq = effective_frequency_mhz(platform, app, frequency_mhz)
    return app.ips(freq, platform.reference_frequency_mhz)


def standalone_runtime_s(
    platform: PlatformSpec, app: AppModel, frequency_mhz: float
) -> float:
    """Standalone completion time at a fixed frequency."""
    if app.instructions is None:
        raise ConfigError(f"{app.name} is a service; it has no runtime")
    return app.instructions / standalone_ips(platform, app, frequency_mhz)


def max_standalone_ips(platform: PlatformSpec, app: AppModel) -> float:
    """Offline baseline the performance-share policy normalizes against:
    IPS alone at the platform's maximum frequency."""
    return standalone_ips(platform, app, platform.max_frequency_mhz)


def highest_useful_frequency(
    platform: PlatformSpec,
    app: AppModel,
    *,
    min_speedup_per_step: float = 0.6,
) -> float:
    """Highest *useful* frequency for an app (paper section 4.4).

    Memory- and I/O-bound applications gain little from the top P-states
    while still paying their power cost; the paper suggests policies
    "run applications at the highest useful frequency rather than the
    highest possible frequency", with hardware like Intel HWP supplying
    the saturation hint.  Here the roofline model supplies it: walk the
    platform's grid and stop where a step's marginal speedup drops below
    ``min_speedup_per_step`` of the ideal (frequency-proportional) gain.

    Returns a grid frequency; fully compute-bound apps get the (AVX
    -capped) maximum.
    """
    if not 0.0 < min_speedup_per_step <= 1.0:
        raise ConfigError("min_speedup_per_step must be in (0, 1]")
    cap = platform.effective_max_frequency_mhz(app.uses_avx)
    grid = [f for f in platform.pstates.frequencies_mhz if f <= cap]
    reference = platform.reference_frequency_mhz
    chosen = grid[0]
    for prev, curr in zip(grid, grid[1:]):
        actual_gain = app.speedup(curr, reference) / app.speedup(
            prev, reference
        )
        ideal_gain = curr / prev
        # fraction of the ideal gain actually realised by this step
        realised = (actual_gain - 1.0) / (ideal_gain - 1.0)
        if realised < min_speedup_per_step:
            break
        chosen = curr
    return chosen
