"""Diurnal traffic schedule and the oversubscription safety check.

The ROADMAP demo is a day of websearch traffic rolling across a
simulated datacenter: load follows a smooth diurnal curve, offset per
row (rows stand in for timezones/regions), and at any instant only a
fraction of each rack's nodes serve traffic — the rest idle.  The
fleet layer exploits that sparsity twice: idle nodes are skipped by
the stacked stepper (they file a synthetic idle report instead of
simulating 10 daemon ticks of nothing), and their flat demand keeps
their racks *clean* in the arbiter's dirty-subtree scheme.

:class:`DiurnalSchedule` is pure arithmetic on the epoch counter — a
cosine between the base and peak active fractions, phase-shifted per
row — so runs replay deterministically and serial/stacked/fork
stepping agree on who is idle.  Within a rack the first ``k`` nodes
(rack declaration order) are active; traffic "rolls" because ``k``
changes with the curve, not because membership shuffles.

**Oversubscription.**  A fleet is provisioned against *expected* load,
not the sum of nameplate maxima: Σ node ceilings deliberately exceeds
the facility budget.  :func:`assess_oversubscription` quantifies the
bet — the worst single-epoch demand over one schedule period, taking
every active node at its ceiling and every idle node at its floor —
and reports whether the budget covers it.  When the bet loses at
runtime (demand above budget), the arbiter degrades gracefully: the
water-fill pins the excess nodes at their floors and surfaces them as
``shed`` on the grant, never exceeding the physical envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.fleet.topology import (
    DomainSpec,
    leaf_racks,
    rack_row_indices,
)


@dataclass(frozen=True)
class DiurnalSchedule:
    """Deterministic cosine load curve over the epoch counter."""

    #: epochs per full day (trough at epoch 0, peak half-way through).
    period_epochs: int = 24
    #: fraction of each rack serving traffic at the trough / the peak.
    base_active_fraction: float = 0.15
    peak_active_fraction: float = 0.65
    #: phase shift between consecutive rows, epochs — traffic rolls
    #: across the fleet instead of breathing in lockstep.
    row_phase_epochs: int = 2

    def __post_init__(self) -> None:
        if self.period_epochs < 2:
            raise ConfigError("period_epochs must be at least 2")
        for name in ("base_active_fraction", "peak_active_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.peak_active_fraction < self.base_active_fraction:
            raise ConfigError(
                "peak_active_fraction below base_active_fraction"
            )
        if self.row_phase_epochs < 0:
            raise ConfigError("row_phase_epochs cannot be negative")

    def active_fraction(self, epoch: int, row_index: int = 0) -> float:
        """The fraction of a row's nodes serving traffic this epoch."""
        phase = (
            2.0
            * math.pi
            * ((epoch - row_index * self.row_phase_epochs)
               % self.period_epochs)
            / self.period_epochs
        )
        mid = (self.base_active_fraction + self.peak_active_fraction) / 2.0
        amplitude = (
            self.peak_active_fraction - self.base_active_fraction
        ) / 2.0
        return mid - amplitude * math.cos(phase)

    def active_count(self, n: int, epoch: int, row_index: int = 0) -> int:
        """How many of a rack's ``n`` nodes are active this epoch."""
        count = int(round(n * self.active_fraction(epoch, row_index)))
        return min(max(count, 0), n)


@dataclass(frozen=True)
class OversubscriptionReport:
    """The oversubscription bet, quantified."""

    budget_w: float
    #: Σ node cap ceilings — what the fleet could draw all-out.
    ceiling_sum_w: float
    #: Σ node cap floors — what the fleet draws fully idle.
    floor_sum_w: float
    #: ceiling_sum / budget: how far the fleet is oversubscribed.
    ratio: float
    #: worst single-epoch demand over one schedule period (active
    #: nodes at ceiling + idle nodes at floor).
    peak_demand_w: float
    peak_epoch: int
    #: whether the budget covers the statistical peak.
    safe: bool

    @property
    def margin_w(self) -> float:
        """Budget left over at the statistical peak (negative: the
        bet can lose and shedding will engage)."""
        return self.budget_w - self.peak_demand_w


def assess_oversubscription(
    budget_w: float,
    root: DomainSpec,
    floors: dict[str, float],
    ceilings: dict[str, float],
    schedule: DiurnalSchedule | None = None,
) -> OversubscriptionReport:
    """Statistical-safety check for an oversubscribed fleet.

    Walks one full schedule period applying the *same* first-``k``
    activation rule the runtime uses, so the reported peak is exactly
    the worst demand the configured day can present.  Without a
    schedule every node counts active and the check degenerates to
    the conservative ``Σ ceilings <= budget``.
    """
    racks = leaf_racks(root)
    rows = rack_row_indices(root)
    ceiling_sum = sum(
        ceilings[name] for rack in racks for name in rack.nodes
    )
    floor_sum = sum(floors[name] for rack in racks for name in rack.nodes)
    epochs = range(schedule.period_epochs) if schedule is not None else (0,)
    peak_demand = 0.0
    peak_epoch = 0
    for epoch in epochs:
        demand = 0.0
        for rack in racks:
            members = rack.nodes
            if schedule is None:
                active = len(members)
            else:
                active = schedule.active_count(
                    len(members), epoch, rows[rack.name]
                )
            rack_demand = sum(
                ceilings[n] for n in members[:active]
            ) + sum(floors[n] for n in members[active:])
            if rack.ceiling_w is not None:
                # the rack's breaker caps what its nodes can draw
                rack_demand = min(rack_demand, rack.ceiling_w)
            demand += rack_demand
        if demand > peak_demand:
            peak_demand = demand
            peak_epoch = epoch
    return OversubscriptionReport(
        budget_w=budget_w,
        ceiling_sum_w=ceiling_sum,
        floor_sum_w=floor_sum,
        ratio=ceiling_sum / budget_w if budget_w > 0 else float("inf"),
        peak_demand_w=peak_demand,
        peak_epoch=peak_epoch,
        safe=peak_demand <= budget_w,
    )
