"""Fleet topology: an arbitrary-depth tree of budget domains.

The PR-3 arbiter splits the facility budget over a flat two-level
groups→nodes tree; at fleet scale the budget flows through the physical
power-delivery hierarchy instead — facility → row → rack → node — and
every level is a *budget domain* with its own shares, an implicit floor
(the sum of its members' cap floors), and an optional watt ceiling (a
breaker/PDU limit the domain can never exceed regardless of demand).

:class:`DomainSpec` is one vertex: an **interior** domain lists child
domains, a **leaf** domain (a rack) lists the node names it powers.
Depth is arbitrary — the arbiter condenses demand bottom-up and splits
pools top-down over whatever shape the tree has — but the canonical
fleet is the three-level grid :func:`grid_topology` builds.

Everything here is pure data + traversal helpers; the arbitration
logic lives in :mod:`repro.fleet.arbiter` and the cluster wiring in
:mod:`repro.cluster.config` (``ClusterConfig.topology``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DomainSpec:
    """One budget domain: an interior split point or a leaf rack."""

    name: str
    shares: float = 1.0
    #: child domains (interior vertex) — mutually exclusive with nodes.
    children: tuple["DomainSpec", ...] = ()
    #: member node names (leaf vertex / rack).
    nodes: tuple[str, ...] = ()
    #: hard watt ceiling for the whole subtree (breaker/PDU limit);
    #: ``None`` bounds the domain only by its members' demand.
    ceiling_w: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("domain needs a non-empty name")
        if self.shares <= 0:
            raise ConfigError(f"domain {self.name}: shares must be positive")
        if self.children and self.nodes:
            raise ConfigError(
                f"domain {self.name}: cannot hold both child domains "
                f"and nodes"
            )
        if not self.children and not self.nodes:
            raise ConfigError(
                f"domain {self.name}: needs child domains or nodes"
            )
        if self.ceiling_w is not None and self.ceiling_w <= 0:
            raise ConfigError(
                f"domain {self.name}: ceiling_w must be positive"
            )

    @property
    def is_leaf(self) -> bool:
        return bool(self.nodes)


def iter_domains(root: DomainSpec):
    """All domains, preorder (parent before children) — the canonical
    deterministic walk every fleet structure derives from."""
    stack = [root]
    while stack:
        domain = stack.pop()
        yield domain
        # reversed so children come out in declaration order
        stack.extend(reversed(domain.children))


def leaf_racks(root: DomainSpec) -> tuple[DomainSpec, ...]:
    """The leaf domains (racks), in preorder."""
    return tuple(d for d in iter_domains(root) if d.is_leaf)


def rack_of_map(root: DomainSpec) -> dict[str, str]:
    """node name -> name of the leaf rack powering it."""
    out: dict[str, str] = {}
    for rack in leaf_racks(root):
        for name in rack.nodes:
            out[name] = rack.name
    return out


def rack_row_indices(root: DomainSpec) -> dict[str, int]:
    """rack name -> index of its depth-1 ancestor (its "row").

    The diurnal schedule phases traffic per row; racks hanging directly
    off the root count as their own row.  Deeper nesting inherits the
    topmost ancestor's index, so a whole row's racks phase together.
    """
    out: dict[str, int] = {}
    for index, child in enumerate(root.children):
        for domain in iter_domains(child):
            if domain.is_leaf:
                out[domain.name] = index
    if root.is_leaf:
        out[root.name] = 0
    return out


def validate_topology(
    root: DomainSpec, node_names: tuple[str, ...],
    node_floors: dict[str, float],
) -> None:
    """Check the tree covers the fleet exactly once and floors fit.

    * domain names are unique across the tree,
    * every configured node appears in exactly one leaf, and every
      leaf node is a configured node (bijection — the arbiter must be
      able to place every member and only members),
    * every domain ceiling covers the floors beneath it, so the
      no-starvation rule survives the ceiling clamp at every depth.
    """
    seen_domains: set[str] = set()
    placed: dict[str, str] = {}
    for domain in iter_domains(root):
        if domain.name in seen_domains:
            raise ConfigError(f"duplicate domain name {domain.name!r}")
        seen_domains.add(domain.name)
        for name in domain.nodes:
            if name in placed:
                raise ConfigError(
                    f"node {name!r} appears in both {placed[name]!r} "
                    f"and {domain.name!r}"
                )
            placed[name] = domain.name
    configured = set(node_names)
    missing = configured - placed.keys()
    if missing:
        raise ConfigError(
            f"topology does not place nodes: {sorted(missing)}"
        )
    unknown = placed.keys() - configured
    if unknown:
        raise ConfigError(
            f"topology places unknown nodes: {sorted(unknown)}"
        )
    _validate_ceilings(root, node_floors)


def _validate_ceilings(root: DomainSpec, floors: dict[str, float]) -> float:
    """Post-order floor roll-up: each ceiling must cover its floors."""
    if root.is_leaf:
        floor_sum = sum(floors[name] for name in root.nodes)
    else:
        floor_sum = sum(
            _validate_ceilings(child, floors) for child in root.children
        )
    if root.ceiling_w is not None and root.ceiling_w < floor_sum:
        raise ConfigError(
            f"domain {root.name}: ceiling {root.ceiling_w:.1f} W below "
            f"the {floor_sum:.1f} W sum of member cap floors"
        )
    return floor_sum


def grid_topology(
    rows: int,
    racks_per_row: int,
    nodes_per_rack: int,
    *,
    root_name: str = "facility",
    rack_ceiling_w: float | None = None,
) -> tuple[DomainSpec, tuple[str, ...]]:
    """The canonical facility → row → rack → node grid.

    Node names are hierarchical (``row0/rack1/n03``) so roll-ups and
    rack-level fault scenarios can select subtrees by prefix.  Returns
    ``(root, node_names)`` with nodes in rack order — the order the
    diurnal schedule activates them in.
    """
    if rows < 1 or racks_per_row < 1 or nodes_per_rack < 1:
        raise ConfigError("grid dimensions must all be at least 1")
    node_names: list[str] = []
    row_specs = []
    for row in range(rows):
        rack_specs = []
        for rack in range(racks_per_row):
            prefix = f"row{row}/rack{rack}"
            members = tuple(
                f"{prefix}/n{i:03d}" for i in range(nodes_per_rack)
            )
            node_names.extend(members)
            rack_specs.append(
                DomainSpec(
                    name=prefix, nodes=members, ceiling_w=rack_ceiling_w
                )
            )
        row_specs.append(
            DomainSpec(name=f"row{row}", children=tuple(rack_specs))
        )
    root = DomainSpec(name=root_name, children=tuple(row_specs))
    return root, tuple(node_names)


# -- cache serialization ---------------------------------------------------------


def domain_from_jsonable(data: dict) -> DomainSpec:
    return DomainSpec(
        name=data["name"],
        shares=data.get("shares", 1.0),
        children=tuple(
            domain_from_jsonable(child) for child in data.get("children", ())
        ),
        nodes=tuple(data.get("nodes", ())),
        ceiling_w=data.get("ceiling_w"),
    )
