"""Hierarchical fleet arbitration with dirty-subtree incremental refill.

:class:`FleetArbiter` generalizes the flat PR-3
:class:`~repro.cluster.arbiter.ClusterArbiter` to an arbitrary-depth
domain tree (facility → row → rack → node): the facility budget flows
down the tree — :func:`~repro.core.minfund.refill_pool` splits each
interior domain's pool across its children by shares, and the exact
FastCap sweep (:func:`~repro.fleet.waterfill.waterfill`) splits each
rack's pool across its member nodes.  Membership, leases,
reservations, demand aging, and the cap-sum invariant are all
inherited unchanged — only the ``_arbitrate`` step is replaced.

**Why incremental.**  At 1,000+ nodes the naive path — build a claim
per node, bisect every rack, every epoch — dominates the control
plane.  But a fleet in steady state barely changes: idle nodes report
a constant synthetic demand, loaded nodes jitter within a watt.  The
arbiter exploits that in three layers:

1. **Demand signatures** — per node, a cheap ``(last-fresh epoch,
   age bucket)`` tuple that changes only when a new report landed or
   held-over demand is mid-fade.  Unchanged signature ⇒ the cached
   claim is exact, no recompute.
2. **Quantized claims** — a recomputed claim rounds its demand
   ceiling to :data:`DEMAND_QUANTUM_W`, so watt-level jitter maps to
   the *same* claim and the node stays clean.  Only a claim that
   actually moved marks its rack dirty.
3. **Pool deadbands** — interior splits are recomputed every epoch
   (they are O(#domains), cheap), but a *clean* rack whose new pool
   moved less than :data:`POOL_SLACK_W` from the pool its cached caps
   were filled at — and whose cached caps still fit under the new
   pool — reuses those caps wholesale.  The fit condition keeps the
   invariant inductive: reused sums never exceed assigned pools, so
   Σ granted + Σ reserved ≤ budget holds exactly at every depth.

The caches (signatures, claims, per-rack fills) ride inside
:meth:`snapshot`, so an arbiter rebuilt from the journal after a crash
makes the *same* reuse decisions and the run stays byte-identical.

**Oversubscription and shedding.**  Σ node ceilings may exceed the
budget (see :mod:`repro.fleet.schedule` for the statistical-safety
check).  When demand exceeds a pool, the water-fill pins the
lowest-entitlement members at their floors; members that wanted more
than their floor but were pinned at it are surfaced as ``shed`` on the
grant — the graceful losing branch of the bet, never a violation.
"""

from __future__ import annotations

from repro.cluster.arbiter import (
    Arbitration,
    ClusterArbiter,
    DEMAND_SLACK,
    _SUM_TOLERANCE,
)
from repro.cluster.config import ClusterConfig
from repro.cluster.node import NodeEpochReport
from repro.cluster.trust import brownout_claim_bounds
from repro.core.minfund import Claim, refill_pool
from repro.errors import ConfigError
from repro.fleet.topology import iter_domains, leaf_racks
from repro.fleet.waterfill import waterfill

#: demand-ceiling quantization, watts: jitter below this keeps a
#: node's claim — and therefore its rack — clean.
DEMAND_QUANTUM_W = 0.5

#: pool deadband, watts: a clean rack reuses its cached caps while its
#: assigned pool stays within this of the pool they were filled at.
POOL_SLACK_W = 0.5

#: margin shaved off the root pool before splitting, watts: keeps the
#: bisection/sweep float residue strictly under budget so the exact
#: trim (which would flush every reuse cache) never has to fire.
_POOL_RESIDUE_MARGIN_W = 1e-3

#: a member is shed when it wanted more than its floor but was granted
#: within this of it.
_SHED_TOLERANCE_W = 1e-6


class FleetArbiter(ClusterArbiter):
    """Budget domains all the way down, arbitrated incrementally."""

    def __init__(self, config: ClusterConfig):
        super().__init__(config)
        if config.topology is None:
            raise ConfigError("FleetArbiter needs a config with a topology")
        self.topology = config.topology
        #: full recompute mode (every rack dirty every epoch): the
        #: reference the property suite and bench compare against.
        self.incremental = True
        # -- static tree structure (preorder everywhere) -----------------
        self._domains = tuple(iter_domains(self.topology))
        self._interior = tuple(d for d in self._domains if not d.is_leaf)
        self._racks = leaf_racks(self.topology)
        self._rack_names = tuple(r.name for r in self._racks)
        # -- static per-node constants (one platform resolve, at init) ---
        self._node_shares: dict[str, float] = {}
        self._node_lo: dict[str, float] = {}
        self._node_hi_cap: dict[str, float] = {}
        self._node_apps: dict[str, int] = {}
        for spec in config.nodes:
            self._node_shares[spec.name] = spec.shares
            self._node_lo[spec.name] = spec.min_cap_w
            self._node_hi_cap[spec.name] = spec.resolved_max_cap_w()
            self._node_apps[spec.name] = len(spec.apps)
        # -- incremental caches ------------------------------------------
        #: per node: (last_fresh, age_bucket, trust score, brownout
        #: level, top shares) the cached claim was computed under; a
        #: matching signature means the claim is exact.
        self._node_sigs: dict[str, tuple[float, ...]] = {}
        #: per node: (shares, lo, quantized hi).
        self._node_claims: dict[str, tuple[float, float, float]] = {}
        #: per rack: live membership of the last epoch (claim order).
        self._rack_live: dict[str, tuple[str, ...]] = {}
        #: per rack: condensed (lo, hi) over the live members.
        self._rack_cond: dict[str, tuple[float, float]] = {}
        #: per rack: the pool its cached caps were filled at.
        self._rack_pool: dict[str, float] = {}
        #: per rack: the cached member caps, their float sum, and the
        #: members shed at fill time.
        self._rack_caps: dict[str, dict[str, float]] = {}
        self._rack_capsum: dict[str, float] = {}
        self._rack_shed: dict[str, tuple[str, ...]] = {}

    # -- membership hooks ---------------------------------------------------------

    def retire(self, names: list[str]) -> None:
        super().retire(names)
        for name in names:
            self._node_sigs.pop(name, None)
            self._node_claims.pop(name, None)

    def _caches_invalidated(self) -> None:
        """The exact trim rewrote caps behind the rack caches: drop
        them all so the next epoch re-fills from live state."""
        self._rack_pool.clear()
        self._rack_caps.clear()
        self._rack_capsum.clear()
        self._rack_shed.clear()

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> dict:
        state = super().snapshot()
        state["fleet"] = {
            "sigs": {n: list(sig) for n, sig in self._node_sigs.items()},
            "claims": {
                n: list(claim) for n, claim in self._node_claims.items()
            },
            "rack_live": {
                r: list(live) for r, live in self._rack_live.items()
            },
            "rack_cond": {
                r: list(cond) for r, cond in self._rack_cond.items()
            },
            "rack_pool": dict(self._rack_pool),
            "rack_caps": {
                r: dict(caps) for r, caps in self._rack_caps.items()
            },
            "rack_capsum": dict(self._rack_capsum),
            "rack_shed": {
                r: list(shed) for r, shed in self._rack_shed.items()
            },
        }
        return state

    def restore(self, state: dict) -> None:
        super().restore(state)
        fleet = state.get("fleet", {})
        # pre-trust journals carry 2-tuple signatures: they restore
        # verbatim and simply never match the 5-tuple the refresh
        # computes, forcing a clean recompute instead of stale reuse
        self._node_sigs = {
            n: tuple(sig) for n, sig in fleet.get("sigs", {}).items()
        }
        self._node_claims = {
            n: (claim[0], claim[1], claim[2])
            for n, claim in fleet.get("claims", {}).items()
        }
        self._rack_live = {
            r: tuple(live) for r, live in fleet.get("rack_live", {}).items()
        }
        self._rack_cond = {
            r: (cond[0], cond[1])
            for r, cond in fleet.get("rack_cond", {}).items()
        }
        self._rack_pool = dict(fleet.get("rack_pool", {}))
        self._rack_caps = {
            r: dict(caps) for r, caps in fleet.get("rack_caps", {}).items()
        }
        self._rack_capsum = dict(fleet.get("rack_capsum", {}))
        self._rack_shed = {
            r: tuple(shed) for r, shed in fleet.get("rack_shed", {}).items()
        }

    # -- the hierarchical arbitration ---------------------------------------------

    def _arbitrate(
        self,
        epoch: int,
        live: list[str],
        budget: float,
        caps: dict[str, float],
        degraded: list[str],
    ) -> tuple[dict[str, float], tuple[str, ...], dict[str, int], float]:
        live_set = set(live)
        dirty: set[str] = set()
        dirty_nodes = 0
        level = self.brownout.level
        top_shares = max(
            (self._node_shares[n] for n in live), default=0.0
        )
        # hoisted per epoch: when no node holds a degraded score the
        # per-node trust probes below collapse to one dict lookup and
        # the claim path skips the discount call entirely
        trust_scores = self.trust.scores
        all_trusted = not trust_scores
        # 1. refresh claims + find dirty racks (cheap O(n) scan; the
        # per-node work is two dict lookups unless demand moved)
        for rack in self._racks:
            members = tuple(n for n in rack.nodes if n in live_set)
            if members != self._rack_live.get(rack.name):
                self._rack_live[rack.name] = members
                dirty.add(rack.name)
            for name in members:
                report = self._last_report.get(name)
                if report is None and self._admitted_at[name] != epoch:
                    degraded.append(name)
                age = self._age(name, epoch)
                bucket = 0 if age <= 1 else min(age, self.lease_ttl + 1)
                sig = (
                    float(self._last_fresh.get(name, -1)),
                    float(bucket),
                    trust_scores.get(name, 1.0),
                    float(level),
                    top_shares,
                )
                if sig != self._node_sigs.get(name):
                    self._node_sigs[name] = sig
                    claim = self._fleet_claim(
                        name, report, age, level, top_shares,
                        all_trusted,
                    )
                    if claim != self._node_claims.get(name):
                        self._node_claims[name] = claim
                        dirty.add(rack.name)
                        dirty_nodes += 1
        if not self.incremental:
            dirty.update(self._rack_names)
        # 2. condense dirty racks (live-member sums, ceiling-clamped)
        for rack in self._racks:
            if rack.name not in dirty:
                continue
            members = self._rack_live[rack.name]
            lo = sum(self._node_claims[n][1] for n in members)
            hi = sum(self._node_claims[n][2] for n in members)
            if rack.ceiling_w is not None:
                hi = min(hi, rack.ceiling_w)
            self._rack_cond[rack.name] = (lo, hi)
        # 3. condense interior domains bottom-up and split pools
        # top-down — O(#domains), recomputed every epoch
        cond: dict[str, tuple[float, float]] = {}
        for domain in reversed(self._domains):
            if domain.is_leaf:
                if self._rack_live.get(domain.name):
                    cond[domain.name] = self._rack_cond[domain.name]
                continue
            los, his = 0.0, 0.0
            empty = True
            for child in domain.children:
                child_cond = cond.get(child.name)
                if child_cond is None:
                    continue
                empty = False
                los += child_cond[0]
                his += child_cond[1]
            if not empty:
                if domain.ceiling_w is not None:
                    his = min(his, domain.ceiling_w)
                cond[domain.name] = (los, his)
        pools: dict[str, float] = {}
        stats = {
            "racks": 0,
            "refilled": 0,
            "reused": 0,
            "dirty_nodes": dirty_nodes,
        }
        if self.topology.name not in cond:
            return pools, (), stats, 0.0
        pools[self.topology.name] = max(
            budget - _POOL_RESIDUE_MARGIN_W, cond[self.topology.name][0]
        )
        for domain in self._interior:
            pool = pools.get(domain.name)
            if pool is None:
                continue
            child_claims = [
                Claim(
                    label=child.name,
                    shares=child.shares,
                    current=0.0,
                    lo=cond[child.name][0],
                    hi=cond[child.name][1],
                )
                for child in domain.children
                if child.name in cond
            ]
            pools.update(refill_pool(pool, child_claims))
        # 4. fill (or reuse) each live rack
        shed: list[str] = []
        live_sum = 0.0
        for rack in self._racks:
            members = self._rack_live[rack.name]
            if not members:
                continue
            stats["racks"] += 1
            pool = pools[rack.name]
            cached_pool = self._rack_pool.get(rack.name)
            if (
                rack.name not in dirty
                and cached_pool is not None
                and abs(pool - cached_pool) <= POOL_SLACK_W
                and self._rack_capsum[rack.name] <= pool + _SUM_TOLERANCE
            ):
                stats["reused"] += 1
                caps.update(self._rack_caps[rack.name])
                shed.extend(self._rack_shed[rack.name])
                live_sum += self._rack_capsum[rack.name]
                continue
            stats["refilled"] += 1
            claims = [
                Claim(
                    label=n,
                    shares=self._node_claims[n][0],
                    current=0.0,
                    lo=self._node_claims[n][1],
                    hi=self._node_claims[n][2],
                )
                for n in members
            ]
            fill = waterfill(pool, claims)
            capsum = sum(fill[n] for n in members)
            rack_shed = tuple(
                n
                for n in members
                if self._node_claims[n][2]
                > self._node_lo[n] + DEMAND_QUANTUM_W / 2
                and fill[n] <= self._node_lo[n] + _SHED_TOLERANCE_W
            )
            caps.update(fill)
            shed.extend(rack_shed)
            live_sum += capsum
            self._rack_pool[rack.name] = pool
            self._rack_caps[rack.name] = fill
            self._rack_capsum[rack.name] = capsum
            self._rack_shed[rack.name] = rack_shed
        return pools, tuple(shed), stats, live_sum

    def _fleet_claim(
        self,
        name: str,
        report: NodeEpochReport | None,
        age: int,
        level: int,
        top_shares: float,
        all_trusted: bool,
    ) -> tuple[float, float, float]:
        """The flat arbiter's claim, quantized and ``current``-free.

        Mirrors :meth:`ClusterArbiter._claim` (demand slack, quarantine
        scaling, stale-demand fade, trust discount, brownout shedding)
        but snaps the ceiling to the demand quantum so watt-level
        jitter cannot dirty a rack, and drops the ``current`` field the
        water-fill never reads.
        """
        lo = self._node_lo[name]
        hi_cap = self._node_hi_cap[name]
        if report is None:
            raw = hi_cap
        else:
            wants = report.mean_power_w + report.throttle_pressure * max(
                hi_cap - report.mean_power_w, 0.0
            )
            n_apps = self._node_apps[name]
            healthy = max(n_apps - report.quarantined_cores, 0) / n_apps
            raw = min(wants * DEMAND_SLACK * healthy, hi_cap)
            if age > 1:
                fade = max(0.0, 1.0 - (age - 1) / self.lease_ttl)
                raw = lo + (max(raw, lo) - lo) * fade
            raw = max(raw, lo)
        if not all_trusted:
            raw = self.trust.discount_hi(name, lo, raw)
        lo_eff, hi = brownout_claim_bounds(
            level,
            floor_w=lo,
            raw_hi_w=raw,
            shares=self._node_shares[name],
            top_shares=top_shares,
        )
        if report is not None and hi > lo_eff:
            hi = min(
                lo_eff
                + round((hi - lo_eff) / DEMAND_QUANTUM_W) * DEMAND_QUANTUM_W,
                hi_cap,
            )
        return (self._node_shares[name], lo_eff, max(hi, lo_eff))


def make_arbiter(config: ClusterConfig) -> ClusterArbiter:
    """The arbiter matching the config: hierarchical when a topology
    is declared, the flat two-level one otherwise."""
    if config.topology is not None:
        return FleetArbiter(config)
    return ClusterArbiter(config)


__all__ = [
    "Arbitration",
    "DEMAND_QUANTUM_W",
    "FleetArbiter",
    "POOL_SLACK_W",
    "make_arbiter",
]
