"""Fleet-scale hierarchical power arbitration.

Facility → row → rack → node budget domains (:mod:`.topology`), exact
FastCap-style water-filling at the rack level (:mod:`.waterfill`), the
diurnal traffic schedule and oversubscription safety check
(:mod:`.schedule`), and the incremental dirty-subtree arbiter
(:mod:`.arbiter`).
"""

from repro.fleet.schedule import (
    DiurnalSchedule,
    OversubscriptionReport,
    assess_oversubscription,
)
from repro.fleet.topology import (
    DomainSpec,
    domain_from_jsonable,
    grid_topology,
    iter_domains,
    leaf_racks,
    rack_of_map,
    rack_row_indices,
    validate_topology,
)
from repro.fleet.waterfill import waterfill, waterfill_level

__all__ = [
    "DiurnalSchedule",
    "DomainSpec",
    "FleetArbiter",
    "OversubscriptionReport",
    "assess_oversubscription",
    "domain_from_jsonable",
    "grid_topology",
    "iter_domains",
    "leaf_racks",
    "make_arbiter",
    "rack_of_map",
    "rack_row_indices",
    "validate_topology",
    "waterfill",
    "waterfill_level",
]


def __getattr__(name: str):
    # FleetArbiter pulls in repro.cluster, which itself imports
    # repro.fleet.topology — resolve lazily to keep the import DAG.
    if name in ("FleetArbiter", "make_arbiter"):
        from repro.fleet import arbiter

        return getattr(arbiter, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
