"""FastCap-style exact water-filling for rack-level cap splits.

:func:`repro.core.minfund.proportional_targets` finds the common
funding level by bisection — 80 refinement passes, each evaluating
every claim.  That is fine for a handful of apps or nodes but is the
dominant arbitration cost at rack scale: a fleet of racks re-filled
every epoch pays ``80 * n`` clamp evaluations per rack.

FastCap (PAPERS.md) observes the filled total is *piecewise linear* in
the funding level ``L``: a claim contributes ``lo`` below
``L = lo/shares``, ``L * shares`` between its breakpoints, and ``hi``
above ``L = hi/shares``.  Sorting the ``2n`` breakpoints and sweeping
once finds the exact crossing segment, and the exact level inside it,
in one ``O(n log n)`` pass (``O(n)`` when the breakpoints are
pre-sorted) — no iteration, no residual tolerance beyond float
arithmetic itself.

The semantics deliberately match :func:`proportional_targets`:

* infeasible-low pools degrade to every claim's floor (no starvation),
* infeasible-high pools give every claim its ceiling,
* otherwise every claim gets ``clamp(L * shares, lo, hi)`` for the
  unique ``L`` whose clamped sum equals the pool — claims strictly
  inside their bounds sit at the same allocation-per-share, the
  max-min/proportional-fairness invariant the property suite checks.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.minfund import Claim


def waterfill(pool_w: float, claims: Sequence[Claim]) -> dict[str, float]:
    """Exact share-proportional split of ``pool_w`` within bounds.

    Drop-in equivalent of :func:`repro.core.minfund.refill_pool` (the
    ``current`` field of each claim is ignored, as there), but solved
    by the breakpoint sweep instead of bisection.
    """
    if not claims:
        return {}
    floor_sum = sum(c.lo for c in claims)
    ceil_sum = sum(c.hi for c in claims)
    if pool_w <= floor_sum:
        return {c.label: c.lo for c in claims}
    if pool_w >= ceil_sum:
        return {c.label: c.hi for c in claims}
    level = waterfill_level(pool_w, claims)
    return {
        c.label: min(max(level * c.shares, c.lo), c.hi) for c in claims
    }


def waterfill_level(pool_w: float, claims: Sequence[Claim]) -> float:
    """The funding level whose clamped sum equals ``pool_w``.

    Pre-condition (checked by :func:`waterfill`): the pool is strictly
    between the floor sum and the ceiling sum, so a crossing exists.
    """
    # Breakpoints: at lo/shares a claim leaves its floor and joins the
    # proportional band; at hi/shares it saturates at its ceiling.
    # (claim index breaks ties deterministically; the resulting level
    # is tie-order independent because filled(L) is continuous.)
    events: list[tuple[float, int, int]] = []
    for index, claim in enumerate(claims):
        events.append((claim.lo / claim.shares, index, 0))
        events.append((claim.hi / claim.shares, index, 1))
    events.sort()
    # Between consecutive breakpoints filled(L) = fixed + L * slope:
    # ``fixed`` sums the pinned claims (still at lo, or already at hi),
    # ``slope`` the shares of claims in the proportional band.
    fixed = sum(c.lo for c in claims)
    slope = 0.0
    for point, index, kind in events:
        if slope > 0.0:
            crossing = (pool_w - fixed) / slope
            if crossing <= point:
                return crossing
        claim = claims[index]
        if kind == 0:
            fixed -= claim.lo
            slope += claim.shares
        else:
            slope -= claim.shares
            fixed += claim.hi
    # pool < ceil_sum guarantees a crossing before the sweep ends;
    # float residue can push it just past the last breakpoint.
    if slope > 0.0:  # pragma: no cover - float-residue backstop
        return (pool_w - fixed) / slope
    return events[-1][0]  # pragma: no cover - float-residue backstop
