"""Rule protocol and registry for the ``repro-lint`` analyser.

A rule is a small AST walker with a name, a human-readable *contract*
(the invariant it machine-checks), and a DESIGN.md reference printed by
the explain mode.  The :class:`RuleRegistry` is the pluggable part: the
default registry carries the six shipped rules, and tests (or future
PRs) register additional rules without touching the engine.
"""

from __future__ import annotations

import abc
import ast
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

from repro.analysis.findings import Finding, Severity
from repro.analysis.source import SourceFile

if TYPE_CHECKING:  # pragma: no cover - typing-only import cycle
    from repro.analysis.callgraph import Project


def dotted_name(node: ast.expr) -> str:
    """Best-effort dotted name of an expression (``""`` when unknown).

    ``time.time`` → ``"time.time"``; ``self._rng.random`` →
    ``"self._rng.random"``; calls/subscripts in the chain yield ``""``
    so callers never mistake a derived object for a module.
    """
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if not isinstance(cur, ast.Name):
        return ""
    parts.append(cur.id)
    return ".".join(reversed(parts))


def walk_scope(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function/module body without entering nested functions."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop(0)
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        stack[0:0] = list(ast.iter_child_nodes(node))


def function_scopes(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Every function/method definition in the file, at any depth."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


class Rule(abc.ABC):
    """One machine-checked contract."""

    #: stable identifier used in disable comments and the baseline.
    name: ClassVar[str]
    #: the invariant this rule encodes, printed by ``--explain``.
    contract: ClassVar[str]
    #: where the contract is documented.
    design_ref: ClassVar[str]
    #: one-line fix hint attached to every finding.
    hint: ClassVar[str] = ""
    default_severity: ClassVar[Severity] = Severity.ERROR

    @abc.abstractmethod
    def check(self, src: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed source file."""

    def finding(
        self,
        src: SourceFile,
        node: ast.AST,
        message: str,
        *,
        severity: Severity | None = None,
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=self.name,
            path=src.path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.default_severity,
            hint=self.hint,
            context=src.line_text(line),
        )


class ProjectRule(Rule):
    """A rule that checks the whole program, not one file.

    Project rules see every parsed source at once through a
    :class:`~repro.analysis.callgraph.Project` (symbol table + call
    graph) and may emit findings in *any* file.  Findings still flow
    through the ordinary per-file suppression and baseline machinery —
    an inline disable comment on the flagged line works exactly as for
    per-file rules.

    :meth:`check` is implemented as a single-file fallback (a project
    of one file) so direct ``rule.check(src)`` unit tests keep working;
    the engine calls :meth:`check_project` once over all sources so
    cross-module flows are actually visible.
    """

    def check(self, src: SourceFile) -> Iterator[Finding]:
        from repro.analysis.callgraph import Project

        yield from self.check_project(Project([src]))

    @abc.abstractmethod
    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Yield findings over the whole project."""


class RuleRegistry:
    """Named rule collection; iteration order is registration order."""

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self._rules: dict[str, Rule] = {}
        for rule in rules:
            self.register(rule)

    def register(self, rule: Rule) -> None:
        if rule.name in self._rules:
            raise ValueError(f"duplicate rule name {rule.name!r}")
        self._rules[rule.name] = rule

    def rule(self, name: str) -> Rule:
        try:
            return self._rules[name]
        except KeyError:
            raise KeyError(
                f"unknown rule {name!r}; known: {', '.join(self.names())}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._rules)

    def __contains__(self, name: str) -> bool:
        return name in self._rules

    def __iter__(self) -> Iterator[Rule]:
        return iter(self._rules.values())

    def file_rules(self) -> tuple[Rule, ...]:
        """Rules that analyse one file at a time."""
        return tuple(
            rule for rule in self if not isinstance(rule, ProjectRule)
        )

    def project_rules(self) -> tuple[ProjectRule, ...]:
        """Rules that analyse the whole program at once."""
        return tuple(
            rule for rule in self if isinstance(rule, ProjectRule)
        )

    def run(self, src: SourceFile) -> list[Finding]:
        """All rules over one file, ordered by location then rule.

        Project rules run in single-file-fallback mode here; the
        engine runs them once over the whole source set instead.
        """
        found: list[Finding] = []
        for rule in self:
            found.extend(rule.check(src))
        found.sort(key=lambda f: (f.line, f.col, f.rule, f.message))
        return found


def default_registry() -> RuleRegistry:
    """The nine shipped contract rules."""
    from repro.analysis.rules import all_rules

    return RuleRegistry(all_rules())
