"""Cache-purity rule: cache keys derive from config, nothing else.

``experiments/cache.py`` promises that a cache key is a stable SHA-256
over a run's *complete, config-derived* inputs — that is what makes a
hit interchangeable with a fresh simulation.  This rule guards the
key-building functions (anything that feeds ``hashlib`` or is named
``*cache_key*``):

* no ambient inputs: environment variables, working directory, host
  name, wall clock, process randomness, uuids;
* no ``hash()``/``id()`` — both vary per process (PYTHONHASHSEED /
  allocator) and would silently shard the cache;
* serialization feeding the digest must be order-stable:
  ``json.dumps`` requires ``sort_keys=True``, and set iteration must
  be wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name, walk_scope
from repro.analysis.source import SourceFile

#: ambient-state reads banned inside key builders (dotted prefixes).
#: ``os.environ`` is handled separately as an attribute so that
#: ``os.environ.get`` and ``os.environ[...]`` each yield one finding.
AMBIENT_PREFIXES = (
    "os.getenv", "os.getcwd", "os.urandom", "os.getpid",
    "time.", "random.", "uuid.", "socket.", "getpass.",
)

#: process-varying builtins banned inside key builders.
UNSTABLE_BUILTINS = frozenset({"hash", "id"})

HASHLIB_PREFIX = "hashlib."


def _is_key_builder(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    if "cache_key" in fn.name:
        return True
    for node in walk_scope(fn):
        if isinstance(node, ast.Call) and dotted_name(node.func).startswith(
            HASHLIB_PREFIX
        ):
            return True
    return False


def _sorted_wrapped_args(fn: ast.AST) -> set[int]:
    wrapped: set[int] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for arg in node.args:
                wrapped.add(id(arg))
    return wrapped


class CachePurityRule(Rule):
    name = "cache-purity"
    contract = (
        "A cache key is a pure function of the run's config: functions "
        "that build hashlib digests (or are named *cache_key*) must not "
        "read ambient state (os.environ, cwd, time, random, uuid, "
        "sockets), must not fold in hash() or id() (both vary per "
        "process), and must serialize order-stably — json.dumps with "
        "sort_keys=True, sets only through sorted().  Anything else "
        "makes equal configs miss (wasted simulation) or unequal "
        "configs collide (silently wrong results)."
    )
    design_ref = "DESIGN.md §10.6"
    hint = (
        "derive every hashed byte from the config object; sort all "
        "serialized collections"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for fn in ast.walk(src.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _is_key_builder(fn):
                continue
            wrapped = _sorted_wrapped_args(fn)
            for node in walk_scope(fn):
                if isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    if any(
                        dotted == p.rstrip(".") or dotted.startswith(p)
                        for p in AMBIENT_PREFIXES
                    ):
                        yield self.finding(
                            src, node,
                            f"cache-key builder '{fn.name}' reads ambient "
                            f"state via {dotted}() — keys must derive "
                            "from the config alone",
                        )
                    elif (
                        isinstance(node.func, ast.Name)
                        and node.func.id in UNSTABLE_BUILTINS
                    ):
                        yield self.finding(
                            src, node,
                            f"{node.func.id}() varies per process "
                            f"(PYTHONHASHSEED/allocator) — a cache key "
                            "built from it silently shards the cache",
                        )
                    elif dotted == "json.dumps":
                        sort_kw = next(
                            (kw for kw in node.keywords
                             if kw.arg == "sort_keys"), None,
                        )
                        sorts = (
                            sort_kw is not None
                            and isinstance(sort_kw.value, ast.Constant)
                            and sort_kw.value.value is True
                        )
                        if not sorts:
                            yield self.finding(
                                src, node,
                                "json.dumps feeding a cache key without "
                                "sort_keys=True — dict ordering would "
                                "leak into the digest",
                            )
                    elif (
                        isinstance(node.func, ast.Name)
                        and node.func.id == "set"
                        and id(node) not in wrapped
                    ):
                        yield self.finding(
                            src, node,
                            "set() in a cache-key builder iterates in "
                            "PYTHONHASHSEED order — wrap it in sorted(...)",
                        )
                elif isinstance(node, (ast.Set, ast.SetComp)):
                    if id(node) not in wrapped:
                        yield self.finding(
                            src, node,
                            "set literal in a cache-key builder iterates "
                            "in PYTHONHASHSEED order — wrap it in "
                            "sorted(...)",
                        )
                elif isinstance(node, ast.Attribute):
                    if dotted_name(node) == "os.environ":
                        yield self.finding(
                            src, node,
                            f"cache-key builder '{fn.name}' reads "
                            "os.environ — keys must derive from the "
                            "config alone",
                        )
