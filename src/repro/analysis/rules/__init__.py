"""The shipped ``repro-lint`` contract rules."""

from __future__ import annotations

from repro.analysis.registry import Rule
from repro.analysis.rules.cache_purity import CachePurityRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.fail_safety import FailSafetyRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.kernel_purity import KernelPurityRule
from repro.analysis.rules.rng_provenance import RngProvenanceRule
from repro.analysis.rules.shared_state import SharedStateRaceRule
from repro.analysis.rules.snapshot_completeness import (
    SnapshotCompletenessRule,
)
from repro.analysis.rules.unit_safety import UnitSafetyRule

__all__ = ["all_rules"]


def all_rules() -> tuple[Rule, ...]:
    """Fresh instances of every shipped rule, in documentation order."""
    return (
        DeterminismRule(),
        UnitSafetyRule(),
        FailSafetyRule(),
        FloatEqualityRule(),
        CachePurityRule(),
        KernelPurityRule(),
        SharedStateRaceRule(),
        RngProvenanceRule(),
        SnapshotCompletenessRule(),
    )
