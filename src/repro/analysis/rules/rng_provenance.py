"""rng-provenance: every RNG traces to a config/scenario seed.

Supersedes the per-file RNG heuristic that shipped inside the
determinism rule: the syntactic checks (process-global ``random.*``
calls, ``random.Random()`` with no argument, ``random.SystemRandom``)
moved here unchanged, and the new interprocedural half
(:mod:`repro.analysis.dataflow`) traces seed values across call
boundaries — so ``make_rng(time.time_ns())`` is flagged at the call
site even though the ``random.Random(seed)`` it feeds looks innocent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import SeedAnalysis
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, dotted_name
from repro.analysis.source import SourceFile

#: module-level ``random`` functions driven by the process-global,
#: implicitly-seeded RNG.
GLOBAL_RANDOM_CALLS = frozenset(
    f"random.{name}" for name in (
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "expovariate",
        "betavariate", "triangular", "seed", "getrandbits", "vonmisesvariate",
    )
)


class RngProvenanceRule(ProjectRule):
    name = "rng-provenance"
    contract = (
        "Randomness always flows through a random.Random(seed) instance "
        "whose seed traces — across call boundaries — to a config, "
        "scenario, or incarnation seed owned by the component that "
        "replays it.  No code may draw from the process-global random "
        "module, construct random.Random() without a seed, or use OS "
        "entropy (random.SystemRandom); and no call chain may feed an "
        "RNG seed parameter a value that does not derive from a seed "
        "source."
    )
    design_ref = "DESIGN.md §15.3"
    hint = (
        "thread an explicit seed from the config/scenario (salt derived "
        "RNGs: random.Random(config.seed ^ SALT)); never draw from the "
        "global random module or OS entropy"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for src in project.sources:
            yield from self._syntactic(src)
        analysis = SeedAnalysis(project)
        analysis.run()
        for event in analysis.events:
            src = project.by_path[event.path]
            yield self.finding(src, event.node, event.message)

    def _syntactic(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            if dotted in GLOBAL_RANDOM_CALLS:
                yield self.finding(
                    src, node,
                    f"call to process-global {dotted}() — use a seeded "
                    "random.Random(seed) instance so runs replay",
                )
            elif dotted == "random.Random" and not node.args and not any(
                kw.arg in ("x", "seed") for kw in node.keywords
            ):
                yield self.finding(
                    src, node,
                    "random.Random() without a seed falls back to OS "
                    "entropy — pass an explicit seed",
                )
            elif dotted in ("random.SystemRandom", "secrets.SystemRandom"):
                yield self.finding(
                    src, node,
                    f"{dotted}() draws OS entropy and can never replay — "
                    "use a seeded random.Random(seed)",
                )
