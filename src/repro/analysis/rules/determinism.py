"""Determinism rule: no wall-clock or filesystem-order reads.

The reproduction's core contracts — byte-identical serial/parallel
steppers, content-addressed result caching, seeded fault replay — all
assume a simulated run is a pure function of its config.  Wall-clock
and filesystem-order reads break that silently: results still look
plausible, they just stop being reproducible.

RNG checks used to live here as per-file heuristics; they are now
owned by the interprocedural ``rng-provenance`` rule
(:mod:`repro.analysis.rules.rng_provenance`), which traces seeds
across call boundaries instead of guessing from one file.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name
from repro.analysis.source import SourceFile

#: directories where simulated results are produced or aggregated;
#: wall-clock and filesystem-order reads are banned here.
DETERMINISTIC_SCOPES = ("/sim/", "/cluster/", "/fleet/", "/experiments/")

#: exact ``time`` module calls that read the host clock.
WALL_CLOCK_CALLS = frozenset(
    f"time.{name}" for name in (
        "time", "monotonic", "perf_counter", "process_time",
        "time_ns", "monotonic_ns", "perf_counter_ns", "clock_gettime",
    )
)

#: ``datetime``-style constructors reading the host clock.
DATE_ATTRS = frozenset({"now", "utcnow", "today"})

#: filesystem enumerations whose order is platform-dependent.
FS_ORDER_CALLS = frozenset({
    "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
})


def _sorted_wrapped(tree: ast.Module) -> set[int]:
    """ids of call nodes appearing directly inside ``sorted(...)``."""
    wrapped: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "sorted"
        ):
            for arg in node.args:
                if isinstance(arg, ast.Call):
                    wrapped.add(id(arg))
    return wrapped


class DeterminismRule(Rule):
    name = "determinism"
    contract = (
        "Simulated results are pure functions of their config: code under "
        "sim/, cluster/, fleet/, and experiments/ must not read the host "
        "clock (time.time & friends, datetime.now) or enumerate the "
        "filesystem in platform order (os.listdir, glob) without sorting. "
        "RNG provenance is enforced by the rng-provenance rule."
    )
    design_ref = "DESIGN.md §10.2"
    hint = (
        "pass timestamps in as config; "
        "wrap filesystem listings in sorted(...)"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        scoped = any(seg in f"/{src.path}" for seg in DETERMINISTIC_SCOPES)
        wrapped = _sorted_wrapped(src.tree) if scoped else set()
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if not dotted:
                continue
            if scoped and dotted in WALL_CLOCK_CALLS:
                yield self.finding(
                    src, node,
                    f"wall-clock read {dotted}() in a deterministic scope "
                    "(sim/cluster/experiments) — results must not depend "
                    "on host time",
                )
            elif (
                scoped
                and "." in dotted
                and dotted.rsplit(".", 1)[1] in DATE_ATTRS
                and "date" in dotted.rsplit(".", 1)[0].lower()
            ):
                yield self.finding(
                    src, node,
                    f"wall-clock read {dotted}() in a deterministic scope "
                    "(sim/cluster/experiments)",
                )
            elif (
                scoped
                and dotted in FS_ORDER_CALLS
                and id(node) not in wrapped
            ):
                yield self.finding(
                    src, node,
                    f"{dotted}() enumerates the filesystem in platform "
                    "order — wrap it in sorted(...)",
                )
