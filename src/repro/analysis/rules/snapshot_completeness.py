"""snapshot-completeness: snapshot/restore pairs cover mutable state.

Crash recovery (journal redo, the batched engine's RAPL rollback) is
exact only if a class's snapshot captures *every* attribute its other
methods mutate.  A field added to ``observe()`` but forgotten in
``snapshot()`` replays silently wrong — the bug class PR 6's arbiter
snapshots and PR 7's ``control_state`` rollback flirted with.

The rule pairs methods structurally: ``restore`` partners ``snapshot``
and ``restore_X`` partners ``X`` (so ``control_state`` /
``restore_control_state`` is a pair).  Mutable attributes are
``self.attr`` targets assigned or augmented outside ``__init__`` (and
outside the pair methods themselves), plus attributes mutated in place
anywhere outside ``__init__`` — subscript assignment or a known
mutator method call.  An attribute is *covered* when either side of
the pair mentions it: read by the snapshot method or (re)assigned by
the restore method — restore-side recomputation
(``self._cap_sum = sum(...)``) counts, by design.

**Soundness limits**: attributes written via ``setattr`` or mutated
through an alias (``d = self._caps; d[k] = v``) are invisible; a class
whose state is intentionally partial (a rollback window narrower than
the full object) suppresses the finding with a reason saying *why* the
uncovered fields cannot change inside the window.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name
from repro.analysis.source import SourceFile

#: in-place mutator methods on the builtin containers.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
})

#: methods whose writes are lifecycle, not runtime mutation.
CONSTRUCTOR_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


class SnapshotCompletenessRule(Rule):
    name = "snapshot-completeness"
    contract = (
        "Every class with a snapshot/restore pair (snapshot+restore, or "
        "X+restore_X like control_state/restore_control_state) covers "
        "all of its mutable attributes: any self.<attr> assigned or "
        "mutated outside __init__ must be read by the snapshot method "
        "or assigned by the restore method, or crash replay and "
        "rollback diverge from the run they recover."
    )
    design_ref = "DESIGN.md §15.4"
    hint = (
        "add the attribute to the snapshot dict and restore it (or "
        "recompute it in restore); suppress only with a reason proving "
        "it cannot change inside the snapshot/restore window"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(src, node)

    def _check_class(
        self, src: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        pairs = _snapshot_pairs(methods)
        if not pairs:
            return
        pair_members = {name for pair in pairs for name in pair}
        mutable = self._mutable_attrs(methods, pair_members)
        for snap_name, restore_name in pairs:
            covered = _mentioned_attrs(methods[snap_name]) | _mentioned_attrs(
                methods[restore_name]
            )
            missing = sorted(set(mutable) - covered)
            for attr in missing:
                yield self.finding(
                    src, methods[snap_name],
                    f"{cls.name}.{snap_name}()/{restore_name}() pair "
                    f"does not cover mutable attribute 'self.{attr}' "
                    f"(mutated in {mutable[attr]}()) — recovery through "
                    "this snapshot diverges from the run it replays",
                )

    def _mutable_attrs(
        self,
        methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
        pair_members: set[str],
    ) -> dict[str, str]:
        """attr -> name of a method that mutates it at runtime."""
        mutable: dict[str, str] = {}

        def note(attr: str, method: str) -> None:
            mutable.setdefault(attr, method)

        for name, method in methods.items():
            if name in CONSTRUCTOR_METHODS or name in pair_members:
                continue
            for node in ast.walk(method):
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        for attr in _target_self_attrs(target):
                            note(attr, name)
                elif isinstance(node, ast.Call):
                    dotted = dotted_name(node.func)
                    parts = dotted.split(".") if dotted else []
                    if (
                        len(parts) == 3
                        and parts[0] == "self"
                        and parts[2] in MUTATOR_METHODS
                    ):
                        note(parts[1], name)
        return mutable


def _snapshot_pairs(
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
) -> list[tuple[str, str]]:
    """(snapshot method, restore method) name pairs in this class."""
    pairs: list[tuple[str, str]] = []
    for name in sorted(methods):
        if name == "restore" and "snapshot" in methods:
            pairs.append(("snapshot", "restore"))
        elif name.startswith("restore_"):
            partner = name[len("restore_"):]
            if partner in methods:
                pairs.append((partner, name))
    return pairs


def _target_self_attrs(target: ast.expr) -> list[str]:
    """Attributes of ``self`` this assignment target writes or mutates.

    ``self.x = v`` and ``self.x[k] = v`` both yield ``x``; deeper
    chains (``self.x.y = v``) mutate a sub-object the snapshot either
    captures wholesale via ``self.x`` or not at all — yield ``x`` so
    coverage is checked at the attribute the class owns.
    """
    cur = target
    while isinstance(cur, ast.Subscript):
        cur = cur.value
    attrs: list[str] = []
    if isinstance(cur, (ast.Tuple, ast.List)):
        for element in cur.elts:
            attrs.extend(_target_self_attrs(element))
        return attrs
    dotted = dotted_name(cur)
    if dotted and dotted.startswith("self.") and dotted.count(".") >= 1:
        attrs.append(dotted.split(".")[1])
    return attrs


def _mentioned_attrs(
    method: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Every ``self.<attr>`` the method touches, in any context."""
    out: set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            out.add(node.attr)
    return out
