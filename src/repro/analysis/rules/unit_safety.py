"""Unit-safety rule: no arithmetic that mixes watts, MHz, shares, IPS…

``repro.units`` documents the library's unit conventions (MHz
frequencies, watt powers, second/tick times, micro-joule counters) and
centralises the conversions; the codebase encodes units in name
suffixes (``limit_w``, ``freq_mhz``, ``duration_s``, ``shares``).  This
rule makes the convention machine-checked: it infers a unit for every
name from its suffix, traces units through simple assignments and the
``units.py`` converter functions, and flags additive arithmetic,
comparisons, and keyword-argument bindings that mix two different
units.  Multiplication and division legitimately combine units and are
left alone.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name, walk_scope
from repro.analysis.source import SourceFile

#: name-suffix → unit.  Longest suffix wins; names are lowercased first.
UNIT_SUFFIXES: tuple[tuple[str, str], ...] = (
    ("_watts", "W"),
    ("_w", "W"),
    ("_mhz", "MHz"),
    ("_khz", "kHz"),
    ("_ghz", "GHz"),
    ("_ips", "IPS"),
    ("_seconds", "s"),
    ("_s", "s"),
    ("_ticks", "ticks"),
    ("_joules", "J"),
    ("_uj", "uJ"),
    ("_j", "J"),
    ("_fraction", "frac"),
    ("_frac", "frac"),
    ("shares", "shares"),
)

#: ``units.py`` converters: callee → (argument unit, result unit).
CONVERTERS: dict[str, tuple[str, str]] = {
    "ghz": ("GHz", "MHz"),
    "mhz_to_ghz": ("MHz", "GHz"),
    "mhz_to_khz": ("MHz", "kHz"),
    "khz_to_mhz": ("kHz", "MHz"),
    "joules_to_uj": ("J", "uJ"),
    "uj_to_joules": ("uJ", "J"),
}

#: calls that return their first argument's unit unchanged.
UNIT_PRESERVING = frozenset({"clamp", "abs", "float", "round", "quantize_down",
                             "quantize_nearest"})

_COMPARISONS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)


def unit_of_name(name: str) -> str | None:
    """Unit implied by a name's suffix convention, or None."""
    low = name.lower()
    for suffix, unit in UNIT_SUFFIXES:
        if low.endswith(suffix):
            return unit
    return None


class _Scope:
    """Name → unit environment for one function (or the module body)."""

    def __init__(self, node: ast.AST) -> None:
        self.env: dict[str, str | None] = {}
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            ):
                self.env[arg.arg] = unit_of_name(arg.arg)
        # pre-pass: record single-target assignments in lexical order so
        # a name assigned an unknown-unit value shadows its suffix.
        for child in walk_scope(node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(child, ast.Assign) and len(child.targets) == 1:
                target, value = child.targets[0], child.value
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                target, value = child.target, child.value
            if isinstance(target, ast.Name) and value is not None:
                # a unitless value (literal, unknown call) leaves the
                # suffix convention in force; a *different* unit makes
                # the name ambiguous and stops tracking.
                inferred = (
                    self.infer(value, collect=None)
                    or unit_of_name(target.id)
                )
                if target.id in self.env:
                    old = self.env[target.id]
                    self.env[target.id] = (
                        inferred if old in (None, inferred) else None
                    )
                else:
                    self.env[target.id] = inferred

    def infer(
        self,
        node: ast.expr,
        collect: list[tuple[ast.expr, str, str]] | None,
    ) -> str | None:
        """Unit of an expression; mismatches appended to ``collect``
        as ``(node, left_unit, right_unit)``."""
        if isinstance(node, ast.Name):
            return self.env.get(node.id, unit_of_name(node.id))
        if isinstance(node, ast.Attribute):
            return unit_of_name(node.attr)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand, collect)
        if isinstance(node, ast.IfExp):
            a = self.infer(node.body, collect)
            b = self.infer(node.orelse, collect)
            return a if a == b else None
        if isinstance(node, ast.BinOp):
            left = self.infer(node.left, collect)
            right = self.infer(node.right, collect)
            if isinstance(node.op, (ast.Add, ast.Sub)):
                if left and right and left != right:
                    if collect is not None:
                        collect.append((node, left, right))
                    return None
                return left if left == right else (left or right)
            return None  # *, /, //, %, ** combine units legitimately
        if isinstance(node, ast.Call):
            callee = dotted_name(node.func).rsplit(".", 1)[-1]
            if callee in CONVERTERS and node.args:
                expected, result = CONVERTERS[callee]
                got = self.infer(node.args[0], collect)
                if got and got != expected and collect is not None:
                    collect.append((node, got, f"{expected} (arg of "
                                               f"{callee})"))
                return result
            if callee in UNIT_PRESERVING and node.args:
                return self.infer(node.args[0], collect)
            if callee in ("min", "max"):
                units = {self.infer(a, collect) for a in node.args}
                units.discard(None)
                if len(units) == 1:
                    return units.pop()
            return None
        return None


class UnitSafetyRule(Rule):
    name = "unit-safety"
    contract = (
        "Quantities carry their unit in their name suffix (_w, _mhz, "
        "_khz, _ghz, _ips, _s, _ticks, _j, _uj, shares) and may only be "
        "added, subtracted, compared, or bound to a keyword argument "
        "when the units agree; conversions go through the repro.units "
        "helpers, and a units.py converter must be fed the unit it "
        "documents.  One watt-vs-MHz slip in the daemon's control loop "
        "silently corrupts power delivery, so the convention is "
        "machine-checked rather than reviewer-checked."
    )
    design_ref = "DESIGN.md §10.3"
    hint = "convert via repro.units helpers or fix the mis-suffixed name"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        scopes: list[ast.AST] = [src.tree]
        scopes.extend(
            n for n in ast.walk(src.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope_node in scopes:
            scope = _Scope(scope_node)
            mismatches: list[tuple[ast.expr, str, str]] = []
            reported: set[int] = set()
            for node in walk_scope(scope_node):
                if isinstance(node, ast.BinOp) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    scope.infer(node, mismatches)
                elif isinstance(node, ast.Compare):
                    left = node.left
                    for op, right in zip(node.ops, node.comparators):
                        if isinstance(op, _COMPARISONS):
                            lu = scope.infer(left, mismatches)
                            ru = scope.infer(right, mismatches)
                            if lu and ru and lu != ru:
                                mismatches.append((node, lu, ru))
                        left = right
                elif isinstance(node, ast.Call):
                    # converter fed the wrong unit (positional arg)
                    callee = dotted_name(node.func).rsplit(".", 1)[-1]
                    if callee in CONVERTERS:
                        scope.infer(node, mismatches)
                    for kw in node.keywords:
                        if kw.arg is None:
                            continue
                        expected = unit_of_name(kw.arg)
                        got = scope.infer(kw.value, mismatches)
                        if expected and got and expected != got:
                            mismatches.append(
                                (kw.value, got,
                                 f"{expected} (keyword {kw.arg}=)")
                            )
            for expr, left_u, right_u in mismatches:
                if id(expr) in reported:
                    continue
                reported.add(id(expr))
                yield self.finding(
                    src, expr,
                    f"arithmetic/comparison mixes units: {left_u} vs "
                    f"{right_u}",
                )
