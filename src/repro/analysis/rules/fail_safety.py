"""Daemon fail-safety rule: contained errors, bounded retries, parking.

PR 1's hardening contract: the power daemon never dies on a flaky MSR,
never retries forever, and never abandons a core in an unprogrammable
state without parking it.  This rule checks the statically-checkable
shadow of that contract:

* no bare ``except:`` anywhere (it swallows ``KeyboardInterrupt`` and
  hides the containment counters the health record audits);
* no ``except Exception`` that silently continues — broad catches must
  re-raise (worker boundaries that ship the exception elsewhere carry
  an explicit suppression);
* no unbounded retry loop (``while True`` whose only exit from a failed
  try is ``continue``);
* in ``repro/core/``, every MSR/cpufreq write sits inside a ``try``
  that catches ``MSRError`` (bounded-retry containment), and any class
  that programs MSRs must also call a park/quarantine handler — a write
  path with no fail-safe reachable from it is exactly the bug that
  leaves a core burning at a stale frequency;
* in ``repro/cluster/`` and ``repro/fleet/``, the same containment
  contract applies to the control plane: every ``.send(...)`` either
  goes through the envelope/sequence-guarded transport layer or sits
  inside a ``try`` that catches the pipe failure modes — a raw
  unguarded send is the cluster analog of an uncontained MSR write (a
  cap "applied" that nobody enforces).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name
from repro.analysis.source import SourceFile

#: layer whose write paths must be containment-wrapped.
DAEMON_SCOPE = "/core/"

#: layers whose control-plane sends must be transport- or containment-
#: wrapped; the transport module itself is the designated raw layer.
#: The fleet arbitration layer rides the same control plane, so the
#: same contract applies there.
CLUSTER_SCOPES = ("/cluster/", "/fleet/")
TRANSPORT_MODULE = "transport.py"

#: receiver-name fragments marking the guarded envelope path.
TRANSPORT_FRAGMENT = "transport"

#: exception names accepted as pipe/send containment handlers.
SEND_HANDLERS = frozenset({
    "BrokenPipeError",
    "ConnectionError",
    "EOFError",
    "OSError",
    "ReproError",
    "SimulationError",
})

#: attribute calls that program hardware through the MSR proxy.
WRITE_ATTRS = frozenset({"set_speed_mhz", "set_speed_khz"})
RAW_WRITE_BASES = ("msr",)

#: exception names accepted as MSR containment handlers.
MSR_HANDLERS = frozenset({"MSRError", "ReproError"})

#: method-name fragments that mark a fail-safe (park/quarantine) path.
FAILSAFE_FRAGMENTS = ("park", "quarantine")


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    """Leaf names of the exception types a handler catches."""
    names: set[str] = set()
    def add(expr: ast.expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Tuple):
            for elt in expr.elts:
                add(elt)
        else:
            dotted = dotted_name(expr)
            if dotted:
                names.add(dotted.rsplit(".", 1)[-1])
    add(handler.type)
    return names


def _contains(node: ast.AST, kind: type[ast.AST]) -> bool:
    return any(isinstance(child, kind) for child in ast.walk(node))


def _is_msr_write(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    if node.func.attr in WRITE_ATTRS:
        return True
    if node.func.attr == "write":
        base = dotted_name(node.func.value)
        return base.rsplit(".", 1)[-1] in RAW_WRITE_BASES
    return False


class FailSafetyRule(Rule):
    name = "fail-safety"
    contract = (
        "The daemon's control loop survives hardware and telemetry "
        "faults by construction: exceptions are caught narrowly and "
        "counted, retries are bounded, and in repro/core/ every "
        "MSR-proxy write is wrapped in MSRError containment inside a "
        "class that can park or quarantine the core it failed to "
        "program.  Bare excepts, silent broad catches, and while-True "
        "retry loops defeat the health record's audit trail.  In "
        "repro/cluster/ the analog holds for the control plane: sends "
        "travel the sequence-guarded transport or catch their pipe "
        "failure modes."
    )
    design_ref = "DESIGN.md §10.4"
    hint = (
        "catch MSRError/ReproError narrowly, bound the retry, and park "
        "or quarantine what you cannot program; route cluster messages "
        "through the transport or contain the pipe errors"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        yield from self._check_handlers(src)
        yield from self._check_retry_loops(src)
        if DAEMON_SCOPE in f"/{src.path}":
            yield from self._check_write_containment(src)
        if any(
            scope in f"/{src.path}" for scope in CLUSTER_SCOPES
        ) and not src.path.endswith(TRANSPORT_MODULE):
            yield from self._check_send_containment(src)

    # -- broad/bare handlers ------------------------------------------------------

    def _check_handlers(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    src, node,
                    "bare 'except:' swallows everything including "
                    "KeyboardInterrupt — catch the specific ReproError "
                    "subclass and count the containment",
                )
                continue
            caught = _handler_names(node)
            if caught & {"Exception", "BaseException"} and not _contains(
                node, ast.Raise
            ):
                yield self.finding(
                    src, node,
                    "broad 'except Exception' that never re-raises — "
                    "contain the specific error or ship it onward "
                    "explicitly",
                )

    # -- unbounded retries --------------------------------------------------------

    def _check_retry_loops(self, src: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.While):
                continue
            test = node.test
            if not (isinstance(test, ast.Constant) and test.value is True):
                continue
            if _contains(node, ast.Break):
                continue
            for child in ast.walk(node):
                if isinstance(child, ast.ExceptHandler) and _contains(
                    child, ast.Continue
                ):
                    yield self.finding(
                        src, node,
                        "unbounded retry: 'while True' whose failure "
                        "path only continues — bound the attempts like "
                        "ResilienceConfig.max_write_retries and fail-safe "
                        "afterwards",
                    )
                    break

    # -- MSR write containment ----------------------------------------------------

    def _check_write_containment(self, src: SourceFile) -> Iterator[Finding]:
        # map each MSR-write call to its enclosing try stack, lexically
        protected: set[int] = set()
        writes: list[ast.Call] = []

        def walk(node: ast.AST, tries: tuple[ast.Try, ...]) -> None:
            if isinstance(node, ast.Call) and _is_msr_write(node):
                writes.append(node)
                for enclosing in tries:
                    for handler in enclosing.handlers:
                        if _handler_names(handler) & MSR_HANDLERS:
                            protected.add(id(node))
            for child in ast.iter_child_nodes(node):
                if isinstance(node, ast.Try) and child in node.body:
                    walk(child, tries + (node,))
                else:
                    walk(child, tries)

        walk(src.tree, ())
        for call in writes:
            if id(call) not in protected:
                yield self.finding(
                    src, call,
                    "MSR/cpufreq write outside MSRError containment — "
                    "wrap it in the bounded-retry pattern so an abandoned "
                    "write can park the core",
                )

        # classes that program MSRs must have a park/quarantine path
        yield from self._check_class_failsafes(src)

    # -- cluster send containment -------------------------------------------------

    def _check_send_containment(self, src: SourceFile) -> Iterator[Finding]:
        """Control-plane sends: guarded transport or contained pipes.

        A ``.send(...)`` whose receiver is the transport layer travels
        epoch-sequenced envelopes (validated, deduplicated, fault-
        injected deterministically); any other send is a raw pipe write
        and must sit inside a ``try`` that catches the pipe failure
        modes, mirroring the MSR-write containment one layer down.
        """
        unprotected: list[ast.Call] = []

        def walk(node: ast.AST, tries: tuple[ast.Try, ...]) -> None:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
            ):
                base = dotted_name(node.func.value).rsplit(".", 1)[-1]
                contained = TRANSPORT_FRAGMENT in base or any(
                    _handler_names(handler) & SEND_HANDLERS
                    for enclosing in tries
                    for handler in enclosing.handlers
                )
                if not contained:
                    unprotected.append(node)
            for child in ast.iter_child_nodes(node):
                if isinstance(node, ast.Try) and child in node.body:
                    walk(child, tries + (node,))
                else:
                    walk(child, tries)

        walk(src.tree, ())
        for call in unprotected:
            yield self.finding(
                src, call,
                "control-plane send outside the guarded transport and "
                "outside pipe-error containment — route it through the "
                "envelope layer or catch the pipe failure modes so a "
                "lost message degrades to a lease step-down, not a "
                "crash",
            )

    def _check_class_failsafes(self, src: SourceFile) -> Iterator[Finding]:
        for cls in ast.walk(src.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            cls_writes = [
                n for n in ast.walk(cls)
                if isinstance(n, ast.Call) and _is_msr_write(n)
            ]
            if not cls_writes:
                continue
            has_failsafe = any(
                isinstance(n, ast.Call)
                and isinstance(n.func, ast.Attribute)
                and any(f in n.func.attr for f in FAILSAFE_FRAGMENTS)
                for n in ast.walk(cls)
            )
            if not has_failsafe:
                yield self.finding(
                    src, cls_writes[0],
                    f"class {cls.name} programs MSRs but has no "
                    "park/quarantine fail-safe reachable from the write "
                    "path — an unprogrammable core must not keep burning "
                    "at its stale frequency",
                )
