"""shared-state-race: no module-global writes in fork-worker code.

The parallel steppers (``cluster/stepper.py``) and the experiment pool
(``experiments/parallel.py``) fork workers and promise byte-identical
results to a serial run.  That promise holds because every shared
decision is made in the parent; a worker that writes module-level
state is mutating a *copy* the parent never sees — the canonical
silent-divergence bug (results differ by worker layout, caches go
stale per-process, counters under-count).

The rule finds fork-worker entry points structurally
(:meth:`~repro.analysis.callgraph.Project.worker_roots`), walks the
call graph closure, and flags, inside any reachable function:

* rebinding a module-level name (``global X`` + assignment),
* mutating a module-level object in place (subscript/attribute
  assignment, augmented assignment, or a known mutator method call on
  a module-level binding),
* writes to ``os.environ`` (process state that dies with the worker).

**Soundness limits**: reachability over-approximates through
unknown-receiver method calls, and supervisor-owned *objects* passed
into workers are not tracked (escape analysis is out of scope) — the
module-global criterion is the precise, enforceable core of the
contract.  Read-only access to module globals is always fine.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.callgraph import FunctionInfo, ModuleInfo, Project
from repro.analysis.findings import Finding
from repro.analysis.registry import ProjectRule, dotted_name

#: in-place mutator methods on the builtin containers.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
})


class SharedStateRaceRule(ProjectRule):
    name = "shared-state-race"
    contract = (
        "Fork workers never write shared state: code reachable from a "
        "fork-worker entry point (a Process target or a pool-dispatched "
        "callable) must not rebind or mutate module-level bindings or "
        "os.environ — worker-side writes land in a forked copy the "
        "parent never observes, so serial and parallel runs silently "
        "diverge.  All cross-worker state flows through the parent."
    )
    design_ref = "DESIGN.md §15.2"
    hint = (
        "return results to the parent over the worker's pipe/pool "
        "protocol instead of writing shared state; per-process caches "
        "need a disable comment explaining why divergence is impossible"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        roots = project.worker_roots()
        if not roots:
            return
        chains = project.reachable_from(roots)
        for qualname in sorted(chains):
            func = project.functions.get(qualname)
            if func is None:
                continue
            mod = project.modules[func.module]
            origin = self._origin(chains[qualname], project)
            yield from self._check_function(func, mod, origin)

    @staticmethod
    def _origin(chain: tuple[str, ...], project: Project) -> str:
        root = project.functions[chain[0]]
        where = f"{root.name}() in {root.module}"
        if len(chain) <= 1:
            return f"fork-worker entry {where}"
        hops = " -> ".join(q.rsplit(".", 1)[-1] for q in chain)
        return f"fork worker {where} via {hops}"

    def _check_function(
        self, func: FunctionInfo, mod: ModuleInfo, origin: str
    ) -> Iterator[Finding]:
        local = _local_names(func.node)
        declared_global = _global_decls(func.node)

        def is_module_binding(name: str) -> bool:
            if name in declared_global:
                # global X + write rebinds (or creates) the module name
                return True
            return name not in local and name in mod.global_names

        for node in ast.walk(func.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    yield from self._check_target(
                        func, target, is_module_binding, origin,
                        augmented=isinstance(node, ast.AugAssign),
                    )
            elif isinstance(node, ast.Call):
                yield from self._check_mutator_call(
                    func, node, is_module_binding, origin
                )

    def _check_target(
        self,
        func: FunctionInfo,
        target: ast.expr,
        is_module_binding: Callable[[str], bool],
        origin: str,
        *,
        augmented: bool,
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Name):
            if is_module_binding(target.id):
                verb = "augments" if augmented else "rebinds"
                yield self.finding(
                    func.src, target,
                    f"{verb} module-level {target.id!r} in code "
                    f"reachable from {origin} — the write lands in the "
                    "forked copy and never reaches the parent",
                )
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            base: ast.expr = target.value
            while isinstance(base, ast.Subscript):
                base = base.value
            root = dotted_name(base)
            if root == "os.environ" or (
                root and "." not in root and is_module_binding(root)
            ):
                label = root if root == "os.environ" else f"{root!r}"
                yield self.finding(
                    func.src, target,
                    f"mutates module-level {label} in code reachable "
                    f"from {origin} — the write lands in the forked "
                    "copy and never reaches the parent",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._check_target(
                    func, element, is_module_binding, origin,
                    augmented=augmented,
                )

    def _check_mutator_call(
        self,
        func: FunctionInfo,
        call: ast.Call,
        is_module_binding: Callable[[str], bool],
        origin: str,
    ) -> Iterator[Finding]:
        dotted = dotted_name(call.func)
        if not dotted or "." not in dotted:
            return
        receiver, method = dotted.rsplit(".", 1)
        if method not in MUTATOR_METHODS and receiver != "os.environ":
            return
        if receiver == "os.environ" and method in (
            "update", "pop", "setdefault", "clear", "popitem",
        ):
            yield self.finding(
                func.src, call,
                f"mutates os.environ via .{method}() in code reachable "
                f"from {origin} — environment writes die with the worker",
            )
            return
        if "." in receiver:
            return  # attribute chains: object state, not a module global
        if method in MUTATOR_METHODS and is_module_binding(receiver):
            yield self.finding(
                func.src, call,
                f"mutates module-level {receiver!r} via .{method}() in "
                f"code reachable from {origin} — the write lands in the "
                "forked copy and never reaches the parent",
            )


def _local_names(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    """Names bound locally in the function (shadowing module globals)."""
    args = node.args
    local: set[str] = {
        a.arg for a in (
            *args.posonlyargs, *args.args, *args.kwonlyargs,
        )
    }
    if args.vararg is not None:
        local.add(args.vararg.arg)
    if args.kwarg is not None:
        local.add(args.kwarg.arg)
    declared_global = _global_decls(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign)
                else [sub.target]
            )
            for target in targets:
                local.update(_flat_names(target))
        elif isinstance(sub, ast.NamedExpr):
            local.update(_flat_names(sub.target))
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            local.update(_flat_names(sub.target))
        elif isinstance(sub, ast.comprehension):
            local.update(_flat_names(sub.target))
        elif isinstance(sub, ast.withitem) and sub.optional_vars is not None:
            local.update(_flat_names(sub.optional_vars))
        elif isinstance(sub, ast.ExceptHandler) and sub.name:
            local.add(sub.name)
        elif isinstance(sub, (ast.Import, ast.ImportFrom)):
            for alias in sub.names:
                local.add((alias.asname or alias.name).split(".")[0])
    return local - declared_global


def _global_decls(
    node: ast.FunctionDef | ast.AsyncFunctionDef,
) -> set[str]:
    names: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Global, ast.Nonlocal)):
            names.update(sub.names)
    return names


def _flat_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for element in target.elts:
            out.extend(_flat_names(element))
        return out
    return []


