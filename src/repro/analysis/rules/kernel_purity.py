"""Kernel-purity rule: the array kernel is numpy ops, nothing else.

``sim/kernel.py`` is the hot core of the batched engine: every function
is a pure array transform over whole ``(ticks, cores)`` matrices.  The
tentpole speedup evaporates the moment someone "fixes" a kernel with a
``for core in ...`` loop or starts traversing simulator objects from
inside it — both reintroduce per-core Python work on the per-tick path
and quietly turn the 10x batch win back into the scalar engine with
extra steps.  This rule freezes the boundary:

* no Python-level loops or comprehensions (``for``/``while``/
  ``async for``, list/set/dict comprehensions, generator expressions) —
  iteration belongs inside numpy;
* no attribute access except through the kernel's two imported modules
  (``np`` and ``math``) — kernels receive arrays and scalars, never
  chips, cores, or apps, so any other dotted access means object
  traversal leaked in.

The rule is scoped by path to ``sim/kernel.py``; the orchestration
layer (``sim/soa.py``) deliberately stays outside it — gathering and
committing *is* object traversal.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, dotted_name
from repro.analysis.source import SourceFile

#: the module applies to files whose path ends with this suffix.
KERNEL_PATH_SUFFIX = "sim/kernel.py"

#: the only roots a dotted attribute chain may start from inside a
#: kernel: the numpy module and the stdlib math module.
ALLOWED_ATTRIBUTE_ROOTS = frozenset({"np", "math"})

#: banned iteration constructs, with the phrasing used in findings.
_LOOP_NODES = (
    (ast.For, "for loop"),
    (ast.AsyncFor, "async for loop"),
    (ast.While, "while loop"),
    (ast.ListComp, "list comprehension"),
    (ast.SetComp, "set comprehension"),
    (ast.DictComp, "dict comprehension"),
    (ast.GeneratorExp, "generator expression"),
)


class KernelPurityRule(Rule):
    name = "kernel-purity"
    contract = (
        "sim/kernel.py holds pure numpy array transforms: no Python-"
        "level loops or comprehensions (iteration happens inside numpy "
        "ufuncs over whole (ticks, cores) batches), and no attribute "
        "access on anything but the np and math modules (kernels take "
        "arrays and scalars, never simulator objects).  A per-core "
        "Python loop or an object traversal on this path silently "
        "reverts the batched engine to scalar speed while the "
        "equivalence tests keep passing."
    )
    design_ref = "DESIGN.md §13"
    hint = (
        "express the iteration as a numpy op over the whole batch, or "
        "move object gathering out to sim/soa.py and pass arrays in"
    )

    def check(self, src: SourceFile) -> Iterator[Finding]:
        if not src.path.endswith(KERNEL_PATH_SUFFIX):
            return
        for node in ast.walk(src.tree):
            for loop_type, label in _LOOP_NODES:
                if isinstance(node, loop_type):
                    yield self.finding(
                        src, node,
                        f"Python-level {label} in the array kernel — "
                        "per-element iteration belongs inside numpy ops",
                    )
                    break
            else:
                if isinstance(node, ast.Attribute):
                    root = self._chain_root(node)
                    if root is None:
                        # attribute of a call/subscript result: still
                        # object traversal from the kernel's viewpoint
                        yield self.finding(
                            src, node,
                            f"attribute access '.{node.attr}' on a "
                            "derived object in the array kernel — "
                            "kernels operate on arrays, not objects",
                        )
                    elif root not in ALLOWED_ATTRIBUTE_ROOTS:
                        dotted = dotted_name(node) or f"?.{node.attr}"
                        yield self.finding(
                            src, node,
                            f"attribute access '{dotted}' in the array "
                            "kernel — only the np and math modules may "
                            "be dereferenced here",
                        )

    @staticmethod
    def _chain_root(node: ast.Attribute) -> str | None:
        """Name at the base of an attribute chain (None when derived).

        Only the *outermost* attribute of a chain reaches ast.walk
        first, but inner Attribute nodes are walked too; both resolve
        to the same root name, so an allowed chain like
        ``np.add.accumulate`` yields no finding at any depth.
        """
        cur: ast.expr = node
        while isinstance(cur, ast.Attribute):
            cur = cur.value
        if isinstance(cur, ast.Name):
            return cur.id
        return None
