"""Float-equality rule: no ``==``/``!=`` on float-carrying values.

Power, frequency, time, and share quantities are floats everywhere in
this codebase; exact equality on them is only ever correct when both
sides provably come from the same literal or the same quantized grid —
and those few deliberate sentinels carry inline suppressions explaining
why.  Everything else must go through the tolerance helpers
(:func:`repro.units.approx_eq`, :func:`repro.units.is_zero`,
``math.isclose``) so a one-ULP wobble can't flip a control decision.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import Rule
from repro.analysis.source import SourceFile
from repro.analysis.rules.unit_safety import unit_of_name

#: functions whose bodies are the approved tolerance helpers — exact
#: comparisons inside them are the implementation, not a violation.
APPROVED_HELPERS = frozenset({"approx_eq", "is_zero", "isclose"})

#: unit suffixes that carry *float* values.  Integer-valued units —
#: engine ticks, sysfs kHz, RAPL micro-joule counters — compare exactly
#: by design and are excluded.
FLOAT_UNITS = frozenset({"W", "MHz", "GHz", "IPS", "s", "J", "frac",
                         "shares"})


def _floatish(node: ast.expr) -> str | None:
    """Why an expression looks float-valued, or None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return f"float literal {node.value!r}"
    name = None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    if name is not None and unit_of_name(name) in FLOAT_UNITS:
        return f"'{name}' (unit-suffixed float)"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return "float(...) conversion"
    if isinstance(node, ast.BinOp):
        return _floatish(node.left) or _floatish(node.right)
    if isinstance(node, ast.UnaryOp):
        return _floatish(node.operand)
    return None


def _approved_spans(tree: ast.Module) -> list[tuple[int, int]]:
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in APPROVED_HELPERS
        ):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans


class FloatEqualityRule(Rule):
    name = "float-equality"
    contract = (
        "Float-carrying quantities (unit-suffixed names, float literals, "
        "float() conversions) are never compared with == or != outside "
        "the approved tolerance helpers; use repro.units.approx_eq / "
        "is_zero (or math.isclose) instead.  The handful of deliberate "
        "exact sentinels — values the code itself constructs, like the "
        "deadband's literal 0.0 or the DVFS grid's quantized points — "
        "carry inline suppressions stating that provenance."
    )
    design_ref = "DESIGN.md §10.5"
    hint = "use repro.units.approx_eq / repro.units.is_zero"

    def check(self, src: SourceFile) -> Iterator[Finding]:
        approved = _approved_spans(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Compare):
                continue
            if any(lo <= node.lineno <= hi for lo, hi in approved):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)):
                    evidence = _floatish(left) or _floatish(right)
                    # `x == 0` with an int literal still bites floats
                    if evidence is None and (
                        isinstance(left, ast.Constant)
                        or isinstance(right, ast.Constant)
                    ):
                        evidence = None  # int/str constants alone: pass
                    if evidence is not None:
                        yield self.finding(
                            src, node,
                            f"exact {'==' if isinstance(op, ast.Eq) else '!='}"
                            f" on {evidence} — floats need a tolerance",
                        )
                        break
                left = right
