"""Project symbol table and call graph for whole-program lint rules.

PR 4's rules are strictly per-file: each sees one AST and nothing else.
The bug classes that actually bit this repo — shared-object mutation
inside fork workers, RNG seeds laundered through a helper, snapshot
dicts missing an attribute — are *cross-module* properties, so the
analyser needs a whole-program view:

* :func:`module_name` maps a repo-relative path to its dotted module
  (``src/repro/cluster/stepper.py`` → ``repro.cluster.stepper``);
* :class:`Project` indexes every :class:`~repro.analysis.source.\
SourceFile` into modules, top-level functions, classes and methods,
  per-module import aliases, and module-level global names;
* :meth:`Project.call_sites` resolves every call expression to project
  functions, giving the call graph;
* :meth:`Project.worker_roots` finds fork-worker entry points
  *structurally* — functions passed as ``target=`` to a
  ``Process(...)`` spawn or as the callable of a ``pool.map``-family
  dispatch — and :meth:`Project.reachable_from` walks the graph from
  them.

**Soundness limits** (documented, deliberate): calls through variables
of unknown type resolve to *every* project method of that name (an
over-approximation — reachability may include functions a precise
points-to analysis would exclude, never fewer); calls through values
the resolver cannot name at all (subscripts, call results) resolve to
nothing.  Rules built on the graph therefore treat reachability as
"possibly runs in a worker" and keep their *finding* predicates narrow.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.analysis.registry import dotted_name
from repro.analysis.source import SourceFile

#: ``pool``-style dispatch methods whose first argument runs in a
#: worker process.
POOL_DISPATCH = frozenset({
    "map", "imap", "imap_unordered", "starmap", "apply_async", "submit",
})


def module_name(path: str) -> str:
    """Dotted module for a repo-relative posix path."""
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(part for part in parts if part)


@dataclass
class FunctionInfo:
    """One top-level function or class method."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    src: SourceFile
    #: unqualified owning class name (``None`` for plain functions).
    class_name: str | None = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def positional_params(self) -> tuple[str, ...]:
        """Positional parameter names, including ``self``/``cls``."""
        args = self.node.args
        return tuple(
            a.arg for a in (*args.posonlyargs, *args.args)
        )

    def keyword_params(self) -> tuple[str, ...]:
        return tuple(a.arg for a in self.node.args.kwonlyargs)

    def param_default(self, param: str) -> ast.expr | None:
        """The default expression bound to ``param`` (``None``: none)."""
        args = self.node.args
        positional = [*args.posonlyargs, *args.args]
        n_defaults = len(args.defaults)
        for offset, arg in enumerate(positional[-n_defaults:] if n_defaults else []):
            if arg.arg == param:
                return args.defaults[offset]
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if arg.arg == param and default is not None:
                return default
        return None


@dataclass
class ClassInfo:
    """One class definition with its directly-defined methods."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    src: SourceFile
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: raw dotted base-class names as written (resolved lazily).
    base_names: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    """Symbol table of one module."""

    name: str
    src: SourceFile
    #: local alias -> fully qualified dotted name it binds.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: names assigned at module level (mutable-global candidates).
    global_names: set[str] = field(default_factory=set)
    #: module-level names bound to literal constants (seed salts etc.).
    const_names: set[str] = field(default_factory=set)


@dataclass
class CallSite:
    """One call expression resolved to a project function."""

    #: enclosing project function (``None``: module-level code).
    caller: FunctionInfo | None
    callee: FunctionInfo
    call: ast.Call
    src: SourceFile
    #: resolved only by bare method-name match (receiver type unknown);
    #: ``True`` edges over-approximate.
    fuzzy: bool = False


class Project:
    """Whole-program index over a set of parsed sources."""

    def __init__(self, sources: Iterable[SourceFile]) -> None:
        self.sources: list[SourceFile] = list(sources)
        self.by_path: dict[str, SourceFile] = {
            src.path: src for src in self.sources
        }
        self.modules: dict[str, ModuleInfo] = {}
        #: qualname -> function, for both plain functions and methods.
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._methods_by_name: dict[str, list[FunctionInfo]] = {}
        for src in self.sources:
            self._index(src)
        self._call_sites: list[CallSite] | None = None
        self._edges: dict[str, list[tuple[str, bool]]] | None = None

    # -- indexing ----------------------------------------------------------------

    def _index(self, src: SourceFile) -> None:
        mod = ModuleInfo(name=module_name(src.path), src=src)
        self.modules[mod.name] = mod
        for node in src.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports[local] = bound
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(mod.name, node)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{mod.name}.{node.name}",
                    module=mod.name, name=node.name, node=node, src=src,
                )
                mod.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                self._index_class(mod, node, src)
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                for name in _assigned_names(node):
                    mod.global_names.add(name)
                    if _is_const_assign(node):
                        mod.const_names.add(name)

    def _index_class(
        self, mod: ModuleInfo, node: ast.ClassDef, src: SourceFile
    ) -> None:
        cls = ClassInfo(
            qualname=f"{mod.name}.{node.name}",
            module=mod.name, name=node.name, node=node, src=src,
            base_names=tuple(
                name for base in node.bases
                if (name := dotted_name(base))
            ),
        )
        mod.classes[node.name] = cls
        self.classes[cls.qualname] = cls
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{cls.qualname}.{item.name}",
                    module=mod.name, name=item.name, node=item, src=src,
                    class_name=node.name,
                )
                cls.methods[item.name] = info
                self.functions[info.qualname] = info
                self._methods_by_name.setdefault(item.name, []).append(info)

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom) -> str:
        """Absolute base module of a ``from ... import`` statement."""
        if not node.level:
            return node.module or ""
        parts = module.split(".")
        # level 1 = the containing package of this module
        base_parts = parts[: len(parts) - node.level]
        if node.module:
            base_parts.append(node.module)
        return ".".join(base_parts)

    # -- class hierarchy ---------------------------------------------------------

    def resolve_class_name(
        self, name: str, mod: ModuleInfo
    ) -> ClassInfo | None:
        """A class visible under ``name`` inside ``mod``."""
        if name in mod.classes:
            return mod.classes[name]
        head, _, rest = name.partition(".")
        if head in mod.imports:
            qual = mod.imports[head] + (f".{rest}" if rest else "")
            return self.classes.get(qual)
        return self.classes.get(name)

    def method_in_hierarchy(
        self, cls: ClassInfo, method: str
    ) -> FunctionInfo | None:
        """Look ``method`` up on ``cls`` then its base classes."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            cur = stack.pop(0)
            if cur.qualname in seen:
                continue
            seen.add(cur.qualname)
            if method in cur.methods:
                return cur.methods[method]
            mod = self.modules[cur.module]
            for base_name in cur.base_names:
                base = self.resolve_class_name(base_name, mod)
                if base is not None:
                    stack.append(base)
        return None

    def methods_named(self, name: str) -> list[FunctionInfo]:
        """Every project method with this bare name (fuzzy targets)."""
        if name.startswith("__") and name.endswith("__"):
            return []
        return list(self._methods_by_name.get(name, []))

    # -- call resolution ---------------------------------------------------------

    def resolve_callable_ref(
        self, expr: ast.expr, mod: ModuleInfo
    ) -> FunctionInfo | None:
        """A *reference* to a function (not a call) — spawn targets."""
        dotted = dotted_name(expr)
        if not dotted:
            return None
        resolved = self._resolve_direct(dotted, mod, cls=None)
        if resolved is not None:
            return resolved
        if "." in dotted:
            candidates = self.methods_named(dotted.rsplit(".", 1)[1])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def _resolve_direct(
        self, dotted: str, mod: ModuleInfo, cls: ClassInfo | None
    ) -> FunctionInfo | None:
        """Exact (non-fuzzy) resolution of a dotted callable name."""
        if "." not in dotted:
            if dotted in mod.functions:
                return mod.functions[dotted]
            if dotted in mod.classes:
                return mod.classes[dotted].methods.get("__init__")
            if dotted in mod.imports:
                qual = mod.imports[dotted]
                if qual in self.functions:
                    return self.functions[qual]
                if qual in self.classes:
                    return self.method_in_hierarchy(
                        self.classes[qual], "__init__"
                    )
            return None
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and cls is not None and "." not in rest:
            return self.method_in_hierarchy(cls, rest)
        if head in mod.classes and "." not in rest:
            return self.method_in_hierarchy(mod.classes[head], rest)
        if head in mod.imports:
            qual = f"{mod.imports[head]}.{rest}"
            if qual in self.functions:
                return self.functions[qual]
            if qual in self.classes:
                return self.method_in_hierarchy(
                    self.classes[qual], "__init__"
                )
            holder, _, meth = qual.rpartition(".")
            if holder in self.classes:
                return self.method_in_hierarchy(self.classes[holder], meth)
        return None

    def resolve_call(
        self, call: ast.Call, mod: ModuleInfo, cls: ClassInfo | None
    ) -> list[tuple[FunctionInfo, bool]]:
        """Possible targets of a call: ``(function, fuzzy)`` pairs."""
        dotted = dotted_name(call.func)
        if not dotted:
            return []
        direct = self._resolve_direct(dotted, mod, cls)
        if direct is not None:
            return [(direct, False)]
        if "." in dotted:
            head = dotted.split(".", 1)[0]
            if head in mod.imports and "." not in dotted.split(".", 1)[1]:
                # a call into a real imported module that the project
                # does not contain — external, not fuzzy-matchable
                return []
            last = dotted.rsplit(".", 1)[1]
            return [(info, True) for info in self.methods_named(last)]
        return []

    # -- the graph ---------------------------------------------------------------

    def call_sites(self) -> list[CallSite]:
        """Every call expression resolved to project functions."""
        if self._call_sites is not None:
            return self._call_sites
        sites: list[CallSite] = []
        for mod in self.modules.values():
            for caller, scope_cls, node in _call_scopes(mod):
                for call in _walk_calls(node):
                    for target, fuzzy in self.resolve_call(
                        call, mod, scope_cls
                    ):
                        sites.append(CallSite(
                            caller=caller, callee=target,
                            call=call, src=mod.src, fuzzy=fuzzy,
                        ))
        self._call_sites = sites
        return sites

    def edges(self) -> dict[str, list[tuple[str, bool]]]:
        """caller qualname -> [(callee qualname, fuzzy)] adjacency."""
        if self._edges is not None:
            return self._edges
        out: dict[str, list[tuple[str, bool]]] = {}
        for site in self.call_sites():
            if site.caller is None:
                continue
            pairs = out.setdefault(site.caller.qualname, [])
            pair = (site.callee.qualname, site.fuzzy)
            if pair not in pairs:
                pairs.append(pair)
        self._edges = out
        return out

    def worker_roots(self) -> list[FunctionInfo]:
        """Functions dispatched into forked worker processes."""
        roots: dict[str, FunctionInfo] = {}
        for mod in self.modules.values():
            for call in _walk_calls(mod.src.tree):
                dotted = dotted_name(call.func)
                if not dotted:
                    continue
                last = dotted.rsplit(".", 1)[-1]
                target_expr: ast.expr | None = None
                if last == "Process":
                    for kw in call.keywords:
                        if kw.arg == "target":
                            target_expr = kw.value
                elif last in POOL_DISPATCH and call.args:
                    target_expr = call.args[0]
                if target_expr is None:
                    continue
                info = self.resolve_callable_ref(target_expr, mod)
                if info is not None:
                    roots[info.qualname] = info
        return [roots[name] for name in sorted(roots)]

    def reachable_from(
        self, roots: Sequence[FunctionInfo]
    ) -> dict[str, tuple[str, ...]]:
        """BFS closure: qualname -> call chain from its nearest root."""
        edges = self.edges()
        chains: dict[str, tuple[str, ...]] = {}
        queue: list[str] = []
        for root in roots:
            if root.qualname not in chains:
                chains[root.qualname] = (root.qualname,)
                queue.append(root.qualname)
        while queue:
            current = queue.pop(0)
            for callee, _fuzzy in edges.get(current, []):
                if callee not in chains:
                    chains[callee] = chains[current] + (callee,)
                    queue.append(callee)
        return chains


def _assigned_names(
    node: ast.Assign | ast.AnnAssign | ast.AugAssign,
) -> list[str]:
    targets: list[ast.expr]
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    else:
        targets = [node.target]
    names: list[str] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            names.extend(
                el.id for el in target.elts if isinstance(el, ast.Name)
            )
    return names


def _is_const_assign(
    node: ast.Assign | ast.AnnAssign | ast.AugAssign,
) -> bool:
    value = node.value
    return isinstance(value, ast.Constant) or (
        isinstance(value, ast.UnaryOp)
        and isinstance(value.operand, ast.Constant)
    )


def _call_scopes(
    mod: ModuleInfo,
) -> Iterator[tuple[FunctionInfo | None, ClassInfo | None, ast.AST]]:
    """(enclosing function, enclosing class, body) triples to scan.

    Module-level code is scanned with no enclosing function; nested
    closures are attributed to their outermost named function.
    """
    for func in mod.functions.values():
        yield func, None, func.node
    for cls in mod.classes.values():
        for method in cls.methods.values():
            yield method, cls, method.node
    yield None, None, _module_level_only(mod.src.tree)


def _module_level_only(tree: ast.Module) -> ast.Module:
    """The module body with function/class definitions stripped."""
    body = [
        node for node in tree.body
        if not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    ]
    return ast.Module(body=body, type_ignores=[])


def _walk_calls(node: ast.AST) -> Iterator[ast.Call]:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            yield sub
