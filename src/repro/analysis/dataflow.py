"""Interprocedural seed-provenance dataflow ("taint") analysis.

The determinism contract says every RNG in the tree replays from a
config/scenario/incarnation seed.  The per-file heuristic PR 4 shipped
could only see ``random.Random()`` with *no* argument; a seed laundered
through one helper call (``make_rng(time.time_ns())``) sailed past it.
This pass traces seed values across call boundaries.

**The lattice.**  Every expression evaluates to a :class:`Taint`:

* ``SEEDED`` — provably derived from a seed source: literal constants,
  attribute chains ending in a seed-ish name (``config.seed``,
  ``scenario.fault_seed``, ``self._SEED_SALT``, ``incarnation``),
  module-level constants, arithmetic over seeded operands, allowlisted
  pure builtins of seeded arguments, methods called *on* a seeded RNG
  (``rng.randint(...)`` — child seeds drawn from a seeded parent), and
  calls to functions whose name or summary says they derive seeds;
* ``Taint(params={p, ...})`` — seeded if and only if the arguments
  bound to those parameters are seeded (resolved at each call site);
* ``UNSEEDED`` — everything else (wall clocks, I/O, unknown calls).
  Any unseeded operand poisons the expression.

**Summaries.**  A fixpoint over all project functions computes, per
function, (a) *rng params*: parameters that flow into an RNG seed
position — directly into ``random.Random(p)`` or onward into another
function's rng param — and (b) the return taint in terms of its own
parameters.  A final pass then reports two event kinds:

* an RNG constructed from a plainly-unseeded expression, and
* a call passing a plainly-unseeded argument into a callee's rng
  param — the "unseeded RNG one call hop away" case.

**Soundness limits** (see DESIGN.md §15): statements are evaluated in
source order with no branch joins (the last write wins), comprehension
scopes are approximated, ambiguous method calls are not followed, and
``*args`` splats at a call site skip the check.  The pass is therefore
a bug-finder, not a verifier: it never proves seededness, it reports
flows it can prove are *not* seeded.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Mapping

from repro.analysis.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)
from repro.analysis.registry import dotted_name

#: attribute / parameter names that are seed sources by convention.
SEED_NAME_RE = re.compile(r"seed|incarnation", re.IGNORECASE)

#: RNG constructors whose first argument is the seed.
RNG_CONSTRUCTORS = frozenset({
    "random.Random",
    "numpy.random.default_rng", "np.random.default_rng",
    "numpy.random.RandomState", "np.random.RandomState",
})

#: pure builtins that pass seededness through their arguments.
PASSTHROUGH_BUILTINS = frozenset({
    "int", "float", "bool", "str", "abs", "round", "min", "max",
    "sum", "len", "hash", "ord", "pow", "divmod", "tuple", "sorted",
})


@dataclass(frozen=True)
class Taint:
    """Seedness of one expression value."""

    seeded: bool
    #: caller parameters this value's seedness depends on.
    params: frozenset[str] = frozenset()

    @property
    def poisoned(self) -> bool:
        """Plainly unseeded: no parameter could rescue it."""
        return not self.seeded and not self.params


SEEDED = Taint(True)
UNSEEDED = Taint(False)


def join(a: Taint, b: Taint) -> Taint:
    """Combine operand taints: any poisoned operand poisons the result."""
    if a.poisoned or b.poisoned:
        return UNSEEDED
    if a.params or b.params:
        return Taint(False, a.params | b.params)
    return SEEDED


@dataclass(frozen=True)
class SeedEvent:
    """One provable unseeded flow, to be turned into a finding."""

    kind: str  # "construct" | "argument"
    path: str
    node: ast.AST
    message: str


class SeedAnalysis:
    """Fixpoint seed-provenance analysis over a :class:`Project`."""

    #: fixpoint iteration cap (call chains deeper than this are rare;
    #: the loop exits early as soon as summaries stop changing).
    MAX_ROUNDS = 12

    def __init__(self, project: Project) -> None:
        self.project = project
        #: qualname -> params that feed an RNG seed downstream.
        self.rng_params: dict[str, set[str]] = {}
        #: qualname -> return taint in terms of own params.
        self.returns: dict[str, Taint] = {}
        self.events: list[SeedEvent] = []

    def run(self) -> None:
        for _ in range(self.MAX_ROUNDS):
            before = (
                {k: frozenset(v) for k, v in self.rng_params.items()},
                dict(self.returns),
            )
            for func in self.project.functions.values():
                self._analyze_function(func, report=False)
            after = (
                {k: frozenset(v) for k, v in self.rng_params.items()},
                dict(self.returns),
            )
            if after == before:
                break
        seen: set[tuple[str, int, int, str]] = set()
        for func in self.project.functions.values():
            for event in self._analyze_function(func, report=True):
                line = getattr(event.node, "lineno", 0)
                col = getattr(event.node, "col_offset", 0)
                key = (event.path, line, col, event.message)
                if key not in seen:
                    seen.add(key)
                    self.events.append(event)
        for mod in self.project.modules.values():
            for event in self._analyze_module_level(mod):
                line = getattr(event.node, "lineno", 0)
                col = getattr(event.node, "col_offset", 0)
                key = (event.path, line, col, event.message)
                if key not in seen:
                    seen.add(key)
                    self.events.append(event)

    # -- per-scope walks ---------------------------------------------------------

    def _analyze_function(
        self, func: FunctionInfo, *, report: bool
    ) -> list[SeedEvent]:
        mod = self.project.modules[func.module]
        cls = (
            mod.classes.get(func.class_name)
            if func.class_name is not None else None
        )
        env: dict[str, Taint] = {}
        params = list(func.positional_params()) + list(func.keyword_params())
        for param in params:
            env[param] = Taint(False, frozenset({param}))
        walker = _ScopeWalker(self, func, mod, cls, env, report)
        walker.walk_body(func.node.body)
        return walker.events

    def _analyze_module_level(self, mod: ModuleInfo) -> list[SeedEvent]:
        body = [
            node for node in mod.src.tree.body
            if not isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            )
        ]
        walker = _ScopeWalker(self, None, mod, None, {}, True)
        walker.walk_body(body)
        return walker.events


class _ScopeWalker:
    """Source-order statement walk of one function (or module) body."""

    def __init__(
        self,
        analysis: SeedAnalysis,
        func: FunctionInfo | None,
        mod: ModuleInfo,
        cls: ClassInfo | None,
        env: dict[str, Taint],
        report: bool,
    ) -> None:
        self.analysis = analysis
        self.project = analysis.project
        self.func = func
        self.mod = mod
        self.cls = cls
        self.env = env
        self.report = report
        self.events: list[SeedEvent] = []

    # -- statements --------------------------------------------------------------

    def walk_body(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self.walk_stmt(stmt)

    def walk_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed on their own
        if isinstance(stmt, ast.Assign):
            taint = self.eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, taint)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind(stmt.target, self.eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.eval(stmt.value)
            if isinstance(stmt.target, ast.Name):
                prior = self.env.get(stmt.target.id, self.eval(stmt.target))
                self.env[stmt.target.id] = join(prior, taint)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                taint = self.eval(stmt.value)
                if self.func is not None:
                    prior = self.analysis.returns.get(
                        self.func.qualname, taint
                    )
                    self.analysis.returns[self.func.qualname] = join(
                        prior, taint
                    )
        elif isinstance(stmt, ast.For):
            self._bind(stmt.target, self._eval_iter(stmt.iter))
            self.walk_body(stmt.body)
            self.walk_body(stmt.orelse)
            return
        elif isinstance(stmt, ast.Expr):
            self.eval(stmt.value)
        # recurse into compound statements in source order
        for attr in ("body", "orelse", "finalbody"):
            inner = getattr(stmt, attr, None)
            if isinstance(inner, list) and not isinstance(stmt, ast.For):
                self.walk_body([s for s in inner if isinstance(s, ast.stmt)])
        handlers = getattr(stmt, "handlers", None)
        if isinstance(handlers, list):
            for handler in handlers:
                if isinstance(handler, ast.ExceptHandler):
                    self.walk_body(handler.body)
        for attr in ("test", "iter", "context_expr"):
            value = getattr(stmt, attr, None)
            if isinstance(value, ast.expr):
                self.eval(value)
        items = getattr(stmt, "items", None)
        if isinstance(items, list):
            for item in items:
                if isinstance(item, ast.withitem):
                    self.eval(item.context_expr)

    def _bind(self, target: ast.expr, taint: Taint) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = taint
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, taint)

    def _eval_iter(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in ("range", "enumerate", "zip", "reversed", "sorted"):
                taint = SEEDED
                for arg in node.args:
                    taint = join(taint, self._eval_iter(arg))
                return taint
        return self.eval(node)

    # -- expressions -------------------------------------------------------------

    def eval(self, node: ast.expr) -> Taint:
        if isinstance(node, ast.Constant):
            return SEEDED
        if isinstance(node, ast.Name):
            return self._eval_name(node.id)
        if isinstance(node, ast.Attribute):
            if SEED_NAME_RE.search(node.attr):
                return SEEDED
            return UNSEEDED
        if isinstance(node, ast.BinOp):
            return join(self.eval(node.left), self.eval(node.right))
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand)
        if isinstance(node, ast.IfExp):
            self.eval(node.test)
            return join(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = SEEDED
            for element in node.elts:
                taint = join(taint, self.eval(element))
            return taint
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Subscript):
            return self.eval(node.value)
        if isinstance(node, ast.Compare):
            return SEEDED  # booleans cannot carry entropy worth tracing
        if isinstance(node, ast.JoinedStr):
            return SEEDED
        return UNSEEDED

    def _eval_name(self, name: str) -> Taint:
        if name in self.env:
            return self.env[name]
        if name in self.mod.const_names:
            return SEEDED
        if SEED_NAME_RE.search(name):
            # a name we lost track of (branch/comprehension binding)
            # that says it is a seed — trust the convention
            return SEEDED
        return UNSEEDED

    def _eval_call(self, call: ast.Call) -> Taint:
        dotted = dotted_name(call.func)
        if dotted in RNG_CONSTRUCTORS:
            self._check_rng_construction(call)
            # a seeded constructor yields a seeded RNG object
            return self._seed_argument_taint(call) or UNSEEDED
        if dotted in PASSTHROUGH_BUILTINS:
            taint = SEEDED
            for arg in call.args:
                taint = join(taint, self.eval(arg))
            return taint
        targets = (
            self.project.resolve_call(call, self.mod, self.cls)
            if dotted else []
        )
        exact = [info for info, fuzzy in targets if not fuzzy]
        fuzzy = [info for info, fuzzy in targets if fuzzy]
        callee: FunctionInfo | None = None
        if exact:
            callee = exact[0]
        elif len(fuzzy) == 1:
            callee = fuzzy[0]
        if callee is not None:
            self._check_call_arguments(call, callee)
            return self._returned_taint(call, callee)
        for arg in call.args:
            self.eval(arg)
        if dotted:
            last = dotted.rsplit(".", 1)[-1]
            if SEED_NAME_RE.search(last):
                # e.g. config.node_fault_seed(i, incarnation): a seed
                # derivation function by naming convention
                return SEEDED
            if "." in dotted:
                receiver = dotted.rsplit(".", 1)[0]
                if self._receiver_taint(receiver).seeded:
                    # a draw from a seeded RNG is itself seeded
                    return SEEDED
        return UNSEEDED

    def _receiver_taint(self, receiver_dotted: str) -> Taint:
        head, _, rest = receiver_dotted.partition(".")
        taint = self._eval_name(head)
        for part in rest.split(".") if rest else []:
            if SEED_NAME_RE.search(part):
                return SEEDED
            taint = UNSEEDED
        return taint

    # -- RNG checks --------------------------------------------------------------

    def _seed_argument(self, call: ast.Call) -> ast.expr | None:
        if call.args:
            return call.args[0]
        for kw in call.keywords:
            if kw.arg in ("seed", "x"):
                return kw.value
        return None

    def _seed_argument_taint(self, call: ast.Call) -> Taint | None:
        arg = self._seed_argument(call)
        if arg is None:
            return None
        taint = self.eval(arg)
        return SEEDED if taint.seeded else taint

    def _check_rng_construction(self, call: ast.Call) -> None:
        arg = self._seed_argument(call)
        if arg is None:
            return  # the per-file rule flags the no-argument form
        taint = self.eval(arg)
        if taint.seeded:
            return
        if taint.params:
            self._mark_rng_params(taint.params)
            return
        if self.report:
            self.events.append(SeedEvent(
                kind="construct",
                path=self.mod.src.path,
                node=call,
                message=(
                    f"RNG seeded from {_describe(arg)!r}, which does not "
                    "trace to a config/scenario/incarnation seed"
                ),
            ))

    def _mark_rng_params(self, params: frozenset[str]) -> None:
        if self.func is None:
            return
        bucket = self.analysis.rng_params.setdefault(
            self.func.qualname, set()
        )
        bucket.update(params)

    def _check_call_arguments(
        self, call: ast.Call, callee: FunctionInfo
    ) -> None:
        feeding = self.analysis.rng_params.get(callee.qualname)
        if not feeding:
            return
        if any(isinstance(arg, ast.Starred) for arg in call.args):
            return  # cannot map a splat; skip rather than guess
        for param, arg in _map_arguments(call, callee).items():
            if param not in feeding:
                continue
            taint = self.eval(arg)
            if taint.seeded:
                continue
            if taint.params:
                self._mark_rng_params(taint.params)
                continue
            if self.report:
                self.events.append(SeedEvent(
                    kind="argument",
                    path=self.mod.src.path,
                    node=call,
                    message=(
                        f"argument {param!r} of {callee.qualname}() "
                        f"feeds an RNG seed, but {_describe(arg)!r} does "
                        "not trace to a config/scenario/incarnation seed"
                    ),
                ))

    def _returned_taint(self, call: ast.Call, callee: FunctionInfo) -> Taint:
        summary = self.analysis.returns.get(callee.qualname)
        if summary is None:
            return UNSEEDED
        if summary.seeded:
            return SEEDED
        if not summary.params:
            return UNSEEDED
        mapped = _map_arguments(call, callee)
        taint = SEEDED
        for param in summary.params:
            arg = mapped.get(param)
            if arg is None:
                default = callee.param_default(param)
                if default is not None and isinstance(default, ast.Constant):
                    continue
                return UNSEEDED
            taint = join(taint, self.eval(arg))
        return taint


def _map_arguments(
    call: ast.Call, callee: FunctionInfo
) -> Mapping[str, ast.expr]:
    """Best-effort call-argument -> callee-parameter binding."""
    params = list(callee.positional_params())
    bound_method = callee.is_method and params and params[0] in ("self", "cls")
    if bound_method:
        params = params[1:]
    mapped: dict[str, ast.expr] = {}
    for param, arg in zip(params, call.args):
        mapped[param] = arg
    keyword_ok = set(params) | set(callee.keyword_params())
    for kw in call.keywords:
        if kw.arg is not None and kw.arg in keyword_ok:
            mapped[kw.arg] = kw.value
    return mapped


def _describe(node: ast.expr) -> str:
    try:
        text = ast.unparse(node)
    except ValueError:  # pragma: no cover - malformed synthetic nodes
        text = "<expression>"
    return text if len(text) <= 48 else text[:45] + "..."
