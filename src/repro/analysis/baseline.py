"""The committed suppression ledger (``.repro-lint-baseline.json``).

The baseline is the audited list of findings the repo deliberately
tolerates.  Every entry corresponds to an inline
``# repro-lint: disable=`` comment in the tree (the linter parses both
and cross-checks them in ``--check`` mode), so adding a new suppression
requires committing a baseline change a reviewer can see, and a
suppression whose finding disappeared fails CI as stale.

Entries match findings *structurally* — rule, path, and the stripped
source line — never by line number, so unrelated edits above a
suppressed line don't invalidate the ledger.  Identical lines in one
file are handled by multiplicity: each entry tolerates one finding.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: default ledger filename at the repository root.
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One tolerated finding."""

    rule: str
    path: str
    context: str
    reason: str = ""
    #: informational only — matching ignores it.
    line: int = 0

    def key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.context)


class Baseline:
    """Loaded ledger plus a consuming matcher for one lint run."""

    def __init__(self, entries: tuple[BaselineEntry, ...] = ()) -> None:
        self.entries = entries

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a ledger; a missing file is an empty baseline."""
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        if not isinstance(raw, dict) or "suppressions" not in raw:
            raise ValueError(f"malformed baseline file {path}")
        entries = []
        for item in raw["suppressions"]:
            entries.append(BaselineEntry(
                rule=str(item["rule"]),
                path=str(item["path"]),
                context=str(item["context"]),
                reason=str(item.get("reason", "")),
                line=int(item.get("line", 0)),
            ))
        return cls(tuple(entries))

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        """Ledger entries for (suppressed) findings, stably ordered."""
        entries = tuple(
            BaselineEntry(
                rule=f.rule, path=f.path, context=f.context,
                reason=f.suppress_reason, line=f.line,
            )
            for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
        )
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Audited ledger of deliberate repro-lint suppressions; "
                "every entry has a matching inline disable comment. "
                "Regenerate with scripts/lint.py --write-baseline."
            ),
            "suppressions": [
                {
                    "rule": e.rule, "path": e.path, "line": e.line,
                    "context": e.context, "reason": e.reason,
                }
                for e in self.entries
            ],
        }
        path.write_text(
            json.dumps(payload, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )

    def matcher(self) -> "BaselineMatcher":
        return BaselineMatcher(self)


class BaselineMatcher:
    """Consumes baseline entries against one run's findings."""

    def __init__(self, baseline: Baseline) -> None:
        self._budget: Counter[tuple[str, str, str]] = Counter(
            entry.key() for entry in baseline.entries
        )

    def consume(self, finding: Finding) -> bool:
        """True (once per entry) when the ledger tolerates ``finding``."""
        key = finding.key()
        if self._budget.get(key, 0) > 0:
            self._budget[key] -= 1
            return True
        return False
