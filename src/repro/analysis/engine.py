"""Lint engine: walk files, run rules, fold in suppressions + baseline.

The engine is deliberately dumb about policy — rules decide what to
flag, inline comments decide what is deliberate, and the baseline
ledger decides what CI tolerates.  The engine just composes them:

1. parse every ``.py`` file under the given paths (a syntax error is
   itself a finding — broken code must not slip past the gate);
2. run every registered rule;
3. mark findings covered by an inline ``disable`` comment as
   suppressed, flagging comments that are malformed (no reason), name
   an unknown rule, or cover nothing (stale);
4. split the remainder against the baseline ledger: matched findings
   are *baselined*, everything else is *blocking*.

In ``--check`` (CI) mode a suppressed finding with no ledger entry also
blocks: silencing the linter requires a committed, reviewable baseline
change, exactly like the chaos_smoke gate requires a committed
throughput floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence, TextIO

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import Project
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import RuleRegistry, default_registry
from repro.analysis.source import SourceFile

#: engine-level hygiene findings (not suppressible, not baselineable).
META_PARSE = "parse-error"
META_MALFORMED = "suppression-without-reason"
META_UNKNOWN = "suppression-unknown-rule"
META_UNUSED = "suppression-unused"


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    #: every rule finding, suppression marks applied.
    findings: list[Finding] = field(default_factory=list)
    #: findings that fail the run (includes meta findings).
    blocking: list[Finding] = field(default_factory=list)
    #: findings covered by an inline disable comment.
    suppressed: list[Finding] = field(default_factory=list)
    #: unsuppressed findings tolerated by the baseline ledger.
    baselined: list[Finding] = field(default_factory=list)
    #: suppressed findings missing from the ledger (block in check mode).
    unledgered: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.blocking


def iter_python_files(paths: Sequence[Path]) -> list[Path]:
    """Stable, sorted expansion of files and directories."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if any(part.startswith(".") for part in sub.parts):
                    continue
                seen[sub] = None
        else:
            seen[path] = None
    return sorted(seen)


def lint_sources(
    sources: Iterable[SourceFile],
    *,
    registry: RuleRegistry | None = None,
    baseline: Baseline | None = None,
    check: bool = False,
) -> LintReport:
    """Run the registry over already-parsed sources."""
    registry = registry or default_registry()
    baseline = baseline or Baseline()
    report = LintReport()
    matcher = baseline.matcher()
    meta: list[Finding] = []
    sources = list(sources)

    # per-file rules see one source at a time; project rules see the
    # whole set at once (the findings land back in their files below)
    per_path: dict[str, list[Finding]] = {src.path: [] for src in sources}
    for src in sources:
        for rule in registry.file_rules():
            per_path[src.path].extend(rule.check(src))
    if registry.project_rules():
        project = Project(sources)
        for project_rule in registry.project_rules():
            for finding in project_rule.check_project(project):
                per_path.setdefault(finding.path, []).append(finding)

    for src in sources:
        report.files_checked += 1
        raw = sorted(
            per_path.get(src.path, ()),
            key=lambda f: (f.line, f.col, f.rule, f.message),
        )
        meta.extend(_suppression_hygiene(src, registry))
        for finding in raw:
            covering = src.suppressions_for(finding.line, finding.rule)
            live = [s for s in covering if s.reason]
            if live:
                for s in live:
                    s.used = True
                finding = finding.as_suppressed(live[0].reason)
                report.suppressed.append(finding)
                if not matcher.consume(finding):
                    report.unledgered.append(finding)
            report.findings.append(finding)
        meta.extend(_unused_suppressions(src))

    for finding in report.findings:
        if finding.suppressed:
            continue
        if matcher.consume(finding):
            report.baselined.append(finding)
        else:
            report.blocking.append(finding)
    report.blocking.extend(meta)
    if check:
        report.blocking.extend(report.unledgered)
    report.blocking.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def lint_paths(
    paths: Sequence[Path],
    *,
    root: Path | None = None,
    registry: RuleRegistry | None = None,
    baseline: Baseline | None = None,
    check: bool = False,
) -> LintReport:
    """Lint files/directories; paths in findings are relative to root."""
    root = (root or Path.cwd()).resolve()
    sources: list[SourceFile] = []
    parse_failures: list[Finding] = []
    for file_path in iter_python_files(paths):
        try:
            sources.append(SourceFile.from_path(file_path, root))
        except SyntaxError as exc:
            rel = _relativize(file_path, root)
            parse_failures.append(Finding(
                rule=META_PARSE, path=rel,
                line=exc.lineno or 1, col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                severity=Severity.ERROR,
            ))
    report = lint_sources(
        sources, registry=registry, baseline=baseline, check=check,
    )
    report.files_checked += len(parse_failures)
    report.findings.extend(parse_failures)
    report.blocking.extend(parse_failures)
    report.blocking.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def _suppression_hygiene(
    src: SourceFile, registry: RuleRegistry
) -> list[Finding]:
    """Malformed or unknown-rule disable comments are findings."""
    out: list[Finding] = []
    for s in src.suppressions:
        if not s.reason:
            s.used = True  # don't double-report as unused
            out.append(Finding(
                rule=META_MALFORMED, path=src.path, line=s.line, col=0,
                message=(
                    "disable comment without a reason — every "
                    "suppression documents its contract exception: "
                    "'# repro-lint: disable=<rule> — <why>'"
                ),
                context=src.line_text(s.line),
            ))
            continue
        for name in s.rules:
            if name not in registry:
                s.used = True
                out.append(Finding(
                    rule=META_UNKNOWN, path=src.path, line=s.line, col=0,
                    message=(
                        f"disable names unknown rule {name!r} "
                        f"(known: {', '.join(registry.names())})"
                    ),
                    context=src.line_text(s.line),
                ))
    return out


def _unused_suppressions(src: SourceFile) -> list[Finding]:
    return [
        Finding(
            rule=META_UNUSED, path=src.path, line=s.line, col=0,
            message=(
                f"stale suppression: no {'/'.join(s.rules)} finding on "
                "the covered line — delete the comment (and its "
                "baseline entry)"
            ),
            context=src.line_text(s.line),
        )
        for s in src.suppressions
        if not s.used
    ]


def render_report(
    report: LintReport,
    stream: TextIO,
    *,
    registry: RuleRegistry | None = None,
    explain: bool = False,
) -> None:
    """Human-readable findings with optional contract text."""
    registry = registry or default_registry()
    explained: set[str] = set()
    for finding in report.blocking:
        stream.write(
            f"{finding.location()}: {finding.rule}: {finding.message}\n"
        )
        if finding.context:
            stream.write(f"    | {finding.context}\n")
        if finding.rule in registry:
            rule = registry.rule(finding.rule)
            if finding.hint:
                stream.write(f"    hint: {finding.hint}\n")
            stream.write(f"    see {rule.design_ref}\n")
            if explain and finding.rule not in explained:
                explained.add(finding.rule)
                stream.write(f"    contract: {rule.contract}\n")
    stream.write(
        f"repro-lint: {report.files_checked} files, "
        f"{len(report.blocking)} blocking, "
        f"{len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined\n"
    )
