"""Parsed source files and inline suppression comments.

A :class:`SourceFile` bundles everything a rule needs: the repo-relative
path (rules scope themselves by path segments), the raw text and split
lines (findings carry their stripped source line as a baseline anchor),
the parsed AST, and the file's ``# repro-lint: disable=`` comments.

Suppression syntax (with a real rule name in place of ``<rule>``)::

    x = 1.0 == y  # repro-lint: disable=<rule> — exact sentinel
    # repro-lint: disable=<rule> — wall-clock footer is cosmetic
    started = time.time()

A comment on a code line covers findings on that line; a comment alone
on its own line covers the next line.  The em-dash (or ``--``/``:``)
separated reason is mandatory — a disable without one is itself a
finding, so every suppression documents its contract exception.
(The examples above use ``<rule>`` placeholders deliberately: the
parser is line-based and would otherwise read its own documentation.)
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: accepted spelling: ``repro-lint: disable=`` + comma list + reason
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\-]+)"
    r"(?:\s*(?:—|–|--+|:)\s*(.*?))?\s*$"
)


@dataclass
class Suppression:
    """One parsed inline disable comment."""

    rules: tuple[str, ...]
    #: line the comment sits on (1-based).
    line: int
    #: line findings must sit on to be covered.
    target_line: int
    reason: str
    #: set by the engine once any finding was covered.
    used: bool = False


@dataclass
class SourceFile:
    """One file under analysis: path, text, AST, and suppressions."""

    path: str
    text: str
    lines: list[str] = field(default_factory=list)
    tree: ast.Module = field(default_factory=lambda: ast.Module(body=[], type_ignores=[]))
    suppressions: list[Suppression] = field(default_factory=list)

    @classmethod
    def from_text(cls, path: str, text: str) -> "SourceFile":
        """Parse ``text``; raises :class:`SyntaxError` on broken input."""
        tree = ast.parse(text, filename=path)
        src = cls(path=path.replace("\\", "/"), text=text,
                  lines=text.splitlines(), tree=tree)
        src.suppressions = _parse_suppressions(src.lines)
        return src

    @classmethod
    def from_path(cls, file_path: Path, root: Path) -> "SourceFile":
        rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        return cls.from_text(rel, file_path.read_text(encoding="utf-8"))

    def line_text(self, line: int) -> str:
        """Stripped source of a 1-based line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def suppressions_for(self, line: int, rule: str) -> list[Suppression]:
        return [
            s for s in self.suppressions
            if rule in s.rules and line in (s.line, s.target_line)
        ]


def _parse_suppressions(lines: list[str]) -> list[Suppression]:
    found: list[Suppression] = []
    for number, raw in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(raw)
        if match is None:
            continue
        rules = tuple(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )
        reason = (match.group(2) or "").strip()
        comment_only = raw.strip().startswith("#")
        target = number + 1 if comment_only else number
        found.append(Suppression(
            rules=rules, line=number, target_line=target, reason=reason,
        ))
    return found
