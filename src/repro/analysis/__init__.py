"""``repro-lint``: AST static analysis for this repo's core contracts.

The reproduction leans on invariants the test suite can only
spot-check — byte-identical serial/parallel stepping, config-pure cache
keys, a daemon that contains every hardware fault.  This package makes
them machine-checked: a pluggable rule registry walks every source
file's AST and reports :class:`~repro.analysis.findings.Finding`s with
``file:line``, severity, fix hints, and DESIGN.md references.

Shipped rules (see DESIGN.md §10 and §15): the per-file contracts
``determinism``, ``unit-safety``, ``fail-safety``, ``float-equality``,
``cache-purity``, ``kernel-purity``, plus the whole-program rules
``shared-state-race``, ``rng-provenance``, and
``snapshot-completeness``, which run over a project-wide symbol table
and call graph (:mod:`~repro.analysis.callgraph`) with taint-style
seed dataflow (:mod:`~repro.analysis.dataflow`).

The static side is paired with a runtime determinism sanitizer
(:mod:`~repro.analysis.sanitizer`): under ``REPRO_SANITIZE=1`` the
cluster loop and the sim engine record canonical per-epoch state
digests that attribute any divergence to a first epoch/node/field.

Entry points: ``repro-power lint`` (CLI subcommand),
``scripts/lint.py`` (standalone, CI), and :func:`lint_paths` (API).
"""

from __future__ import annotations

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.engine import LintReport, lint_paths, lint_sources
from repro.analysis.findings import Finding, Severity
from repro.analysis.registry import Rule, RuleRegistry, default_registry
from repro.analysis.source import SourceFile, Suppression

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintReport",
    "Rule",
    "RuleRegistry",
    "Severity",
    "SourceFile",
    "Suppression",
    "default_registry",
    "lint_paths",
    "lint_sources",
]
