"""``repro-lint`` command line, shared by the CLI and scripts/lint.py.

Usage::

    repro-power lint                       # lint src/ against the ledger
    repro-power lint src/repro/sim         # narrower scope
    repro-power lint --check               # CI gate (ledger must be exact)
    repro-power lint --write-baseline      # regenerate the ledger
    repro-power lint --explain unit-safety # print a rule's contract
    repro-power lint --list-rules

Exit codes: 0 clean, 1 findings (or ledger drift in ``--check``),
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
import textwrap
from pathlib import Path
from typing import Sequence, TextIO

from repro.analysis.baseline import (
    Baseline,
    DEFAULT_BASELINE_NAME,
)
from repro.analysis.engine import lint_paths, render_report
from repro.analysis.registry import RuleRegistry, default_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based static analysis enforcing this repo's "
            "determinism, unit-safety, and daemon fail-safety contracts"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/)",
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repository root for relative paths and the default "
             "baseline (default: cwd)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"suppression ledger (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the ledger: report every finding",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the ledger from the tree's inline suppressions",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="CI mode: also fail when inline suppressions and the "
             "committed ledger drift apart",
    )
    parser.add_argument(
        "--graph", action="store_true",
        help="print the project call-graph summary the whole-program "
             "rules analyse (modules, edges, fork-worker roots, "
             "reachability), then exit",
    )
    parser.add_argument(
        "--explain", default=None, metavar="RULE",
        help="print a rule's contract and DESIGN.md reference, then exit",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list registered rules with one-line summaries",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON (blocking + suppressed + baselined)",
    )
    return parser


def _explain(rule_name: str, registry: RuleRegistry, stream: TextIO) -> int:
    try:
        rule = registry.rule(rule_name)
    except KeyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    stream.write(f"{rule.name} — {rule.design_ref}\n\n")
    stream.write(textwrap.fill(rule.contract, width=72) + "\n")
    if rule.hint:
        stream.write(f"\nfix: {rule.hint}\n")
    stream.write(
        "\nsuppress a deliberate exception with\n"
        f"    # repro-lint: disable={rule.name} — <reason>\n"
        "and record it in the ledger via scripts/lint.py "
        "--write-baseline.\n"
    )
    return 0


def _print_graph(paths: Sequence[Path], root: Path, stream: TextIO) -> int:
    """Summarise the call graph the whole-program rules run over."""
    from repro.analysis.callgraph import Project
    from repro.analysis.engine import iter_python_files
    from repro.analysis.source import SourceFile

    sources: list[SourceFile] = []
    for file_path in iter_python_files(paths):
        try:
            sources.append(SourceFile.from_path(file_path, root))
        except SyntaxError:
            continue  # the lint pass reports parse errors; skip here
    project = Project(sources)
    edges = project.edges()
    n_edges = sum(len(callees) for callees in edges.values())
    n_fuzzy = sum(
        1 for callees in edges.values() for _, fuzzy in callees if fuzzy
    )
    roots = project.worker_roots()
    reachable = project.reachable_from(roots)
    n_functions = sum(
        len(mod.functions)
        + sum(len(cls.methods) for cls in mod.classes.values())
        for mod in project.modules.values()
    )
    stream.write(
        f"call graph: {len(project.modules)} modules, "
        f"{n_functions} functions, {n_edges} call edges "
        f"({n_fuzzy} fuzzy)\n"
    )
    if roots:
        stream.write(f"fork-worker roots ({len(roots)}):\n")
        for func in sorted(roots, key=lambda f: f.qualname):
            stream.write(f"  {func.qualname}\n")
        stream.write(
            f"reachable from workers: {len(reachable)} functions\n"
        )
        for qualname in sorted(reachable):
            chain = " -> ".join(reachable[qualname])
            stream.write(f"  {qualname}  (via {chain})\n")
    else:
        stream.write("fork-worker roots: none detected\n")
    return 0


def run_lint(
    argv: Sequence[str] | None = None,
    *,
    stream: TextIO | None = None,
) -> int:
    stream = stream or sys.stdout
    args = build_parser().parse_args(argv)
    registry = default_registry()

    if args.list_rules:
        width = max(len(name) for name in registry.names())
        for rule in registry:
            summary = rule.contract.split(":")[0].split(";")[0]
            stream.write(
                f"{rule.name.ljust(width)}  {summary[:68]}\n"
            )
        return 0
    if args.explain is not None:
        return _explain(args.explain, registry, stream)

    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = [Path(p) for p in (args.paths or [root / "src"])]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {missing[0]}", file=sys.stderr)
        return 2
    if args.graph:
        return _print_graph(paths, root, stream)
    baseline_path = (
        Path(args.baseline) if args.baseline
        else root / DEFAULT_BASELINE_NAME
    )
    try:
        baseline = (
            Baseline() if args.no_baseline or args.write_baseline
            else Baseline.load(baseline_path)
        )
    except (ValueError, KeyError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = lint_paths(
        paths, root=root, registry=registry,
        baseline=baseline, check=args.check and not args.write_baseline,
    )

    if args.write_baseline:
        new_ledger = Baseline.from_findings(report.suppressed)
        new_ledger.save(baseline_path)
        stream.write(
            f"wrote {len(new_ledger.entries)} suppression entries to "
            f"{baseline_path}\n"
        )
        # still fail on findings no suppression covers
        report.blocking = [
            f for f in report.blocking if not f.suppressed
        ]

    if args.as_json:
        stream.write(json.dumps(
            {
                "files_checked": report.files_checked,
                "blocking": [f.to_jsonable() for f in report.blocking],
                "suppressed": [f.to_jsonable() for f in report.suppressed],
                "baselined": [f.to_jsonable() for f in report.baselined],
            },
            indent=2,
        ) + "\n")
    else:
        render_report(report, stream, registry=registry)
    return 0 if report.ok else 1
