"""Runtime determinism sanitizer: canonical per-epoch state digests.

The static rules prove the *absence of known bug patterns*; the
sanitizer checks the property itself at runtime.  Under
``REPRO_SANITIZE=1`` every stepper/engine combination records a
canonical digest of its per-epoch state (node reports in the cluster
loop, chip counters in the sim engine), and
:func:`first_divergence` compares two recordings and names the first
epoch, node, and field where they disagree — with both values, so the
diff is readable instead of "hashes differ".

Digest format (DESIGN.md §15.5): one *row* per ``(epoch, node)``,
mapping field names to canonical strings — floats via ``repr`` (exact
round-trip, so bit-level divergence is visible), containers recursively
canonicalised with sorted keys.  :meth:`StateDigest.digest` folds all
rows into one SHA-256 for cheap equality; the rows themselves are kept
so a mismatch can be attributed.

The module is dependency-free on purpose: the cluster runtime and the
sim engine import it, never the reverse.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Mapping

#: environment switch: any value but ""/"0" enables the sanitizer.
SANITIZE_ENV = "REPRO_SANITIZE"


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for per-epoch digests."""
    return os.environ.get(SANITIZE_ENV, "") not in ("", "0")


def canonical(value: object) -> object:
    """JSON-safe canonical form: exact floats, ordered containers."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        # repr round-trips exactly, so 1.0 != 1.0000...1; float() first
        # because numpy scalars subclass float but repr differently
        return repr(float(value))
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (frozenset, set)):
        return sorted(str(canonical(v)) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonical(dataclasses.asdict(value))
    return repr(value)


def digest_fields(obj: object) -> dict[str, object]:
    """Canonical field map of a dataclass (or mapping) state object."""
    if isinstance(obj, Mapping):
        items = obj
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        items = {
            f.name: getattr(obj, f.name)
            for f in dataclasses.fields(obj)
        }
    else:
        items = vars(obj)
    return {name: canonical(value) for name, value in items.items()}


@dataclass(frozen=True)
class Divergence:
    """First point where two recordings disagree."""

    epoch: int
    node: str
    field: str
    left_label: str
    right_label: str
    left: object
    right: object

    def describe(self) -> str:
        return (
            f"determinism divergence at epoch {self.epoch}, node "
            f"{self.node!r}, field {self.field!r}: "
            f"{self.left_label} saw {self.left!r}, "
            f"{self.right_label} saw {self.right!r}"
        )


class StateDigest:
    """One run's canonical per-epoch state recording."""

    def __init__(self, label: str) -> None:
        self.label = label
        self._rows: dict[tuple[int, str], dict[str, object]] = {}

    def record(
        self, epoch: int, node: str, fields: Mapping[str, object]
    ) -> None:
        """Record one (epoch, node) state row (canonicalised here)."""
        self._rows[(epoch, node)] = {
            name: canonical(value) for name, value in fields.items()
        }

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> dict[tuple[int, str], dict[str, object]]:
        return dict(self._rows)

    def digest(self) -> str:
        """SHA-256 over all rows in (epoch, node) order."""
        hasher = hashlib.sha256()
        for key in sorted(self._rows):
            epoch, node = key
            payload = json.dumps(
                [epoch, node, self._rows[key]], sort_keys=True,
            )
            hasher.update(payload.encode("utf-8"))
        return hasher.hexdigest()


def first_divergence(
    left: StateDigest, right: StateDigest
) -> Divergence | None:
    """The first (epoch, node, field) where two recordings disagree.

    "First" is by epoch, then node name, then field name — stable and
    independent of recording order.  A row present on one side only is
    reported with the sentinel value ``"<missing>"``.
    """
    keys = sorted(set(left.rows) | set(right.rows))
    for epoch, node in keys:
        a = left.rows.get((epoch, node))
        b = right.rows.get((epoch, node))
        if a is None or b is None:
            return Divergence(
                epoch=epoch, node=node, field="<row>",
                left_label=left.label, right_label=right.label,
                left=a if a is not None else "<missing>",
                right=b if b is not None else "<missing>",
            )
        for field in sorted(set(a) | set(b)):
            va = a.get(field, "<missing>")
            vb = b.get(field, "<missing>")
            if va != vb:
                return Divergence(
                    epoch=epoch, node=node, field=field,
                    left_label=left.label, right_label=right.label,
                    left=va, right=vb,
                )
    return None


def compare_all(digests: list[StateDigest]) -> Divergence | None:
    """First divergence of any recording against the first one."""
    if not digests:
        return None
    reference = digests[0]
    for other in digests[1:]:
        divergence = first_divergence(reference, other)
        if divergence is not None:
            return divergence
    return None
