"""Finding and severity types for the ``repro-lint`` static analyser.

A :class:`Finding` is one violation of a machine-checked contract at a
``file:line:col`` location.  Findings are value objects: the engine
marks suppression by building a replaced copy, and the baseline matches
findings structurally (rule + path + stripped source line) so entries
survive unrelated line-number churn.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class Severity(enum.Enum):
    """How a finding is weighted by the CI gate (both currently fail)."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One contract violation at a source location."""

    rule: str
    #: repo-relative posix path of the offending file.
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR
    #: short fix hint rendered under the finding.
    hint: str = ""
    #: stripped source line — the baseline's line-churn-proof anchor.
    context: str = ""
    #: set by the engine when an inline disable comment covers this.
    suppressed: bool = False
    #: the reason string carried by the covering disable comment.
    suppress_reason: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def key(self) -> tuple[str, str, str]:
        """Structural identity used for baseline matching."""
        return (self.rule, self.path, self.context)

    def as_suppressed(self, reason: str) -> "Finding":
        return replace(self, suppressed=True, suppress_reason=reason)

    def to_jsonable(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
            "suppressed": self.suppressed,
            "reason": self.suppress_reason,
            "context": self.context,
        }
