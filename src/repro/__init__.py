"""repro — reproduction of "Per-Application Power Delivery" (EuroSys 2019).

The library has three layers:

* **Substrate** (:mod:`repro.hw`, :mod:`repro.sim`, :mod:`repro.workloads`,
  :mod:`repro.sched`, :mod:`repro.telemetry`) — an emulated pair of the
  paper's evaluation platforms (Skylake Xeon 4114 and Ryzen 1700X) with
  MSRs, per-core DVFS, RAPL, turbo, C-states, SPEC-like workloads, the
  websearch latency service and a turbostat-like sampler.
* **Policies** (:mod:`repro.core`) — the paper's contribution: the
  priority policy, power/frequency/performance proportional shares,
  min-funding revocation, the Ryzen three-P-state selector, and the
  userspace daemon that runs them at 1 Hz.
* **Experiments** (:mod:`repro.experiments`) — one module per figure or
  table in the paper's evaluation, regenerating the same rows/series.

Quickstart::

    from repro import ExperimentConfig, AppSpec, build_stack, Priority

    config = ExperimentConfig(
        platform="skylake", policy="frequency-shares", limit_w=50.0,
        apps=(AppSpec("leela", shares=90), AppSpec("cactusBSSN", shares=10)),
    )
    stack = build_stack(config)
    stack.engine.run(30.0)          # 30 simulated seconds
    print(stack.daemon.history[-1])
"""

from repro.config import (
    AppSpec,
    ExperimentConfig,
    ExperimentStack,
    POLICY_REGISTRY,
    build_stack,
)
from repro.core.types import ManagedApp, Priority
from repro.errors import ReproError
from repro.hw.platform import PLATFORM_REGISTRY, get_platform

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "ExperimentConfig",
    "ExperimentStack",
    "POLICY_REGISTRY",
    "PLATFORM_REGISTRY",
    "build_stack",
    "get_platform",
    "ManagedApp",
    "Priority",
    "ReproError",
    "__version__",
]
