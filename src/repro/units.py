"""Unit helpers and small numeric utilities used across the library.

The simulator works internally in:

* frequency — megahertz (``float`` MHz),
* power — watts,
* energy — joules (RAPL counters expose micro-joule integers, as real
  hardware does),
* time — seconds for wall-clock quantities, integer *ticks* inside the
  engine (1 tick = 1 ms by default).

Keeping these conventions in one module (rather than a heavyweight unit
type system) matches how OS-level tooling such as turbostat treats the
values, while the helper functions centralise the conversions that are
easy to get wrong (kHz sysfs values, micro-joule counters with wraparound).
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

MHZ_PER_GHZ = 1000.0
KHZ_PER_MHZ = 1000.0
MICROJOULE = 1e-6

#: Default engine tick length in seconds (1 ms).  Coarse relative to real
#: DVFS transition latency (1-30 us, paper section 2.1) but far finer than
#: the 1 s daemon control period, so control-loop dynamics are preserved.
DEFAULT_TICK_SECONDS = 1e-3


def ghz(value: float) -> float:
    """Convert GHz to the library's internal MHz representation."""
    return value * MHZ_PER_GHZ


def mhz_to_ghz(value_mhz: float) -> float:
    """Convert internal MHz to GHz for display."""
    return value_mhz / MHZ_PER_GHZ


def mhz_to_khz(value_mhz: float) -> int:
    """Convert MHz to the integer kHz convention used by sysfs cpufreq."""
    return int(round(value_mhz * KHZ_PER_MHZ))


def khz_to_mhz(value_khz: int) -> float:
    """Convert sysfs kHz to MHz."""
    return value_khz / KHZ_PER_MHZ


def joules_to_uj(value_j: float) -> int:
    """Convert joules to the integer micro-joule convention of RAPL MSRs."""
    return int(round(value_j / MICROJOULE))


def uj_to_joules(value_uj: int) -> float:
    """Convert RAPL micro-joules to joules."""
    return value_uj * MICROJOULE


#: default relative tolerance for float comparisons: generous against
#: accumulated rounding over a long run, far below any physically
#: meaningful difference in watts, MHz, or seconds.
FLOAT_REL_TOL = 1e-9
#: default absolute tolerance, so comparisons against 0.0 still work.
FLOAT_ABS_TOL = 1e-12


def approx_eq(
    a: float,
    b: float,
    *,
    rel_tol: float = FLOAT_REL_TOL,
    abs_tol: float = FLOAT_ABS_TOL,
) -> bool:
    """Tolerant float equality — the approved alternative to ``==``.

    The ``float-equality`` lint rule (DESIGN.md §10.5) bans exact
    equality on float quantities; comparisons that mean "the same
    physical value" go through here (or :func:`is_zero`), so a one-ULP
    wobble from reordered arithmetic can't flip a control decision.
    """
    return math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)


def is_zero(value: float, *, abs_tol: float = FLOAT_ABS_TOL) -> bool:
    """Tolerant test against zero (relative tolerance is useless there)."""
    return abs(value) <= abs_tol


def clamp(value: float, lo: float, hi: float) -> float:
    """Clamp ``value`` into ``[lo, hi]``.

    Raises ``ValueError`` if the interval is empty, which normally flags a
    mis-ordered P-state table rather than a caller bug.
    """
    if lo > hi:
        raise ValueError(f"empty clamp interval [{lo}, {hi}]")
    return max(lo, min(hi, value))


def quantize_down(value: float, grid: Sequence[float]) -> float:
    """Snap ``value`` to the largest grid point that is <= value.

    ``grid`` must be sorted ascending.  Values below the grid snap to the
    lowest point: hardware never runs below its minimum P-state.
    """
    if not grid:
        raise ValueError("empty frequency grid")
    chosen = grid[0]
    for point in grid:
        if point <= value + 1e-9:
            chosen = point
        else:
            break
    return chosen


def quantize_nearest(value: float, grid: Sequence[float]) -> float:
    """Snap ``value`` to the nearest grid point (ties toward the lower)."""
    if not grid:
        raise ValueError("empty frequency grid")
    return min(grid, key=lambda point: (abs(point - value), point))


def weighted_mean(values: Iterable[float], weights: Iterable[float]) -> float:
    """Weighted arithmetic mean; raises on zero total weight."""
    num = 0.0
    den = 0.0
    for value, weight in zip(values, weights):
        num += value * weight
        den += weight
    # repro-lint: disable=float-equality — guarding exact-zero division only
    if den == 0.0:
        raise ValueError("zero total weight")
    return num / den


def percentile(samples: Sequence[float], pct: float) -> float:
    """Linear-interpolated percentile of ``samples`` (pct in [0, 100]).

    Implemented locally (rather than via numpy) so telemetry code has no
    array dependency on hot paths and behaves identically on empty input
    guards.
    """
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile {pct} outside [0, 100]")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    # lo + frac*(hi-lo) rather than a blended sum: exact when the two
    # samples are equal, so results never leave [min, max] by an ULP
    return ordered[lo] + frac * (ordered[hi] - ordered[lo])


def normalize(values: Sequence[float]) -> list[float]:
    """Scale non-negative values so they sum to 1.0."""
    total = float(sum(values))
    if total <= 0.0:
        raise ValueError("cannot normalize non-positive total")
    return [value / total for value in values]
