"""Cluster arbitration experiment: fairness and safety at fleet scale.

The single-socket experiments show one daemon honouring one limit; this
experiment shows the :mod:`repro.cluster` arbiter composing many of
them under one facility budget.  A seeded N-node cluster (default: four
nodes with 2:2:1:1 shares, each running a Table-2-style mix) runs for a
warm-up plus a measurement window; the result reports, per node, the
steady mean cap and daemon-measured power, plus the run-wide safety
witnesses:

* ``max_cap_sum_w`` — the largest per-epoch sum of granted caps, which
  must never exceed the budget (the hierarchy invariant), and
* ``cap_violations`` — epochs where it did (always 0).

With a transport-fault scenario configured the result also summarizes
control-plane health: whole-run envelope counters, the number of
node-epochs spent with an expired lease (daemon safe mode latched), and
how many grants went out demand-blind (``degraded``).

The run is a pure function of its :class:`~repro.cluster.config.
ClusterConfig` plus durations, so results round-trip through the same
content-addressed cache the steady-state experiments use (see
:meth:`repro.experiments.cache.ResultCache.get_cluster`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from dataclasses import field as dataclasses_field

from repro.cluster import ClusterConfig, ClusterRun, NodeSpec, run_cluster
from repro.cluster.config import (
    cluster_config_from_jsonable,
    cluster_config_to_jsonable,
)
from repro.config import AppSpec
from repro.errors import ConfigError

#: tolerance when counting cap-sum violations, watts.
_INVARIANT_SLACK_W = 1e-6

#: throttle-pressure ceiling for the tail-latency SLO proxy: an active
#: node-epoch meeting it ran its apps within 25% of platform max
#: frequency — the paper's stand-in for "the service held its tail".
SLO_THROTTLE_CEILING = 0.25


@dataclass(frozen=True)
class NodeClusterResult:
    """One node's steady-state aggregate over the measurement window."""

    name: str
    shares: float
    mean_cap_w: float
    mean_power_w: float
    mean_throttle: float
    epochs_reported: int
    crashed: bool

    @property
    def utilization(self) -> float:
        """Fraction of the granted cap the node actually drew."""
        if self.mean_cap_w <= 0:
            return 0.0
        return self.mean_power_w / self.mean_cap_w


@dataclass(frozen=True)
class ClusterRunResult:
    """Aggregated outcome of one cluster experiment."""

    config: ClusterConfig
    duration_s: float
    warmup_s: float
    nodes: tuple[NodeClusterResult, ...]
    mean_total_power_w: float
    max_cap_sum_w: float
    cap_violations: int
    #: whole-run control-plane counters (sent/delivered/dropped/
    #: delayed/duplicated/stale); all-zero dropped..stale when quiet.
    transport: dict[str, int] = dataclasses_field(default_factory=dict)
    #: node-epochs spent in lease state SAFE (RAPL backstop latched).
    safe_node_epochs: int = 0
    #: demand-blind grants across the run (sum of per-epoch degraded).
    degraded_grants: int = 0
    #: arbiter crashes recovered by journal redo during the run.
    crash_recoveries: int = 0
    #: node reboots executed by the crash schedule during the run.
    node_restarts: int = 0
    #: grants shed to the floor under oversubscription contention
    #: (sum of per-epoch shed members; fleet runs only).
    shed_grants: int = 0
    #: node-epochs the diurnal schedule left idle (simulation skipped).
    idle_node_epochs: int = 0
    #: rack water-fills actually recomputed across the run.
    fleet_refilled: int = 0
    #: rack fills reused from the dirty-subtree cache across the run.
    fleet_reused: int = 0
    #: fraction of post-warm-up *active* node-epochs meeting the
    #: throttle SLO (1.0 when there were none, or on flat runs).
    slo_attainment: float = 1.0
    #: telemetry reports flagged by the demand validator across the run
    #: (sum of per-epoch violation records).
    trust_violations: int = 0
    #: node-epochs spent quarantined by the trust book.
    quarantined_node_epochs: int = 0
    #: epochs the facility spent at any brownout level above NORMAL.
    brownout_epochs: int = 0

    def node(self, name: str) -> NodeClusterResult:
        for result in self.nodes:
            if result.name == name:
                return result
        raise ConfigError(f"no node {name!r} in result")

    def to_rows(self) -> list[dict]:
        rows = []
        for node in self.nodes:
            rows.append(
                {
                    "node": node.name,
                    "shares": node.shares,
                    "cap_w": node.mean_cap_w,
                    "power_w": node.mean_power_w,
                    "util": node.utilization,
                    "throttle": node.mean_throttle,
                    "epochs": node.epochs_reported,
                    "crashed": node.crashed,
                }
            )
        return rows


def default_cluster_config(
    *,
    n_nodes: int = 4,
    budget_w: float = 150.0,
    seed: int = 0,
    transport: str | None = None,
    lease_ttl_epochs: int = 3,
    crash_faults: str | None = None,
    telemetry: str | None = None,
) -> ClusterConfig:
    """The canonical evaluation cluster: 2:2:1:1-style shares, six
    compute-bound apps per node so the budget genuinely contends."""
    if n_nodes < 1:
        raise ConfigError("cluster needs at least one node")
    apps = tuple(
        AppSpec("cactusBSSN", shares=50.0) if i % 2 else
        AppSpec("leela", shares=50.0)
        for i in range(6)
    )
    nodes = tuple(
        NodeSpec(
            name=f"node{i}",
            apps=apps,
            shares=2.0 if i < n_nodes // 2 else 1.0,
            min_cap_w=12.0,
        )
        for i in range(n_nodes)
    )
    return ClusterConfig(
        budget_w=budget_w,
        nodes=nodes,
        seed=seed,
        transport=transport,
        lease_ttl_epochs=lease_ttl_epochs,
        crash_faults=crash_faults,
        telemetry=telemetry,
    )


def summarize_cluster_run(
    run: ClusterRun, *, duration_s: float, warmup_s: float
) -> ClusterRunResult:
    """Aggregate a finished run's steady window into a result."""
    if warmup_s >= duration_s:
        raise ConfigError("warm-up must be shorter than the run")
    trace = run.trace
    nodes = []
    for spec in run.config.nodes:
        series_name = f"{spec.name}.power_w"
        if series_name not in trace:
            continue  # never admitted (joined after the run ended)
        power = trace.series(series_name).window(warmup_s)
        caps = trace.series(f"{spec.name}.cap_w").window(warmup_s)
        throttle = trace.series(f"{spec.name}.throttle").window(warmup_s)
        if not len(power):
            # active only before the measurement window (left/crashed)
            power = trace.series(series_name)
            caps = trace.series(f"{spec.name}.cap_w")
            throttle = trace.series(f"{spec.name}.throttle")
        crashed = any(
            report.crashed
            for reports in run.reports
            for report in reports.values()
            if report.name == spec.name
        )
        nodes.append(
            NodeClusterResult(
                name=spec.name,
                shares=spec.shares,
                mean_cap_w=caps.mean(),
                mean_power_w=power.mean(),
                mean_throttle=throttle.mean(),
                epochs_reported=len(power),
                crashed=crashed,
            )
        )
    total = trace.series("cluster.power_w").window(warmup_s)
    violations = sum(
        1
        for grant in run.grants
        if grant.total_w > run.config.budget_w + _INVARIANT_SLACK_W
    )
    stats = run.transport_stats
    transport = {
        "sent": stats.sent,
        "delivered": stats.delivered,
        "dropped": stats.dropped,
        "delayed": stats.delayed,
        "duplicated": stats.duplicated,
        "stale": stats.stale,
    }
    safe_node_epochs = sum(
        1
        for states in run.lease_states
        for state in states.values()
        if state == "safe"
    )
    epoch_s = run.config.epoch_s
    slo_met = slo_total = 0
    for index, reports in enumerate(run.reports):
        if (index + 1) * epoch_s <= warmup_s:
            continue
        idle = run.idle_sets[index] if index < len(run.idle_sets) else ()
        for name in reports:
            if name in idle:
                continue
            slo_total += 1
            pressure = reports[name].throttle_pressure
            if pressure <= SLO_THROTTLE_CEILING:
                slo_met += 1
    return ClusterRunResult(
        config=run.config,
        duration_s=duration_s,
        warmup_s=warmup_s,
        nodes=tuple(nodes),
        mean_total_power_w=total.mean() if len(total) else 0.0,
        max_cap_sum_w=run.max_cap_sum_w(),
        cap_violations=violations,
        transport=transport,
        safe_node_epochs=safe_node_epochs,
        degraded_grants=sum(len(g.degraded) for g in run.grants),
        crash_recoveries=run.crash_recoveries,
        node_restarts=len(run.node_restarts),
        shed_grants=sum(len(g.shed) for g in run.grants),
        idle_node_epochs=sum(len(idle) for idle in run.idle_sets),
        fleet_refilled=sum(
            g.fleet_stats.get("refilled", 0) for g in run.grants
        ),
        fleet_reused=sum(
            g.fleet_stats.get("reused", 0) for g in run.grants
        ),
        slo_attainment=slo_met / slo_total if slo_total else 1.0,
        trust_violations=sum(
            len(g.trust_violations) for g in run.grants
        ),
        quarantined_node_epochs=sum(
            len(g.quarantined) for g in run.grants
        ),
        brownout_epochs=sum(1 for g in run.grants if g.brownout > 0),
    )


def run_cluster_experiment(
    config: ClusterConfig | None = None,
    *,
    duration_s: float = 120.0,
    warmup_s: float = 40.0,
    jobs: int | None = None,
    cache=None,
) -> ClusterRunResult:
    """Run (or fetch from cache) one cluster experiment."""
    if config is None:
        config = default_cluster_config()
    if cache is not None:
        hit = cache.get_cluster(config, duration_s, warmup_s)
        if hit is not None:
            return hit
    run = run_cluster(config, duration_s, jobs=jobs)
    result = summarize_cluster_run(
        run, duration_s=duration_s, warmup_s=warmup_s
    )
    if cache is not None:
        cache.put_cluster(config, duration_s, warmup_s, result)
    return result


# -- cache serialization ---------------------------------------------------------


def cluster_result_to_jsonable(result: ClusterRunResult) -> dict:
    return {
        "config": cluster_config_to_jsonable(result.config),
        "duration_s": result.duration_s,
        "warmup_s": result.warmup_s,
        "nodes": [asdict(node) for node in result.nodes],
        "mean_total_power_w": result.mean_total_power_w,
        "max_cap_sum_w": result.max_cap_sum_w,
        "cap_violations": result.cap_violations,
        "transport": dict(result.transport),
        "safe_node_epochs": result.safe_node_epochs,
        "degraded_grants": result.degraded_grants,
        "crash_recoveries": result.crash_recoveries,
        "node_restarts": result.node_restarts,
        "shed_grants": result.shed_grants,
        "idle_node_epochs": result.idle_node_epochs,
        "fleet_refilled": result.fleet_refilled,
        "fleet_reused": result.fleet_reused,
        "slo_attainment": result.slo_attainment,
        "trust_violations": result.trust_violations,
        "quarantined_node_epochs": result.quarantined_node_epochs,
        "brownout_epochs": result.brownout_epochs,
    }


def cluster_result_from_jsonable(data: dict) -> ClusterRunResult:
    return ClusterRunResult(
        config=cluster_config_from_jsonable(data["config"]),
        duration_s=data["duration_s"],
        warmup_s=data["warmup_s"],
        nodes=tuple(
            NodeClusterResult(**node) for node in data["nodes"]
        ),
        mean_total_power_w=data["mean_total_power_w"],
        max_cap_sum_w=data["max_cap_sum_w"],
        cap_violations=data["cap_violations"],
        transport=dict(data.get("transport", {})),
        safe_node_epochs=data.get("safe_node_epochs", 0),
        degraded_grants=data.get("degraded_grants", 0),
        crash_recoveries=data.get("crash_recoveries", 0),
        node_restarts=data.get("node_restarts", 0),
        shed_grants=data.get("shed_grants", 0),
        idle_node_epochs=data.get("idle_node_epochs", 0),
        fleet_refilled=data.get("fleet_refilled", 0),
        fleet_reused=data.get("fleet_reused", 0),
        slo_attainment=data.get("slo_attainment", 1.0),
        trust_violations=data.get("trust_violations", 0),
        quarantined_node_epochs=data.get("quarantined_node_epochs", 0),
        brownout_epochs=data.get("brownout_epochs", 0),
    )
