"""ASCII sparklines and strip charts for time-series in the CLI.

The figures in the paper are plots; the CLI renders the same series as
terminal graphics so a run's dynamics (the daemon converging on a limit,
a latency tail inflating, a probe excursion) are visible without leaving
the shell.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigError

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """One-line unicode sparkline of a series.

    ``width`` downsamples (by bucket means) to at most that many cells.
    A flat series renders as mid-height bars.
    """
    if not values:
        raise ConfigError("no values to sparkline")
    data = list(values)
    if width is not None:
        if width <= 0:
            raise ConfigError("width must be positive")
        data = _downsample(data, width)
    lo, hi = min(data), max(data)
    if hi - lo < 1e-12:
        return _BARS[3] * len(data)
    span = hi - lo
    out = []
    for value in data:
        index = int((value - lo) / span * (len(_BARS) - 1))
        out.append(_BARS[index])
    return "".join(out)


def _downsample(values: list[float], width: int) -> list[float]:
    if len(values) <= width:
        return values
    out = []
    for bucket in range(width):
        start = bucket * len(values) // width
        end = max((bucket + 1) * len(values) // width, start + 1)
        chunk = values[start:end]
        out.append(sum(chunk) / len(chunk))
    return out


def strip_chart(
    values: Sequence[float],
    *,
    height: int = 8,
    width: int = 60,
    label: str = "",
    reference: float | None = None,
) -> str:
    """Multi-line ASCII chart with min/max labels and an optional
    reference line (e.g. the power limit)."""
    if not values:
        raise ConfigError("no values to chart")
    if height < 2 or width < 2:
        raise ConfigError("chart too small")
    data = _downsample(list(values), width)
    lo, hi = min(data), max(data)
    if reference is not None:
        lo, hi = min(lo, reference), max(hi, reference)
    if hi - lo < 1e-12:
        hi = lo + 1.0
    span = hi - lo
    rows = [[" "] * len(data) for _ in range(height)]
    for x, value in enumerate(data):
        y = int((value - lo) / span * (height - 1))
        rows[height - 1 - y][x] = "*"
    if reference is not None:
        ref_y = height - 1 - int((reference - lo) / span * (height - 1))
        for x in range(len(data)):
            if rows[ref_y][x] == " ":
                rows[ref_y][x] = "-"
    lines = []
    if label:
        lines.append(label)
    lines.append(f"{hi:8.1f} ┤" + "".join(rows[0]))
    for row in rows[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{lo:8.1f} ┤" + "".join(rows[-1]))
    return "\n".join(lines)
