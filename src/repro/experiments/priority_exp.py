"""Priority-policy experiments (paper Figs 7 and 8, Tables 2, section 6.1).

Skylake runs the Table 2 workload mixes — cactusBSSN (HD) and leela (LD)
split into high/low priority — under the priority policy and under RAPL,
at 85/50/40 W.  Ryzen runs 8H0L/6H2L/4H4L/2H6L mixes under the priority
policy (no RAPL results: the mechanism is undocumented there).

Shapes to reproduce:

* starvation of LP applications at low limits with many HP apps
  (at 50 W LP runs only with <= 5 HP on Skylake; at 40 W only with 1 HP),
* opportunistic scaling: with few HP apps and LP starved, HP runs
  *faster* at 40 W than at 85 W,
* RAPL, by contrast, treats HP and LP identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AppSpec, ExperimentConfig
from repro.core.types import Priority
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ExperimentTask, run_tasks
from repro.experiments.runner import BATCH_TICK_S, SteadyRunResult

#: Table 2 of the paper: Skylake workload mixes.  Tuples are counts of
#: (cactusBSSN-HP, leela-HP, cactusBSSN-LP, leela-LP).
TABLE2_MIXES: dict[str, tuple[int, int, int, int]] = {
    "10H0L": (5, 5, 0, 0),
    "7H3L": (4, 3, 1, 2),
    "5H5L": (5, 0, 0, 5),
    "3H7L": (2, 1, 3, 4),
    "1H9L": (1, 0, 4, 5),
}

#: Ryzen mixes (section 6.1): counts of the same four classes over the
#: 8-core part, with equal HD/LD split inside each class where possible.
RYZEN_MIXES: dict[str, tuple[int, int, int, int]] = {
    "8H0L": (4, 4, 0, 0),
    "6H2L": (3, 3, 1, 1),
    "4H4L": (4, 0, 0, 4),
    "2H6L": (1, 1, 3, 3),
}


def mix_app_specs(mix: tuple[int, int, int, int]) -> tuple[AppSpec, ...]:
    """Expand a Table 2-style mix tuple into AppSpecs."""
    hd_hp, ld_hp, hd_lp, ld_lp = mix
    specs: list[AppSpec] = []
    specs += [AppSpec("cactusBSSN", priority=Priority.HIGH)] * hd_hp
    specs += [AppSpec("leela", priority=Priority.HIGH)] * ld_hp
    specs += [AppSpec("cactusBSSN", priority=Priority.LOW)] * hd_lp
    specs += [AppSpec("leela", priority=Priority.LOW)] * ld_lp
    if not specs:
        raise ConfigError("empty mix")
    return tuple(specs)


@dataclass(frozen=True)
class PriorityCell:
    """One (mix, limit, policy) cell of Fig 7 / Fig 8."""

    mix: str
    limit_w: float
    policy: str
    hp_norm_perf: float
    lp_norm_perf: float
    hp_freq_mhz: float
    lp_freq_mhz: float
    lp_parked_fraction: float
    package_power_w: float
    #: core-power mean per class; only populated on Ryzen.
    hp_core_power_w: float | None = None
    lp_core_power_w: float | None = None


@dataclass(frozen=True)
class PriorityResult:
    platform: str
    cells: tuple[PriorityCell, ...]

    def cell(self, mix: str, limit_w: float, policy: str) -> PriorityCell:
        for cell in self.cells:
            if (
                cell.mix == mix
                and abs(cell.limit_w - limit_w) < 1e-6
                and cell.policy == policy
            ):
                return cell
        raise ConfigError(f"no cell ({mix}, {limit_w}, {policy})")

    def to_rows(self) -> list[dict]:
        return [
            {
                "mix": c.mix,
                "limit_w": c.limit_w,
                "policy": c.policy,
                "hp_perf": c.hp_norm_perf,
                "lp_perf": c.lp_norm_perf,
                "hp_mhz": c.hp_freq_mhz,
                "lp_mhz": c.lp_freq_mhz,
                "lp_parked": c.lp_parked_fraction,
                "pkg_w": c.package_power_w,
                "hp_core_w": c.hp_core_power_w,
                "lp_core_w": c.lp_core_power_w,
            }
            for c in self.cells
        ]


def _classify(result: SteadyRunResult, specs: tuple[AppSpec, ...]):
    hp_labels, lp_labels = [], []
    for app_result, spec in zip(result.apps, specs):
        (hp_labels if spec.priority is Priority.HIGH else lp_labels).append(
            app_result.label
        )
    return hp_labels, lp_labels


def _cell_from_run(
    result: SteadyRunResult,
    specs: tuple[AppSpec, ...],
    mix: str,
    limit_w: float,
    policy: str,
    per_core_power: bool,
) -> PriorityCell:
    hp_labels, lp_labels = _classify(result, specs)

    def stats(labels):
        if not labels:
            return 0.0, 0.0, 0.0, None
        perf = result.mean_over(labels, "normalized_performance")
        freq = result.mean_over(labels, "mean_frequency_mhz")
        parked = result.mean_over(labels, "parked_fraction")
        power = (
            result.mean_over(labels, "mean_power_w")
            if per_core_power
            else None
        )
        return perf, freq, parked, power

    hp_perf, hp_freq, _hp_parked, hp_power = stats(hp_labels)
    lp_perf, lp_freq, lp_parked, lp_power = stats(lp_labels)
    return PriorityCell(
        mix=mix,
        limit_w=limit_w,
        policy=policy,
        hp_norm_perf=hp_perf,
        lp_norm_perf=lp_perf,
        hp_freq_mhz=hp_freq,
        lp_freq_mhz=lp_freq,
        lp_parked_fraction=lp_parked,
        package_power_w=result.mean_package_power_w,
        hp_core_power_w=hp_power,
        lp_core_power_w=lp_power,
    )


def run_fig7_priority_skylake(
    *,
    limits_w: tuple[float, ...] = (85.0, 50.0, 40.0),
    policies: tuple[str, ...] = ("priority", "rapl"),
    mixes: dict[str, tuple[int, int, int, int]] | None = None,
    duration_s: float = 60.0,
    warmup_s: float = 25.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> PriorityResult:
    """Priority vs RAPL on Skylake across Table 2 mixes (Fig 7)."""
    mixes = mixes or TABLE2_MIXES
    keys: list[tuple[str, tuple[AppSpec, ...], float, str]] = []
    tasks: list[ExperimentTask] = []
    for mix_name, mix in mixes.items():
        specs = mix_app_specs(mix)
        for limit in limits_w:
            for policy in policies:
                config = ExperimentConfig(
                    platform="skylake",
                    policy=policy,
                    limit_w=limit,
                    apps=specs,
                    tick_s=BATCH_TICK_S,
                )
                keys.append((mix_name, specs, limit, policy))
                tasks.append(
                    ExperimentTask(config, duration_s, warmup_s)
                )
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    cells = [
        _cell_from_run(result, specs, mix_name, limit, policy, False)
        for result, (mix_name, specs, limit, policy)
        in zip(results, keys)
    ]
    return PriorityResult(platform="skylake", cells=tuple(cells))


def run_fig8_priority_ryzen(
    *,
    limits_w: tuple[float, ...] = (95.0, 50.0, 40.0),
    mixes: dict[str, tuple[int, int, int, int]] | None = None,
    duration_s: float = 60.0,
    warmup_s: float = 25.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> PriorityResult:
    """Priority policy on Ryzen (Fig 8); includes per-class core power.

    There is no RAPL baseline: the limiting mechanism is undocumented on
    the platform (paper section 6.1), so the daemon enforces the limit
    in software — exactly the paper's setup.
    """
    mixes = mixes or RYZEN_MIXES
    keys: list[tuple[str, tuple[AppSpec, ...], float]] = []
    tasks: list[ExperimentTask] = []
    for mix_name, mix in mixes.items():
        specs = mix_app_specs(mix)
        for limit in limits_w:
            config = ExperimentConfig(
                platform="ryzen",
                policy="priority",
                limit_w=limit,
                apps=specs,
                tick_s=BATCH_TICK_S,
            )
            keys.append((mix_name, specs, limit))
            tasks.append(ExperimentTask(config, duration_s, warmup_s))
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    cells = [
        _cell_from_run(result, specs, mix_name, limit, "priority", True)
        for result, (mix_name, specs, limit) in zip(results, keys)
    ]
    return PriorityResult(platform="ryzen", cells=tuple(cells))
