"""Seeded random-mix sweeps beyond the paper's two sets.

The paper drew its Table 3 sets once (from numbergenerator.org) "for
more generalizable results".  With a simulator we can afford many draws:
:func:`run_random_sweep` repeats the Fig 11 methodology over ``n_seeds``
random 5-benchmark subsets and checks, per mix, that the share ordering
is realised in the frequency ordering — a generalisation statistic no
single hand-picked mix can give.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AppSpec, ExperimentConfig
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ExperimentTask, run_tasks
from repro.experiments.runner import BATCH_TICK_S
from repro.workloads.generator import RandomMixGenerator

#: same ascending share levels as Fig 11.
SHARE_LEVELS: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0)


@dataclass(frozen=True)
class SweepMixResult:
    seed: int
    benchmarks: tuple[str, ...]
    #: mean granted frequency per share level, ascending share order.
    freq_by_level_mhz: tuple[float, ...]
    package_power_w: float

    def ordering_violations(self, tolerance_mhz: float = 60.0) -> int:
        """Adjacent share levels whose frequency ordering is inverted by
        more than the tolerance.

        Quantisation/floor ties are excused by the tolerance; pairs
        whose higher-share app is AVX-capped are excused entirely — an
        AVX app holding big shares saturates at its frequency cap and
        the surplus legitimately flows to lower-share apps (the paper's
        Fig 11 set B shows exactly this)."""
        from repro.workloads.spec import spec_app

        violations = 0
        for index, (lower, higher) in enumerate(zip(
            self.freq_by_level_mhz, self.freq_by_level_mhz[1:]
        )):
            if spec_app(self.benchmarks[index + 1]).uses_avx:
                continue
            if higher < lower - tolerance_mhz:
                violations += 1
        return violations


@dataclass(frozen=True)
class RandomSweepResult:
    policy: str
    limit_w: float
    mixes: tuple[SweepMixResult, ...]

    def total_ordering_violations(self) -> int:
        return sum(m.ordering_violations() for m in self.mixes)

    def to_rows(self) -> list[dict]:
        rows = []
        for mix in self.mixes:
            row: dict = {"seed": mix.seed, "pkg_w": mix.package_power_w}
            for level, freq in zip(SHARE_LEVELS, mix.freq_by_level_mhz):
                row[f"s{level:.0f}_mhz"] = freq
            row["violations"] = mix.ordering_violations()
            rows.append(row)
        return rows


def run_random_sweep(
    *,
    policy: str = "frequency-shares",
    limit_w: float = 45.0,
    n_seeds: int = 5,
    duration_s: float = 40.0,
    warmup_s: float = 18.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    engine: str | None = None,
) -> RandomSweepResult:
    """Fig 11 methodology over ``n_seeds`` random benchmark subsets.

    ``engine`` overrides the ambient simulation engine for every run
    in the sweep (``None`` keeps :func:`repro.config.default_engine`);
    the result is bit-identical either way.
    """
    if n_seeds <= 0:
        raise ConfigError("need at least one seed")
    seeds_names: list[tuple[int, list[str], list[AppSpec]]] = []
    tasks: list[ExperimentTask] = []
    for seed in range(n_seeds):
        names = RandomMixGenerator(seed=seed).sample_names(5)
        specs: list[AppSpec] = []
        for index, name in enumerate(names):
            specs.extend(
                [AppSpec(name, shares=SHARE_LEVELS[index])] * 2
            )
        config = ExperimentConfig(
            platform="skylake", policy=policy, limit_w=limit_w,
            apps=tuple(specs), tick_s=BATCH_TICK_S,
            **({} if engine is None else {"engine": engine}),
        )
        seeds_names.append((seed, names, specs))
        tasks.append(ExperimentTask(config, duration_s, warmup_s))
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    mixes: list[SweepMixResult] = []
    for result, (seed, names, specs) in zip(results, seeds_names):
        freqs = []
        for index, name in enumerate(names):
            instances = [
                r for r, spec in zip(result.apps, specs)
                if spec.benchmark == name
                # repro-lint: disable=float-equality — both sides are the same SHARE_LEVELS literal
                and spec.shares == SHARE_LEVELS[index]
            ]
            freqs.append(
                sum(r.mean_frequency_mhz for r in instances)
                / len(instances)
            )
        mixes.append(
            SweepMixResult(
                seed=seed,
                benchmarks=tuple(names),
                freq_by_level_mhz=tuple(freqs),
                package_power_w=result.mean_package_power_w,
            )
        )
    return RandomSweepResult(
        policy=policy, limit_w=limit_w, mixes=tuple(mixes)
    )
