"""Content-addressed on-disk cache for steady-state experiment results.

The evaluation is dozens of independent :func:`repro.experiments.runner.
run_steady` calls, each a pure function of its frozen
:class:`~repro.config.ExperimentConfig` plus the run durations.  The
cache exploits that purity: the key is a stable SHA-256 over the
config's full field set, ``duration_s``/``warmup_s``, and a
code-version salt, and the value is the :class:`~repro.experiments.
runner.SteadyRunResult` serialized to JSON.  Floats survive the JSON
round trip exactly (``repr``-based shortest round-trip encoding), so a
cache hit returns a result equal to what the simulator would have
produced.

Invalidation rules:

* any config field change (platform, policy, limit, apps, shares,
  priorities, tick, interval, fault scenario/seed, ...) changes the key;
* changing ``duration_s`` or ``warmup_s`` changes the key;
* simulator-semantics changes must bump :data:`CACHE_VERSION`, which
  salts every key (stale entries become unreachable, not wrong);
* unreadable or schema-mismatched entries are treated as misses and
  deleted.

Environment overrides: ``REPRO_CACHE_DIR`` relocates the cache root
(default ``~/.cache/repro-power``); ``REPRO_NO_CACHE=1`` disables the
cache entirely (same effect as the CLI's ``--no-cache``).
"""

from __future__ import annotations

import enum
import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.config import AppSpec, ExperimentConfig
from repro.core.types import Priority
from repro.experiments.runner import SteadyAppResult, SteadyRunResult

if TYPE_CHECKING:
    from repro.cluster.config import ClusterConfig
    from repro.experiments.cluster_exp import ClusterRunResult

#: code-version salt folded into every cache key.  Bump whenever a
#: change alters simulator *outputs* (models, policies, aggregation);
#: pure refactors and speedups keep it.
#:
#: v2: cluster experiments joined the cache (their keys carry a
#: ``kind`` discriminator so single-socket and cluster entries can
#: never collide).
#:
#: v3: cluster runs gained the control-plane transport and cap leases
#: (new ``ClusterConfig`` fields, new result fields) — cluster outputs
#: changed shape, so v2 entries must not satisfy v3 lookups.
#:
#: v4: cluster runs gained the crash-recovery journal (``crash_faults``
#: config field, restart/recovery result fields, new trace series) —
#: v3 cluster entries predate the crash counters and must not satisfy
#: v4 lookups.
#:
#: v5: cluster runs gained telemetry validation, trust scoring, and
#: the brownout ladder (``telemetry`` config field, trust/quarantine/
#: brownout result counters, validator clamping in the grant path) —
#: v4 cluster entries predate validation and must not satisfy v5
#: lookups.
CACHE_VERSION = 5

#: default cache root (overridden by ``REPRO_CACHE_DIR``).
DEFAULT_CACHE_DIR = "~/.cache/repro-power"


def cache_disabled_by_env() -> bool:
    """True when ``REPRO_NO_CACHE`` is set to a truthy value."""
    return os.environ.get("REPRO_NO_CACHE", "") not in ("", "0", "false")


def _jsonable(obj: object) -> object:
    if isinstance(obj, enum.Enum):
        return obj.name
    raise TypeError(f"not JSON-serializable: {obj!r}")


def config_to_jsonable(config: ExperimentConfig) -> dict[str, Any]:
    """JSON form of a config (enums by name), minus the engine.

    The engine selector is deliberately excluded from the cache
    identity: the scalar and array engines are bit-identical by
    contract (the equivalence suite enforces it), so a result computed
    by either must hit for both — and keys stay byte-compatible with
    pre-engine cache entries, which is why ``CACHE_VERSION`` did not
    bump when the field appeared.
    """
    raw = asdict(config)
    raw.pop("engine", None)
    for app in raw["apps"]:
        app["priority"] = app["priority"].name
    return raw


def config_from_jsonable(data: dict[str, Any]) -> ExperimentConfig:
    apps = tuple(
        AppSpec(
            benchmark=a["benchmark"],
            shares=a["shares"],
            priority=Priority[a["priority"]],
            steady=a["steady"],
        )
        for a in data["apps"]
    )
    return ExperimentConfig(**{**data, "apps": apps})


def result_to_jsonable(result: SteadyRunResult) -> dict[str, Any]:
    return {
        "config": config_to_jsonable(result.config),
        "mean_package_power_w": result.mean_package_power_w,
        "apps": [asdict(app) for app in result.apps],
    }


def result_from_jsonable(data: dict[str, Any]) -> SteadyRunResult:
    return SteadyRunResult(
        config=config_from_jsonable(data["config"]),
        mean_package_power_w=data["mean_package_power_w"],
        apps=tuple(SteadyAppResult(**app) for app in data["apps"]),
    )


def cache_key(
    config: ExperimentConfig, duration_s: float, warmup_s: float
) -> str:
    """Stable content hash of one run's complete inputs."""
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "config": config_to_jsonable(config),
            "duration_s": duration_s,
            "warmup_s": warmup_s,
        },
        sort_keys=True,
        default=_jsonable,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def cluster_cache_key(
    config: "ClusterConfig", duration_s: float, warmup_s: float
) -> str:
    """Stable content hash of one cluster run's complete inputs.

    The ``kind`` discriminator keeps cluster keys disjoint from
    single-socket keys even if their JSON forms ever overlapped.
    """
    # local import: repro.cluster reaches back into this package via
    # the stepper's use of experiments.parallel
    from repro.cluster.config import cluster_config_to_jsonable

    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "kind": "cluster",
            "config": cluster_config_to_jsonable(config),
            "duration_s": duration_s,
            "warmup_s": warmup_s,
        },
        sort_keys=True,
        default=_jsonable,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache handle (report footer)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores


class ResultCache:
    """On-disk ``run_steady`` result cache, keyed by content hash."""

    def __init__(self, root: str | Path | None = None):
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        self.root = Path(root).expanduser()
        self.stats = CacheStats()

    @classmethod
    def from_env(cls, *, enabled: bool = True) -> "ResultCache | None":
        """Build the default cache, or None when disabled by caller/env."""
        if not enabled or cache_disabled_by_env():
            return None
        return cls()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self,
        config: ExperimentConfig,
        duration_s: float,
        warmup_s: float,
    ) -> SteadyRunResult | None:
        path = self._path(cache_key(config, duration_s, warmup_s))
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != CACHE_VERSION:
                raise ValueError("schema mismatch")
            result = result_from_jsonable(data["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # unreadable/corrupt entry: drop it and treat as a miss
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(
        self,
        config: ExperimentConfig,
        duration_s: float,
        warmup_s: float,
        result: SteadyRunResult,
    ) -> None:
        path = self._path(cache_key(config, duration_s, warmup_s))
        payload = json.dumps(
            {"schema": CACHE_VERSION, "result": result_to_jsonable(result)}
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # atomic publish so concurrent workers never see torn JSON
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            # a read-only or full cache dir degrades to no caching
            return
        self.stats.stores += 1

    # -- cluster experiments ------------------------------------------------------
    #
    # Cluster runs are pure functions of their ClusterConfig plus
    # durations, exactly like the single-socket runs above, so they get
    # the same hit/miss/store accounting on the same handle (the full
    # report's footer counts both).

    def get_cluster(
        self,
        config: "ClusterConfig",
        duration_s: float,
        warmup_s: float,
    ) -> "ClusterRunResult | None":
        from repro.experiments.cluster_exp import cluster_result_from_jsonable

        path = self._path(cluster_cache_key(config, duration_s, warmup_s))
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema") != CACHE_VERSION:
                raise ValueError("schema mismatch")
            if data.get("kind") != "cluster":
                raise ValueError("kind mismatch")
            result = cluster_result_from_jsonable(data["result"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            path.unlink(missing_ok=True)
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put_cluster(
        self,
        config: "ClusterConfig",
        duration_s: float,
        warmup_s: float,
        result: "ClusterRunResult",
    ) -> None:
        from repro.experiments.cluster_exp import cluster_result_to_jsonable

        path = self._path(cluster_cache_key(config, duration_s, warmup_s))
        payload = json.dumps(
            {
                "schema": CACHE_VERSION,
                "kind": "cluster",
                "result": cluster_result_to_jsonable(result),
            }
        )
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp, path)
        except OSError:
            return
        self.stats.stores += 1
