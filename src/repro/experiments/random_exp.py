"""Random-mix share experiments (paper Fig 11 and Table 3, section 6.3).

Two randomly drawn 5-benchmark sets (Table 3, reproduced verbatim in
:mod:`repro.workloads.generator`) run with two copies of each app on the
10-core Skylake, shares 100:75:50:25 for apps #4:#3:#2:#1 and 20 for
app #0 (the paper's stated share levels are {20, 40, 60, 80, 100}; the
figure caption quotes the 100:75:50:25 tail — we use the share levels,
which preserve both orderings).

Shapes to reproduce:

* as shares increase, frequency/power/performance increase (set A),
* exchange2 under-performs and perlbench over-performs their share under
  performance shares (frequency sensitivity),
* set B's AVX apps (cam4, lbm) saturate: they cannot reach full
  frequency even at 85 W,
* at 40 W the frequency dynamic range is too small for proportionality.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AppSpec, ExperimentConfig
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ExperimentTask, run_tasks
from repro.experiments.runner import BATCH_TICK_S
from repro.workloads.generator import TABLE3_SETS

#: share level of app #k (paper: {20, 40, 60, 80, 100}).
SHARE_LEVELS: tuple[float, ...] = (20.0, 40.0, 60.0, 80.0, 100.0)


@dataclass(frozen=True)
class RandomCell:
    """One app's aggregate in one (set, policy, limit) run."""

    app_set: str
    app_index: int
    benchmark: str
    policy: str
    limit_w: float
    shares: float
    frequency_fraction: float
    performance_fraction: float
    norm_perf: float
    mean_frequency_mhz: float
    package_power_w: float


@dataclass(frozen=True)
class RandomResult:
    cells: tuple[RandomCell, ...]

    def series(
        self, app_set: str, policy: str, limit_w: float
    ) -> list[RandomCell]:
        out = [
            c
            for c in self.cells
            if c.app_set == app_set
            and c.policy == policy
            and abs(c.limit_w - limit_w) < 1e-6
        ]
        if not out:
            raise ConfigError(f"no cells ({app_set}, {policy}, {limit_w})")
        return sorted(out, key=lambda c: c.app_index)

    def to_rows(self) -> list[dict]:
        return [
            {
                "set": c.app_set,
                "app": f"{c.app_set}{c.app_index}",
                "benchmark": c.benchmark,
                "policy": c.policy,
                "limit_w": c.limit_w,
                "shares": c.shares,
                "freq_pct": 100 * c.frequency_fraction,
                "perf_pct": 100 * c.performance_fraction,
                "norm_perf": c.norm_perf,
                "mhz": c.mean_frequency_mhz,
                "pkg_w": c.package_power_w,
            }
            for c in self.cells
        ]


def run_fig11_random_skylake(
    *,
    sets: tuple[str, ...] = ("A", "B"),
    policies: tuple[str, ...] = ("frequency-shares", "performance-shares"),
    limits_w: tuple[float, ...] = (85.0, 50.0, 40.0),
    copies: int = 2,
    duration_s: float = 60.0,
    warmup_s: float = 25.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> RandomResult:
    """Random experiments on Skylake (Fig 11)."""
    keys: list[tuple[str, tuple[str, ...], str, float]] = []
    tasks: list[ExperimentTask] = []
    for set_name in sets:
        names = TABLE3_SETS[set_name.upper()]
        specs: list[AppSpec] = []
        for index, name in enumerate(names):
            specs.extend(
                [AppSpec(name, shares=SHARE_LEVELS[index])] * copies
            )
        for policy in policies:
            for limit in limits_w:
                config = ExperimentConfig(
                    platform="skylake",
                    policy=policy,
                    limit_w=limit,
                    apps=tuple(specs),
                    tick_s=BATCH_TICK_S,
                )
                keys.append((set_name, names, policy, limit))
                tasks.append(ExperimentTask(config, duration_s, warmup_s))
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    cells: list[RandomCell] = []
    for result, (set_name, names, policy, limit) in zip(results, keys):
        freq_total = sum(
            r.mean_frequency_mhz for r in result.apps
        )
        perf_total = sum(
            r.normalized_performance for r in result.apps
        )
        for index, name in enumerate(names):
            instances = result.by_benchmark(name)
            mean_freq = sum(
                r.mean_frequency_mhz for r in instances
            ) / len(instances)
            mean_perf = sum(
                r.normalized_performance for r in instances
            ) / len(instances)
            cells.append(
                RandomCell(
                    app_set=set_name,
                    app_index=index,
                    benchmark=name,
                    policy=policy,
                    limit_w=limit,
                    shares=SHARE_LEVELS[index],
                    frequency_fraction=(
                        sum(r.mean_frequency_mhz for r in instances)
                        / freq_total
                    ),
                    performance_fraction=(
                        sum(
                            r.normalized_performance
                            for r in instances
                        )
                        / perf_total
                    ),
                    norm_perf=mean_perf,
                    mean_frequency_mhz=mean_freq,
                    package_power_w=result.mean_package_power_w,
                )
            )
    return RandomResult(cells=tuple(cells))
