"""One-shot reproduction report: every table and figure, rendered.

``repro-power report`` (or :func:`generate_report`) runs the entire
evaluation — quickly or at full length — and renders one ASCII document
mirroring the paper's evaluation section, suitable for diffing across
code changes.
"""

from __future__ import annotations

import io
import time

from repro.errors import ReproError
from repro.experiments.cache import ResultCache
from repro.experiments.report import render_kv, render_table
from repro.experiments import tables as tables_mod


def generate_report(
    *,
    quick: bool = True,
    stream=None,
    jobs: int | None = None,
    use_cache: bool = True,
) -> str:
    """Run all experiments and render the combined report.

    ``quick=True`` shortens every run (noisier but minutes, not tens of
    minutes).  ``jobs`` fans each experiment's independent steady-state
    runs across that many worker processes; ``use_cache`` round-trips
    them through the on-disk result cache so a re-run skips completed
    configs (hit/miss counts land in the footer).  Returns the report
    text; also writes progressively to ``stream`` if given.
    """
    out = io.StringIO()
    cache = ResultCache.from_env(enabled=use_cache)

    def emit(text: str = "") -> None:
        out.write(text + "\n")
        if stream is not None:
            stream.write(text + "\n")
            stream.flush()

    durations = (
        dict(duration_s=30.0, warmup_s=12.0) if quick else {}
    )
    batch = dict(durations, jobs=jobs, cache=cache)
    # wall-clock timing feeds only the cosmetic report footer; it never
    # reaches a result or a cache key
    # repro-lint: disable=determinism — cosmetic wall-clock report footer
    started = time.time()
    emit("# Per-Application Power Delivery — reproduction report")
    emit(f"mode: {'quick' if quick else 'full'}")
    emit()

    emit("## Table 1 — platform features")
    for platform in ("skylake", "ryzen"):
        emit(render_kv(tables_mod.table1_features(platform),
                       title=platform))
        emit()
    emit(render_table(tables_mod.table2_rows(), title="## Table 2 — mixes"))
    emit()
    emit(render_table(tables_mod.table3_rows(), title="## Table 3 — sets"))
    emit()

    from repro.experiments.rapl_interference import (
        run_fig1_rapl_interference,
        run_fig4_percore_dvfs,
    )

    result = run_fig1_rapl_interference(
        **({"duration_s": 16.0, "warmup_s": 6.0} if quick else {})
    )
    emit(render_table(result.to_rows(), title="## Fig 1 — RAPL interference"))
    emit()

    from repro.experiments.dvfs_sweep import run_dvfs_sweep

    for platform, figure in (("skylake", 2), ("ryzen", 3)):
        sweep = run_dvfs_sweep(
            platform, duration_s=4.0 if quick else 10.0
        )
        rows = []
        for freq in sorted({p.set_frequency_mhz for p in sweep.points}):
            box = sweep.power_boxplot(freq)
            runtimes = [
                p.normalized_runtime for p in sweep.at_frequency(freq)
            ]
            rows.append({
                "freq_mhz": freq,
                "runtime_min": min(runtimes),
                "runtime_max": max(runtimes),
                "power_median": box["median"],
                "power_p99": box["p99"],
            })
        emit(render_table(
            rows, title=f"## Fig {figure} — DVFS sweep ({platform})"
        ))
        emit()

    result = run_fig4_percore_dvfs(
        **({"duration_s": 12.0, "warmup_s": 5.0} if quick else {})
    )
    emit(render_table(result.to_rows(),
                      title="## Fig 4 — RAPL + per-core DVFS"))
    emit()

    from repro.experiments.latency_exp import (
        normalized_latency,
        run_fig5_unfair_throttling,
        run_fig12_policies,
    )

    result = run_fig5_unfair_throttling(
        **({"duration_s": 30.0, "warmup_s": 10.0} if quick else {})
    )
    emit(render_table(result.to_rows(), title="## Fig 5 — unfair throttling"))
    emit()

    from repro.experiments.timeshare_exp import run_fig6_timeshare

    result = run_fig6_timeshare(duration_s=8.0 if quick else 20.0)
    emit(render_table(result.to_rows(), title="## Fig 6 — time-shared power"))
    emit()

    from repro.experiments.priority_exp import (
        run_fig7_priority_skylake,
        run_fig8_priority_ryzen,
    )

    result = run_fig7_priority_skylake(**batch)
    emit(render_table(result.to_rows(),
                      title="## Fig 7 — priority vs RAPL (Skylake)"))
    emit()
    result = run_fig8_priority_ryzen(**batch)
    emit(render_table(result.to_rows(),
                      title="## Fig 8 — priority (Ryzen)"))
    emit()

    from repro.experiments.shares_exp import (
        run_fig9_shares_skylake,
        run_fig10_shares_ryzen,
    )

    result = run_fig9_shares_skylake(**batch)
    emit(render_table(result.to_rows(), title="## Fig 9 — shares (Skylake)"))
    emit()
    result = run_fig10_shares_ryzen(**batch)
    emit(render_table(result.to_rows(), title="## Fig 10 — shares (Ryzen)"))
    emit()

    from repro.experiments.random_exp import run_fig11_random_skylake

    result = run_fig11_random_skylake(**batch)
    emit(render_table(result.to_rows(), title="## Fig 11 — random mixes"))
    emit()

    result = run_fig12_policies(
        **({"duration_s": 30.0, "warmup_s": 10.0} if quick else {})
    )
    emit(render_table(result.to_rows(),
                      title="## Figs 12/13 — latency policies"))
    rows = []
    for limit in sorted({r.limit_w for r in result.runs}):
        for policy in ("rapl", "frequency-shares", "performance-shares"):
            try:
                rows.append({
                    "policy": policy,
                    "limit_w": limit,
                    "latency_vs_alone": normalized_latency(
                        result, policy, limit
                    ),
                })
            except ReproError:
                # a (policy, limit) pair with no matching run: the grid
                # is sparse by design, skip the cell
                continue
    emit(render_table(rows, title="normalized 90th-percentile latency"))
    emit()

    from repro.experiments.cluster_exp import (
        default_cluster_config,
        run_cluster_experiment,
    )

    cluster_result = run_cluster_experiment(
        default_cluster_config(),
        **(
            {"duration_s": 60.0, "warmup_s": 20.0}
            if quick
            else {"duration_s": 180.0, "warmup_s": 60.0}
        ),
        jobs=jobs,
        cache=cache,
    )
    emit(render_table(
        cluster_result.to_rows(),
        title="## Cluster — hierarchical arbitration (4 nodes, 2:2:1:1)",
    ))
    emit(
        f"budget {cluster_result.config.budget_w:.0f} W, "
        f"max cap sum {cluster_result.max_cap_sum_w:.1f} W, "
        f"cap violations {cluster_result.cap_violations}"
    )
    emit()
    # repro-lint: disable=determinism — cosmetic footer, see above
    footer = f"(generated in {time.time() - started:.0f} s"
    if jobs is not None:
        footer += f"; jobs={jobs}"
    if cache is not None:
        footer += (
            f"; cache: {cache.stats.hits} hits, "
            f"{cache.stats.misses} misses, "
            f"{cache.stats.stores} stored"
        )
    emit(footer + ")")
    return out.getvalue()
