"""Game-ability experiment (paper section 8 discussion).

Two copies of the same benchmark run under the performance-share policy
with equal shares; one copy pads its instruction stream with NOPs to
inflate its measured IPS.  The policy normalizes against the *honest*
offline baseline (operators profile the real binary), so the gamed copy
appears to over-achieve its performance target and gets its frequency
cut — and because padding also costs real pipeline bandwidth, the
gamer's *useful* throughput ends strictly below the honest copy's.

This is the outcome the paper calls sound: gaming hurts the gamer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.daemon import PowerDaemon
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.types import ManagedApp
from repro.hw.platform import get_platform
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.sim.perf_model import max_standalone_ips
from repro.workloads.app import RunningApp
from repro.workloads.gaming import nop_padded, useful_fraction
from repro.workloads.spec import spec_app


@dataclass(frozen=True)
class GamingResult:
    benchmark: str
    nop_fraction: float
    limit_w: float
    honest_useful_ips: float
    gamed_useful_ips: float
    honest_freq_mhz: float
    gamed_freq_mhz: float

    @property
    def gaming_payoff(self) -> float:
        """Useful throughput of the gamer relative to playing it
        straight; < 1 means gaming backfired."""
        return self.gamed_useful_ips / self.honest_useful_ips

    def to_rows(self) -> list[dict]:
        return [
            {
                "app": "honest",
                "useful_gips": self.honest_useful_ips / 1e9,
                "freq_mhz": self.honest_freq_mhz,
            },
            {
                "app": f"gamed (nop={self.nop_fraction:.0%})",
                "useful_gips": self.gamed_useful_ips / 1e9,
                "freq_mhz": self.gamed_freq_mhz,
            },
        ]


def run_gaming_experiment(
    *,
    benchmark: str = "gcc",
    nop_fraction: float = 0.4,
    limit_w: float = 24.0,
    duration_s: float = 40.0,
    warmup_s: float = 20.0,
) -> GamingResult:
    """Honest vs NOP-padded copy under equal performance shares."""
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)

    honest = spec_app(benchmark, steady=True)
    gamed = nop_padded(honest, nop_fraction)
    chip.assign_load(
        0, BatchCoreLoad(RunningApp(honest), platform.reference_frequency_mhz)
    )
    chip.assign_load(
        1, BatchCoreLoad(RunningApp(gamed), platform.reference_frequency_mhz)
    )
    # both apps are profiled offline as the honest binary: same baseline
    baseline = max_standalone_ips(platform, honest)
    managed = [
        ManagedApp(label="honest", core_id=0, shares=50.0,
                   baseline_ips=baseline),
        ManagedApp(label="gamed", core_id=1, shares=50.0,
                   baseline_ips=baseline),
    ]
    policy = PerformanceSharesPolicy(platform, managed, limit_w)
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(duration_s)

    window = [s for s in daemon.history if s.time_s >= warmup_s]
    n = len(window)

    def mean(label, field):
        return sum(getattr(s, field)[label] for s in window) / n

    gamed_useful = mean("gamed", "app_ips") * useful_fraction(nop_fraction)
    return GamingResult(
        benchmark=benchmark,
        nop_fraction=nop_fraction,
        limit_w=limit_w,
        honest_useful_ips=mean("honest", "app_ips"),
        gamed_useful_ips=gamed_useful,
        honest_freq_mhz=mean("honest", "app_frequency_mhz"),
        gamed_freq_mhz=mean("gamed", "app_frequency_mhz"),
    )
