"""ASCII rendering of experiment results.

The paper presents tables and bar/box plots; the CLI renders the same
rows as fixed-width ASCII tables so results are diffable and greppable.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.errors import ConfigError


def _format(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    *,
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict rows as a fixed-width ASCII table."""
    if not rows:
        raise ConfigError("no rows to render")
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_format(row.get(col)) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Mapping[str, Any], *, title: str | None = None) -> str:
    """Render key/value metadata (Table 1 style)."""
    if not pairs:
        raise ConfigError("no pairs to render")
    width = max(len(k) for k in pairs)
    lines = [title] if title else []
    for key, value in pairs.items():
        lines.append(f"{key.ljust(width)}  {_format(value)}")
    return "\n".join(lines)
