"""Shared experiment machinery.

:func:`run_steady` is the workhorse: build a stack from an
:class:`~repro.config.ExperimentConfig`, run it for a warm-up plus a
measurement window, and aggregate the daemon's history into per-app
means — the quantities the paper's figures plot (average power, active
frequency, normalized performance over the run).

Normalization baselines follow the paper's methodology: an application's
reference performance is its standalone run at the platform's maximum
frequency under the default (85 W / TDP) limit, which for a single
pinned core means the top turbo bin clipped by the AVX cap — computed in
closed form by :func:`repro.sim.perf_model.max_standalone_ips`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.config import ExperimentConfig, ExperimentStack, build_stack
from repro.errors import ConfigError
from repro.hw.platform import PlatformSpec, get_platform
from repro.sim.perf_model import max_standalone_ips
from repro.workloads.spec import spec_app

#: default simulator tick for batch (non-latency) experiments; coarse
#: ticks are safe because batch loads only change at daemon cadence.
BATCH_TICK_S = 5e-3


@dataclass(frozen=True)
class SteadyAppResult:
    """Aggregated behaviour of one app over the measurement window."""

    label: str
    mean_frequency_mhz: float
    mean_ips: float
    mean_power_w: float | None
    normalized_performance: float
    parked_fraction: float


@dataclass(frozen=True)
class SteadyRunResult:
    """One steady-state experiment run."""

    config: ExperimentConfig
    mean_package_power_w: float
    apps: tuple[SteadyAppResult, ...]

    def app(self, label: str) -> SteadyAppResult:
        for result in self.apps:
            if result.label == label:
                return result
        raise ConfigError(f"no app {label!r} in result")

    def by_benchmark(self, benchmark: str) -> list[SteadyAppResult]:
        """All instances of one benchmark (label prefix match)."""
        return [r for r in self.apps if r.label.split("#")[0] == benchmark]

    def mean_over(self, labels: list[str], field: str) -> float:
        values = [getattr(self.app(label), field) for label in labels]
        values = [v for v in values if v is not None]
        if not values:
            raise ConfigError("no values to average")
        return sum(values) / len(values)


#: bounded memo: 2 registry platforms x ~11 benchmarks today, with slack
#: for growth — an explicit cap so the cache can never grow without
#: bound if platform registration ever becomes dynamic.
_STANDALONE_CACHE_SIZE = 256


@lru_cache(maxsize=_STANDALONE_CACHE_SIZE)
def _standalone_reference_ips(platform_name: str, benchmark: str) -> float:
    return max_standalone_ips(get_platform(platform_name), spec_app(benchmark))


def clear_standalone_reference_cache() -> None:
    """Drop the (platform, benchmark) baseline memo.

    Test hook: equivalence suites that compare engine traces must not
    observe baselines cached by an earlier test against a same-named
    platform object with different tables.
    """
    _standalone_reference_ips.cache_clear()


def standalone_reference_ips(platform: PlatformSpec, benchmark: str) -> float:
    """Offline standalone-at-85W performance baseline (paper section 6).

    The baseline is a pure function of (platform, benchmark) and is hit
    once per app label per run, so it is memoized on the platform *name*
    for the registry platforms.  Custom (non-registry) specs bypass the
    cache.
    """
    try:
        registered = get_platform(platform.name)
    except ConfigError:
        registered = None
    if registered is platform or registered == platform:
        return _standalone_reference_ips(platform.name, benchmark)
    return max_standalone_ips(platform, spec_app(benchmark))


def run_steady(
    config: ExperimentConfig,
    *,
    duration_s: float = 60.0,
    warmup_s: float = 20.0,
    stack: ExperimentStack | None = None,
) -> SteadyRunResult:
    """Run a config to steady state and aggregate the measurement window."""
    if warmup_s >= duration_s:
        raise ConfigError("warm-up must be shorter than the run")
    if stack is None:
        stack = build_stack(config)
    stack.engine.run(duration_s)
    window = [
        sample
        for sample in stack.daemon.history
        if sample.time_s >= warmup_s
    ]
    if not window:
        raise ConfigError("no daemon samples in the measurement window")
    n = len(window)
    mean_pkg = sum(s.package_power_w for s in window) / n
    apps = []
    for label in stack.labels:
        benchmark = label.split("#")[0]
        baseline = standalone_reference_ips(stack.platform, benchmark)
        freqs = [s.app_frequency_mhz[label] for s in window]
        ips = [s.app_ips[label] for s in window]
        powers = [s.app_power_w[label] for s in window]
        parked = [s.app_parked[label] for s in window]
        mean_power = None
        if all(p is not None for p in powers):
            mean_power = sum(powers) / n  # type: ignore[arg-type]
        mean_ips = sum(ips) / n
        apps.append(
            SteadyAppResult(
                label=label,
                mean_frequency_mhz=sum(freqs) / n,
                mean_ips=mean_ips,
                mean_power_w=mean_power,
                normalized_performance=mean_ips / baseline,
                parked_fraction=sum(parked) / n,
            )
        )
    return SteadyRunResult(
        config=config,
        mean_package_power_w=mean_pkg,
        apps=tuple(apps),
    )
