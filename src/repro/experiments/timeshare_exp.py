"""Time-shared single-core power experiment (paper Fig 6, section 4.3).

cactusBSSN (HD) and gcc (LD) run as containers sharing one Ryzen core at
3.4 GHz.  One app's CPU quota is fixed at 50% while the other's sweeps
10-50%; the paper also measures each app alone at 100%.  The result to
reproduce: core power is the **residency-weighted sum** of the apps'
standalone draws — power rises/falls linearly with the share of core
time each app holds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.platform import get_platform
from repro.sched.timeshare import TimeShareEntry, TimeSharedCoreLoad
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.units import ghz
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app

_TICK_S = 5e-3


@dataclass(frozen=True)
class TimeSharePoint:
    fixed_app: str
    varied_app: str
    fixed_quota: float
    varied_quota: float
    core_power_w: float


@dataclass(frozen=True)
class TimeShareResult:
    frequency_mhz: float
    #: standalone 100%-share core power per app.
    alone_power_w: dict[str, float]
    points: tuple[TimeSharePoint, ...]

    def series(self, varied_app: str) -> list[TimeSharePoint]:
        out = sorted(
            (p for p in self.points if p.varied_app == varied_app),
            key=lambda p: p.varied_quota,
        )
        if not out:
            raise ConfigError(f"no series for {varied_app}")
        return out

    def to_rows(self) -> list[dict]:
        rows = [
            {
                "fixed": p.fixed_app,
                "varied": p.varied_app,
                "fixed_pct": 100 * p.fixed_quota,
                "varied_pct": 100 * p.varied_quota,
                "core_w": p.core_power_w,
            }
            for p in self.points
        ]
        for app, power in self.alone_power_w.items():
            rows.append(
                {
                    "fixed": app,
                    "varied": "-",
                    "fixed_pct": 100.0,
                    "varied_pct": 0.0,
                    "core_w": power,
                }
            )
        return rows


def _measure_core_power(
    platform,
    quotas: dict[str, float],
    frequency_mhz: float,
    duration_s: float,
) -> float:
    chip = Chip(platform, tick_s=_TICK_S)
    engine = SimEngine(chip)
    entries = [
        TimeShareEntry(
            app=RunningApp(spec_app(name, steady=True)), shares=quota
        )
        for name, quota in quotas.items()
    ]
    load = TimeSharedCoreLoad(
        entries,
        platform.reference_frequency_mhz,
        absolute_quotas=True,
    )
    chip.assign_load(0, load)
    chip.set_requested_frequency(0, frequency_mhz)
    engine.run(duration_s)
    return chip.cores[0].total_energy_j / chip.time_s


def run_fig6_timeshare(
    *,
    hd_app: str = "cactusBSSN",
    ld_app: str = "gcc",
    frequency_mhz: float = ghz(3.4),
    varied_quotas: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5),
    fixed_quota: float = 0.5,
    duration_s: float = 20.0,
) -> TimeShareResult:
    """Fig 6: time-shared power on one Ryzen core at 3.4 GHz."""
    platform = get_platform("ryzen")
    alone = {
        name: _measure_core_power(
            platform, {name: 1.0}, frequency_mhz, duration_s
        )
        for name in (hd_app, ld_app)
    }
    points: list[TimeSharePoint] = []
    for fixed_app, varied_app in ((hd_app, ld_app), (ld_app, hd_app)):
        for quota in varied_quotas:
            power = _measure_core_power(
                platform,
                {fixed_app: fixed_quota, varied_app: quota},
                frequency_mhz,
                duration_s,
            )
            points.append(
                TimeSharePoint(
                    fixed_app=fixed_app,
                    varied_app=varied_app,
                    fixed_quota=fixed_quota,
                    varied_quota=quota,
                    core_power_w=power,
                )
            )
    return TimeShareResult(
        frequency_mhz=frequency_mhz,
        alone_power_w=alone,
        points=tuple(points),
    )


def expected_mixture_power_w(
    result: TimeShareResult, fixed_app: str, varied_app: str, quota: float
) -> float:
    """The paper's model: residency-weighted sum of standalone draws.

    Used by tests/benches to assert Fig 6's linear-mixture conclusion.
    The idle remainder of the core draws (approximately) nothing.
    """
    return (
        result.alone_power_w[fixed_app] * 0.5
        + result.alone_power_w[varied_app] * quota
    )
