"""Fleet-scale experiment: a diurnal day across 1,000+ nodes.

The ROADMAP's fleet demo: a facility → row → rack → node grid
(default 4 rows x 8 racks x 32 nodes = 1,024 nodes) runs one full
diurnal period of websearch-style traffic — the cosine activation
curve of :class:`~repro.fleet.schedule.DiurnalSchedule`, phase-shifted
per row so load rolls across the fleet — under a deliberately
oversubscribed facility budget.

The budget is provisioned *statistically*: Σ node cap ceilings exceeds
it by design, but :func:`~repro.fleet.schedule.assess_oversubscription`
proves the worst single-epoch demand of the configured day still fits
(plus :data:`BUDGET_HEADROOM`).  If traffic beats the forecast anyway,
the hierarchical water-fill sheds the excess to cap floors instead of
violating the envelope — ``shed_grants`` on the result counts how
often the bet lost.

Everything rides the ordinary cluster machinery: the run is cached by
config (:func:`~repro.experiments.cluster_exp.run_cluster_experiment`),
transport faults reuse the PR-5 lease ladder, and
:func:`rack_partition` builds the rack-level partition scenario the
acceptance run uses — one rack's links severed for a window of epochs,
degrading only that subtree.
"""

from __future__ import annotations

from repro.cluster import ClusterConfig, NodeSpec
from repro.config import AppSpec
from repro.errors import ConfigError
from repro.experiments.cluster_exp import (
    ClusterRunResult,
    run_cluster_experiment,
)
from repro.faults import LinkPartition, TransportScenario
from repro.fleet import (
    DiurnalSchedule,
    DomainSpec,
    OversubscriptionReport,
    assess_oversubscription,
    grid_topology,
    leaf_racks,
)

#: per-node cap bounds for the fleet demo, watts.  The ceiling is the
#: Skylake-ish node under full compute load; the floor keeps idle
#: machines alive (uncore plus a floored core).
FLEET_MIN_CAP_W = 10.0
FLEET_MAX_CAP_W = 45.0

#: multiplicative headroom over the forecast single-epoch peak when
#: auto-sizing the facility budget: enough that the statistical bet
#: wins on the configured day, tight enough that Σ ceilings still
#: oversubscribes the budget heavily.
BUDGET_HEADROOM = 1.02

#: the default day: 24 epochs per period, 15 % of each rack active at
#: the trough, 65 % at the peak, rows phased 2 epochs apart.
DEFAULT_SCHEDULE = DiurnalSchedule()


def fleet_config(
    rows: int = 4,
    racks_per_row: int = 8,
    nodes_per_rack: int = 32,
    *,
    seed: int = 0,
    schedule: DiurnalSchedule | None = DEFAULT_SCHEDULE,
    budget_w: float | None = None,
    transport: str | TransportScenario | None = None,
    crash_faults: str | None = None,
    lease_ttl_epochs: int = 3,
    epoch_ticks: int = 10,
    engine: str | None = None,
) -> ClusterConfig:
    """A grid fleet under an auto-sized oversubscribed budget.

    ``budget_w=None`` provisions :data:`BUDGET_HEADROOM` times the
    worst single-epoch demand the schedule can present — the
    statistically-safe oversubscribed budget.  Each node runs four
    compute-bound apps (the array-stackable mix), so active nodes
    genuinely contend for watts while idle nodes are skipped outright.
    """
    topology, node_names = grid_topology(rows, racks_per_row, nodes_per_rack)
    apps = (
        AppSpec("leela", shares=50.0),
        AppSpec("cactusBSSN", shares=50.0),
        AppSpec("leela", shares=50.0),
        AppSpec("cactusBSSN", shares=50.0),
    )
    nodes = tuple(
        NodeSpec(
            name=name,
            apps=apps,
            min_cap_w=FLEET_MIN_CAP_W,
            max_cap_w=FLEET_MAX_CAP_W,
        )
        for name in node_names
    )
    if budget_w is None:
        forecast = assess_oversubscription(
            1.0,  # placeholder: only peak_demand_w is needed here
            topology,
            {name: FLEET_MIN_CAP_W for name in node_names},
            {name: FLEET_MAX_CAP_W for name in node_names},
            schedule,
        )
        budget_w = BUDGET_HEADROOM * forecast.peak_demand_w
    return ClusterConfig(
        budget_w=budget_w,
        nodes=nodes,
        topology=topology,
        schedule=schedule,
        seed=seed,
        transport=transport,
        crash_faults=crash_faults,
        lease_ttl_epochs=lease_ttl_epochs,
        epoch_ticks=epoch_ticks,
        **({} if engine is None else {"engine": engine}),
    )


def oversubscription_report(
    config: ClusterConfig,
) -> OversubscriptionReport:
    """Quantify a fleet config's oversubscription bet."""
    if config.topology is None:
        raise ConfigError("oversubscription needs a fleet topology")
    return assess_oversubscription(
        config.budget_w,
        config.topology,
        {node.name: node.min_cap_w for node in config.nodes},
        {node.name: node.resolved_max_cap_w() for node in config.nodes},
        config.schedule,
    )


def rack_partition(
    topology: DomainSpec,
    rack_name: str,
    start_epoch: int,
    end_epoch: int,
) -> TransportScenario:
    """Sever one whole rack's node↔arbiter links for an epoch window.

    The acceptance fault: every node in the rack walks the lease
    ladder down (holdover → degraded floor → SAFE backstop) while the
    rest of the fleet keeps arbitrating normally — the partition
    degrades exactly one subtree.
    """
    for rack in leaf_racks(topology):
        if rack.name == rack_name:
            return TransportScenario(
                name=f"rack-partition:{rack_name}",
                partitions=tuple(
                    LinkPartition(start_epoch, end_epoch, node)
                    for node in rack.nodes
                ),
            )
    known = ", ".join(r.name for r in leaf_racks(topology))
    raise ConfigError(
        f"no rack {rack_name!r} in the topology; known racks: {known}"
    )


def run_fleet_experiment(
    config: ClusterConfig | None = None,
    *,
    duration_s: float | None = None,
    warmup_s: float | None = None,
    jobs: int | None = None,
    cache=None,
) -> ClusterRunResult:
    """Run (or fetch from cache) one fleet experiment.

    Defaults to :func:`fleet_config` over exactly one schedule period
    (a full simulated day) with the first fifth as warm-up.
    """
    if config is None:
        config = fleet_config()
    if config.topology is None:
        raise ConfigError("the fleet experiment needs a fleet topology")
    if duration_s is None:
        period = (
            config.schedule.period_epochs if config.schedule is not None
            else 24
        )
        duration_s = period * config.epoch_s
    if warmup_s is None:
        warmup_s = duration_s / 5.0
    return run_cluster_experiment(
        config,
        duration_s=duration_s,
        warmup_s=warmup_s,
        jobs=jobs,
        cache=cache,
    )


def fleet_rollup(result: ClusterRunResult) -> list[dict]:
    """Per-row aggregates of a fleet result (budget flows by subtree).

    Node names are hierarchical (``row0/rack3/n017``), so the roll-up
    groups on the leading path segment.  Cap and power columns are
    sums of per-node means — the subtree's mean draw against the
    budget its domains were granted.
    """
    groups: dict[str, list] = {}
    for node in result.nodes:
        prefix = node.name.split("/", 1)[0]
        groups.setdefault(prefix, []).append(node)
    rows = []
    for prefix in sorted(groups):
        members = groups[prefix]
        rows.append(
            {
                "domain": prefix,
                "nodes": len(members),
                "cap_w": sum(m.mean_cap_w for m in members),
                "power_w": sum(m.mean_power_w for m in members),
                "throttle": (
                    sum(m.mean_throttle for m in members) / len(members)
                ),
            }
        )
    return rows
