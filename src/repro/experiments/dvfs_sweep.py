"""DVFS characterisation sweep (paper Figs 2 and 3, section 3.2).

For each SPEC benchmark, pin one instance to an isolated core, set every
core to the same P-state, and record normalized runtime and average
package power across the platform's frequency range.  The paper's
observations this sweep must reproduce:

* wide spread across benchmarks (frequency sensitivity differs),
* AVX apps (lbm, imagick, cam4) are power outliers whose performance
  saturates early — their clock is capped well below the sweep point,
* a package-power jump of roughly 5 W when the sweep enters the
  turbo/XFR bins (the higher-voltage opportunistic states),
* performance normalized to 2.2 GHz (Skylake) / 3.0 GHz (Ryzen).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.platform import PlatformSpec, get_platform
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.units import percentile
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app, spec_names


@dataclass(frozen=True)
class DvfsPoint:
    """One (benchmark, frequency) measurement."""

    benchmark: str
    set_frequency_mhz: float
    effective_frequency_mhz: float
    normalized_runtime: float
    package_power_w: float


@dataclass(frozen=True)
class DvfsSweepResult:
    platform: str
    reference_mhz: float
    points: tuple[DvfsPoint, ...]

    def series(self, benchmark: str) -> list[DvfsPoint]:
        return [p for p in self.points if p.benchmark == benchmark]

    def at_frequency(self, set_frequency_mhz: float) -> list[DvfsPoint]:
        return [
            p for p in self.points
            if abs(p.set_frequency_mhz - set_frequency_mhz) < 1e-6
        ]

    def power_boxplot(self, set_frequency_mhz: float) -> dict[str, float]:
        """Across-benchmark five-number power summary at one frequency
        (what the paper's box plots show)."""
        powers = [p.package_power_w for p in self.at_frequency(set_frequency_mhz)]
        if not powers:
            raise ConfigError(f"no points at {set_frequency_mhz} MHz")
        return {
            "p1": percentile(powers, 1.0),
            "q1": percentile(powers, 25.0),
            "median": percentile(powers, 50.0),
            "q3": percentile(powers, 75.0),
            "p99": percentile(powers, 99.0),
        }

    def to_rows(self) -> list[dict]:
        return [
            {
                "benchmark": p.benchmark,
                "freq_mhz": p.set_frequency_mhz,
                "eff_mhz": p.effective_frequency_mhz,
                "norm_runtime": p.normalized_runtime,
                "pkg_power_w": p.package_power_w,
            }
            for p in self.points
        ]


def default_sweep_frequencies(platform: PlatformSpec) -> list[float]:
    """A representative subset of the grid (the paper sweeps ~8 levels)."""
    if platform.vendor == "intel":
        return [800, 1100, 1400, 1700, 2000, 2200, 2600, 3000]
    return [400, 900, 1400, 1900, 2400, 3000, 3400, 3500, 3800]


def _measure_point(
    platform: PlatformSpec,
    benchmark: str,
    frequency_mhz: float,
    *,
    duration_s: float,
    tick_s: float,
) -> tuple[DvfsPoint, float]:
    chip = Chip(platform, tick_s=tick_s)
    engine = SimEngine(chip)
    app = RunningApp(spec_app(benchmark, steady=True))
    chip.assign_load(0, BatchCoreLoad(app, platform.reference_frequency_mhz))
    for core_id in platform.core_ids():
        chip.set_requested_frequency(core_id, frequency_mhz)
    engine.run(duration_s)
    core = chip.cores[0]
    mean_power = chip.energy.package_energy_joules / chip.time_s
    mean_ips = core.total_instructions / chip.time_s
    return DvfsPoint(
        benchmark=benchmark,
        set_frequency_mhz=frequency_mhz,
        effective_frequency_mhz=core.effective_mhz,
        normalized_runtime=0.0,  # filled by caller (needs the reference)
        package_power_w=mean_power,
    ), mean_ips


def run_dvfs_sweep(
    platform_name: str,
    *,
    benchmarks: tuple[str, ...] | None = None,
    frequencies_mhz: list[float] | None = None,
    duration_s: float = 10.0,
    tick_s: float = 10e-3,
) -> DvfsSweepResult:
    """Sweep all benchmarks over the frequency grid (Fig 2 / Fig 3)."""
    platform = get_platform(platform_name)
    if benchmarks is None:
        benchmarks = spec_names()
    if frequencies_mhz is None:
        frequencies_mhz = default_sweep_frequencies(platform)
    reference = platform.reference_frequency_mhz
    if reference not in frequencies_mhz:
        frequencies_mhz = sorted(set(frequencies_mhz) | {reference})
    points: list[DvfsPoint] = []
    for benchmark in benchmarks:
        raw: dict[float, tuple[DvfsPoint, float]] = {}
        for freq in frequencies_mhz:
            point, ips = _measure_point(
                platform, benchmark, freq,
                duration_s=duration_s, tick_s=tick_s,
            )
            raw[freq] = (point, ips)
        _, reference_ips = raw[reference]
        for freq in frequencies_mhz:
            point, ips = raw[freq]
            points.append(
                DvfsPoint(
                    benchmark=point.benchmark,
                    set_frequency_mhz=point.set_frequency_mhz,
                    effective_frequency_mhz=point.effective_frequency_mhz,
                    # runtime is work/rate: normalized runtime is the
                    # inverse of the IPS speedup over the reference
                    normalized_runtime=reference_ips / ips,
                    package_power_w=point.package_power_w,
                )
            )
    return DvfsSweepResult(
        platform=platform.name,
        reference_mhz=reference,
        points=tuple(points),
    )
