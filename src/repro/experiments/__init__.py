"""Experiment harness: one module per figure/table of the paper.

Every module exposes a ``run_*`` function returning a structured result
with the same rows/series the paper reports, plus shape-checking helpers
the benchmark suite asserts against.  See DESIGN.md section 4 for the
experiment index.
"""

from repro.experiments.runner import (
    SteadyAppResult,
    SteadyRunResult,
    run_steady,
    standalone_reference_ips,
)
from repro.experiments.report import render_table, render_kv

__all__ = [
    "SteadyAppResult",
    "SteadyRunResult",
    "run_steady",
    "standalone_reference_ips",
    "render_table",
    "render_kv",
]
