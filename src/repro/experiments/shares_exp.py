"""Proportional-share experiments (paper Figs 9 and 10, section 6.2).

Half the cores run *leela* (LD) at one share level, half run
*cactusBSSN* (HD) at another.  Skylake evaluates frequency and
performance shares (no per-core power telemetry → no power shares);
Ryzen evaluates all three.  Results are visualised the way Fig 10 does:
the **percentage of the total resource** (frequency, performance, power)
each application class consumed.

Shapes to reproduce:

* low dynamic range: at 90/10 the low-share app still gets more than 10%
  of frequency/power (the 800/400 MHz floor binds),
* frequency shares ≈ performance shares (the paper's headline),
* power shares isolate performance worst: equal power to unequal-demand
  apps yields unequal frequency and performance,
* shares are accurate in the 30/70–70/30 range, inaccurate beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AppSpec, ExperimentConfig
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import ExperimentTask, run_tasks
from repro.experiments.runner import BATCH_TICK_S, SteadyRunResult

#: share ratios from the paper's figures: (LD shares, HD shares).
DEFAULT_RATIOS: tuple[tuple[float, float], ...] = (
    (90, 10), (70, 30), (50, 50), (30, 70), (10, 90),
)


@dataclass(frozen=True)
class ShareCell:
    """One (policy, limit, ratio) cell."""

    policy: str
    limit_w: float
    ld_shares: float
    hd_shares: float
    #: fraction of the summed resource used by the LD (leela) class.
    ld_frequency_fraction: float
    ld_performance_fraction: float
    ld_power_fraction: float | None
    ld_norm_perf: float
    hd_norm_perf: float
    package_power_w: float

    @property
    def ld_share_fraction(self) -> float:
        return self.ld_shares / (self.ld_shares + self.hd_shares)


@dataclass(frozen=True)
class ShareResult:
    platform: str
    cells: tuple[ShareCell, ...]

    def cell(
        self, policy: str, limit_w: float, ld_shares: float
    ) -> ShareCell:
        for cell in self.cells:
            if (
                cell.policy == policy
                and abs(cell.limit_w - limit_w) < 1e-6
                and abs(cell.ld_shares - ld_shares) < 1e-6
            ):
                return cell
        raise ConfigError(f"no cell ({policy}, {limit_w}, {ld_shares})")

    def to_rows(self) -> list[dict]:
        return [
            {
                "policy": c.policy,
                "limit_w": c.limit_w,
                "ratio": f"{c.ld_shares:.0f}/{c.hd_shares:.0f}",
                "ld_freq_pct": 100 * c.ld_frequency_fraction,
                "ld_perf_pct": 100 * c.ld_performance_fraction,
                "ld_power_pct": (
                    100 * c.ld_power_fraction
                    if c.ld_power_fraction is not None
                    else None
                ),
                "ld_perf": c.ld_norm_perf,
                "hd_perf": c.hd_norm_perf,
                "pkg_w": c.package_power_w,
            }
            for c in self.cells
        ]


def _share_specs(
    platform: str, ld_shares: float, hd_shares: float
) -> tuple[AppSpec, ...]:
    n = 10 if platform == "skylake" else 8
    half = n // 2
    return tuple(
        [AppSpec("leela", shares=ld_shares)] * half
        + [AppSpec("cactusBSSN", shares=hd_shares)] * half
    )


def _cell_from_run(
    result: SteadyRunResult,
    policy: str,
    limit_w: float,
    ld_shares: float,
    hd_shares: float,
) -> ShareCell:
    ld = result.by_benchmark("leela")
    hd = result.by_benchmark("cactusBSSN")
    if not ld or not hd:
        raise ConfigError("missing app class in result")

    def fraction(getter) -> float | None:
        ld_total = sum(getter(r) or 0.0 for r in ld)
        hd_total = sum(getter(r) or 0.0 for r in hd)
        total = ld_total + hd_total
        if total <= 0:
            return None
        return ld_total / total

    freq_frac = fraction(lambda r: r.mean_frequency_mhz)
    perf_frac = fraction(lambda r: r.normalized_performance)
    power_frac = (
        fraction(lambda r: r.mean_power_w)
        if all(r.mean_power_w is not None for r in ld + hd)
        else None
    )
    assert freq_frac is not None and perf_frac is not None
    return ShareCell(
        policy=policy,
        limit_w=limit_w,
        ld_shares=ld_shares,
        hd_shares=hd_shares,
        ld_frequency_fraction=freq_frac,
        ld_performance_fraction=perf_frac,
        ld_power_fraction=power_frac,
        ld_norm_perf=sum(r.normalized_performance for r in ld) / len(ld),
        hd_norm_perf=sum(r.normalized_performance for r in hd) / len(hd),
        package_power_w=result.mean_package_power_w,
    )


def run_shares_experiment(
    platform: str,
    *,
    policies: tuple[str, ...] | None = None,
    limits_w: tuple[float, ...] = (50.0, 40.0),
    ratios: tuple[tuple[float, float], ...] = DEFAULT_RATIOS,
    duration_s: float = 60.0,
    warmup_s: float = 25.0,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> ShareResult:
    """Fig 9 (skylake) / Fig 10 (ryzen) proportional-share sweep."""
    if policies is None:
        policies = (
            ("frequency-shares", "performance-shares", "power-shares")
            if platform == "ryzen"
            else ("frequency-shares", "performance-shares")
        )
    keys: list[tuple[str, float, float, float]] = []
    tasks: list[ExperimentTask] = []
    for policy in policies:
        for limit in limits_w:
            for ld_shares, hd_shares in ratios:
                config = ExperimentConfig(
                    platform=platform,
                    policy=policy,
                    limit_w=limit,
                    apps=_share_specs(platform, ld_shares, hd_shares),
                    tick_s=BATCH_TICK_S,
                )
                keys.append((policy, limit, ld_shares, hd_shares))
                tasks.append(ExperimentTask(config, duration_s, warmup_s))
    results = run_tasks(tasks, jobs=jobs, cache=cache)
    cells = [
        _cell_from_run(result, policy, limit, ld_shares, hd_shares)
        for result, (policy, limit, ld_shares, hd_shares)
        in zip(results, keys)
    ]
    return ShareResult(platform=platform, cells=tuple(cells))


def run_fig9_shares_skylake(**kwargs) -> ShareResult:
    """Skylake frequency + performance shares (Fig 9)."""
    return run_shares_experiment("skylake", **kwargs)


def run_fig10_shares_ryzen(**kwargs) -> ShareResult:
    """Ryzen frequency + performance + power shares (Fig 10)."""
    return run_shares_experiment("ryzen", **kwargs)
