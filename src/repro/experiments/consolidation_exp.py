"""Consolidation experiment: starvation vs time-slicing (section 4.4).

The paper's 3H7L-at-40 W scenario starves all seven LP applications so
the three HP apps can boost.  The alternative it sketches — park most LP
cores but time-slice every LP app across the few cores the residual
power can afford — keeps LP progress non-zero at a small HP cost.

This experiment runs both variants on the simulated Skylake and reports
HP and LP performance side by side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.consolidate import plan_lp_consolidation
from repro.hw.platform import get_platform
from repro.sched.timeshare import TimeShareEntry, TimeSharedCoreLoad
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.sim.perf_model import max_standalone_ips
from repro.sim.power_model import core_power_watts
from repro.workloads.app import AppModel, RunningApp
from repro.workloads.spec import spec_app

_TICK_S = 5e-3


@dataclass(frozen=True)
class ConsolidationResult:
    limit_w: float
    mode: str  # "starve" | "consolidate"
    hp_norm_perf: float
    lp_norm_perf: float
    lp_cores_active: int
    package_power_w: float

    def to_row(self) -> dict:
        return {
            "mode": self.mode,
            "limit_w": self.limit_w,
            "hp_perf": self.hp_norm_perf,
            "lp_perf": self.lp_norm_perf,
            "lp_cores": self.lp_cores_active,
            "pkg_w": self.package_power_w,
        }


def _hp_apps() -> list[AppModel]:
    return [
        spec_app("cactusBSSN", steady=True),
        spec_app("cactusBSSN", steady=True),
        spec_app("leela", steady=True),
    ]


def _lp_apps() -> list[AppModel]:
    return [spec_app("cactusBSSN", steady=True)] * 3 + [
        spec_app("leela", steady=True)
    ] * 4


def run_consolidation_experiment(
    *,
    limit_w: float = 40.0,
    consolidate: bool,
    hp_frequency_mhz: float = 2800.0,
    duration_s: float = 30.0,
) -> ConsolidationResult:
    """3H7L at ``limit_w``: strict starvation or LP time-slicing."""
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=_TICK_S)
    engine = SimEngine(chip)
    reference = platform.reference_frequency_mhz

    hp_models = _hp_apps()
    hp_runs = [RunningApp(m, instance=i) for i, m in enumerate(hp_models)]
    for core_id, run in enumerate(hp_runs):
        chip.assign_load(core_id, BatchCoreLoad(run, reference))
        chip.set_requested_frequency(
            core_id,
            platform.pstates.quantize(hp_frequency_mhz).frequency_mhz,
        )

    lp_models = _lp_apps()
    lp_labels = [f"lp{i}" for i in range(len(lp_models))]
    lp_runs = {
        label: RunningApp(model, instance=i)
        for i, (label, model) in enumerate(zip(lp_labels, lp_models))
    }
    lp_cores = list(range(len(hp_models), platform.n_cores))

    # estimate residual power the way the daemon would: HP cost at the
    # boost frequency from the power model, against the limit
    hp_cost = sum(
        core_power_watts(
            platform,
            hp_frequency_mhz,
            m.c_eff * m.activity_power_factor(hp_frequency_mhz, reference),
            1.0,
        )
        for m in hp_models
    )
    residual = limit_w - hp_cost - platform.power.uncore_watts
    min_freq = platform.min_frequency_mhz
    lp_core_cost = core_power_watts(platform, min_freq, 1.0, 1.0)

    active_lp_cores = 0
    if consolidate:
        plan = plan_lp_consolidation(lp_labels, residual, lp_core_cost)
        active_lp_cores = plan.active_core_count
        for slot, group in enumerate(plan.assignments):
            core_id = lp_cores[slot]
            entries = [
                TimeShareEntry(app=lp_runs[label], shares=1.0)
                for label in group
            ]
            chip.assign_load(
                core_id, TimeSharedCoreLoad(entries, reference)
            )
            chip.set_requested_frequency(core_id, min_freq)
        for core_id in lp_cores[active_lp_cores:]:
            chip.park(core_id)
    else:
        for core_id in lp_cores:
            chip.park(core_id)

    engine.run(duration_s)

    hp_perf = sum(
        (chip.cores[i].total_instructions / chip.time_s)
        / max_standalone_ips(platform, model)
        for i, model in enumerate(hp_models)
    ) / len(hp_models)
    lp_perf = sum(
        run.retired_instructions
        / chip.time_s
        / max_standalone_ips(platform, run.model)
        for run in lp_runs.values()
    ) / len(lp_runs)
    return ConsolidationResult(
        limit_w=limit_w,
        mode="consolidate" if consolidate else "starve",
        hp_norm_perf=hp_perf,
        lp_norm_perf=lp_perf,
        lp_cores_active=active_lp_cores,
        package_power_w=chip.energy.package_energy_joules / chip.time_s,
    )
