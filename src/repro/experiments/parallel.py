"""Process-pool fan-out for independent steady-state runs.

Every figure/table in the evaluation is a batch of independent
:func:`~repro.experiments.runner.run_steady` calls over frozen configs,
so they parallelize embarrassingly: :func:`run_tasks` fans a task list
out across worker processes and returns results in **input order**, so
callers' post-processing is identical to the serial loop they replaced.
Determinism is preserved — each run's randomness is seeded from its
config, never from worker identity or scheduling.

Workers are bounded in memory via ``max_tasks_per_child`` (a worker is
recycled after a fixed number of runs, so per-run allocations cannot
accumulate) and the pool is only spun up when there is more than one
uncached task to run.

An optional :class:`~repro.experiments.cache.ResultCache` short-circuits
tasks whose results are already on disk; fresh results are stored back,
so a re-run after an unrelated code change skips completed configs.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass

from repro.config import ExperimentConfig
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.runner import SteadyRunResult, run_steady

#: recycle a worker after this many runs (bounds per-worker memory).
MAX_TASKS_PER_CHILD = 16


@dataclass(frozen=True)
class ExperimentTask:
    """One steady-state run: a config plus its measurement window."""

    config: ExperimentConfig
    duration_s: float = 60.0
    warmup_s: float = 20.0


def _run_task(task: ExperimentTask) -> SteadyRunResult:
    """Worker entry point (module-level so it pickles)."""
    return run_steady(
        task.config,
        duration_s=task.duration_s,
        warmup_s=task.warmup_s,
    )


def fork_context():
    """The cheap ``fork`` multiprocessing context (with fallback).

    Shared by the experiment pool below and the cluster node stepper
    (:mod:`repro.cluster.stepper`): ``fork`` avoids re-importing
    ``__main__`` the way ``spawn`` and ``forkserver`` do, which both
    keeps worker start cheap and lets workers inherit already-built
    configuration objects.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - platform without fork
        return multiprocessing.get_context()


def _make_pool(n_workers: int):
    """Build the worker pool with bounded per-worker memory.

    ``multiprocessing.Pool`` (rather than ``ProcessPoolExecutor``)
    because it supports ``maxtasksperchild`` together with the ``fork``
    start method: workers are recycled after a fixed number of runs.
    """
    return fork_context().Pool(
        processes=n_workers, maxtasksperchild=MAX_TASKS_PER_CHILD
    )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 -> serial, <0 -> all cores."""
    if jobs is None or jobs == 0:
        return 1
    if jobs < 0:
        return os.cpu_count() or 1
    return jobs


def run_tasks(
    tasks: list[ExperimentTask],
    *,
    jobs: int | None = None,
    cache: ResultCache | None = None,
) -> list[SteadyRunResult]:
    """Run every task and return results in input order.

    ``jobs`` workers run uncached tasks in a process pool (``None``/``0``
    /``1`` runs them serially in-process, with no pool overhead).
    ``cache`` short-circuits completed configs and stores fresh results.
    """
    if any(not isinstance(task, ExperimentTask) for task in tasks):
        raise ConfigError("run_tasks expects ExperimentTask items")
    results: list[SteadyRunResult | None] = [None] * len(tasks)
    pending: list[int] = []
    for index, task in enumerate(tasks):
        if cache is not None:
            hit = cache.get(task.config, task.duration_s, task.warmup_s)
            if hit is not None:
                results[index] = hit
                continue
        pending.append(index)
    n_workers = min(resolve_jobs(jobs), len(pending))
    if n_workers <= 1:
        fresh = [_run_task(tasks[index]) for index in pending]
    else:
        with _make_pool(n_workers) as pool:
            # map() yields in submission order: deterministic results
            fresh = list(
                pool.map(_run_task, [tasks[index] for index in pending])
            )
    for index, result in zip(pending, fresh):
        results[index] = result
        if cache is not None:
            task = tasks[index]
            cache.put(task.config, task.duration_s, task.warmup_s, result)
    return results  # type: ignore[return-value]
