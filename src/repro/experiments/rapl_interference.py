"""RAPL interference experiments (paper Figs 1 and 4, sections 1 and 3.2).

Fig 1 — *performance interference under RAPL*: gcc (low demand) and cam4
(high demand, AVX-capped) run concurrently under progressively lower
RAPL limits.  RAPL's global frequency cap throttles the faster gcc core
first, so the low-demand app pays for the high-demand one: at the lowest
limits both cores sit at the same frequency, a much larger relative loss
for gcc.

Fig 4 — *RAPL vs per-core DVFS*: copies of gcc on all cores, half
"unconstrained" (requesting 2.5 GHz), half throttled by software to a
sweep frequency, under RAPL limits from 85 W down to 40 W.  Two effects
to reproduce: power saved by the throttled cores flows to the
unconstrained cores (they speed up), and RAPL lowers only the fastest
cores' frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.hw.platform import get_platform
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.sim.perf_model import max_standalone_ips
from repro.sched.pinning import pin_apps
from repro.workloads.spec import spec_app

_TICK_S = 5e-3


@dataclass(frozen=True)
class Fig1Point:
    limit_w: float
    benchmark: str
    normalized_performance: float
    active_frequency_mhz: float


@dataclass(frozen=True)
class Fig1Result:
    points: tuple[Fig1Point, ...]

    def series(self, benchmark: str) -> list[Fig1Point]:
        return sorted(
            (p for p in self.points if p.benchmark == benchmark),
            key=lambda p: -p.limit_w,
        )

    def to_rows(self) -> list[dict]:
        return [
            {
                "limit_w": p.limit_w,
                "benchmark": p.benchmark,
                "norm_perf": p.normalized_performance,
                "freq_mhz": p.active_frequency_mhz,
            }
            for p in self.points
        ]


def run_fig1_rapl_interference(
    *,
    limits_w: tuple[float, ...] = (85.0, 70.0, 60.0, 50.0, 40.0),
    copies: int = 5,
    duration_s: float = 30.0,
    warmup_s: float = 10.0,
) -> Fig1Result:
    """gcc vs cam4 under RAPL on Skylake (Fig 1).

    The paper runs the two applications concurrently under limits where
    RAPL visibly throttles; on our calibrated package two cores never
    reach 40 W, so we fill the socket with ``copies`` instances of each
    (the same filled-socket setup the paper's priority experiments use)
    and report per-benchmark means.  The shape under test is unchanged:
    RAPL's cap hits the faster, lower-demand gcc cores first.
    """
    platform = get_platform("skylake")
    points: list[Fig1Point] = []
    for limit in limits_w:
        chip = Chip(platform, tick_s=_TICK_S)
        engine = SimEngine(chip)
        apps = (
            [spec_app("gcc", steady=True)] * copies
            + [spec_app("cam4", steady=True)] * copies
        )
        placements = pin_apps(chip, apps)
        for placement in placements:
            chip.set_requested_frequency(
                placement.core_id,
                platform.pstates.quantize(
                    platform.effective_max_frequency_mhz(
                        placement.app.model.uses_avx
                    )
                ).frequency_mhz,
            )
        chip.set_rapl_limit(limit)
        engine.run(warmup_s)
        marks = {
            p.label: (
                chip.cores[p.core_id].total_instructions,
                chip.time_s,
            )
            for p in placements
        }
        engine.run(duration_s - warmup_s)
        by_benchmark: dict[str, list[tuple[float, float]]] = {}
        for placement in placements:
            core = chip.cores[placement.core_id]
            start_instr, start_t = marks[placement.label]
            ips = (core.total_instructions - start_instr) / (
                chip.time_s - start_t
            )
            baseline = max_standalone_ips(platform, placement.app.model)
            by_benchmark.setdefault(placement.app.model.name, []).append(
                (ips / baseline, core.effective_mhz)
            )
        for benchmark, values in by_benchmark.items():
            points.append(
                Fig1Point(
                    limit_w=limit,
                    benchmark=benchmark,
                    normalized_performance=(
                        sum(v[0] for v in values) / len(values)
                    ),
                    active_frequency_mhz=(
                        sum(v[1] for v in values) / len(values)
                    ),
                )
            )
    return Fig1Result(points=tuple(points))


@dataclass(frozen=True)
class Fig4Point:
    limit_w: float
    throttled_set_mhz: float
    unconstrained_freq_mhz: float
    throttled_freq_mhz: float
    unconstrained_norm_perf: float
    throttled_norm_perf: float
    package_power_w: float


@dataclass(frozen=True)
class Fig4Result:
    unconstrained_request_mhz: float
    points: tuple[Fig4Point, ...]

    def series(self, limit_w: float) -> list[Fig4Point]:
        return sorted(
            (p for p in self.points if abs(p.limit_w - limit_w) < 1e-6),
            key=lambda p: p.throttled_set_mhz,
        )

    def to_rows(self) -> list[dict]:
        return [
            {
                "limit_w": p.limit_w,
                "throttle_mhz": p.throttled_set_mhz,
                "unconstr_freq": p.unconstrained_freq_mhz,
                "throttled_freq": p.throttled_freq_mhz,
                "unconstr_perf": p.unconstrained_norm_perf,
                "throttled_perf": p.throttled_norm_perf,
                "pkg_w": p.package_power_w,
            }
            for p in self.points
        ]


def run_fig4_percore_dvfs(
    *,
    limits_w: tuple[float, ...] = (85.0, 60.0, 50.0, 40.0),
    throttle_points_mhz: tuple[float, ...] = (
        800.0, 1200.0, 1600.0, 2000.0, 2500.0,
    ),
    unconstrained_mhz: float = 2500.0,
    duration_s: float = 20.0,
    warmup_s: float = 8.0,
) -> Fig4Result:
    """gcc on all cores: half unconstrained, half software-throttled,
    under RAPL (Fig 4)."""
    platform = get_platform("skylake")
    half = platform.n_cores // 2
    baseline_ips = None
    points: list[Fig4Point] = []
    for limit in limits_w:
        for throttle_mhz in throttle_points_mhz:
            chip = Chip(platform, tick_s=_TICK_S)
            engine = SimEngine(chip)
            apps = [spec_app("gcc", steady=True)] * platform.n_cores
            placements = pin_apps(chip, apps)
            if baseline_ips is None:
                baseline_ips = max_standalone_ips(
                    platform, placements[0].app.model
                )
            unconstrained = placements[:half]
            throttled = placements[half:]
            for placement in unconstrained:
                chip.set_requested_frequency(
                    placement.core_id, unconstrained_mhz
                )
            for placement in throttled:
                chip.set_requested_frequency(placement.core_id, throttle_mhz)
            chip.set_rapl_limit(limit)
            engine.run(warmup_s)
            marks = {
                p.core_id: chip.cores[p.core_id].total_instructions
                for p in placements
            }
            start_t = chip.time_s
            start_e = chip.energy.package_energy_joules
            engine.run(duration_s - warmup_s)
            elapsed = chip.time_s - start_t

            def group_stats(group):
                freqs = [chip.cores[p.core_id].effective_mhz for p in group]
                ips = [
                    (chip.cores[p.core_id].total_instructions
                     - marks[p.core_id]) / elapsed
                    for p in group
                ]
                return (
                    sum(freqs) / len(freqs),
                    sum(ips) / len(ips) / baseline_ips,
                )

            un_freq, un_perf = group_stats(unconstrained)
            th_freq, th_perf = group_stats(throttled)
            points.append(
                Fig4Point(
                    limit_w=limit,
                    throttled_set_mhz=throttle_mhz,
                    unconstrained_freq_mhz=un_freq,
                    throttled_freq_mhz=th_freq,
                    unconstrained_norm_perf=un_perf,
                    throttled_norm_perf=th_perf,
                    package_power_w=(
                        chip.energy.package_energy_joules - start_e
                    ) / elapsed,
                )
            )
    if baseline_ips is None:
        raise ConfigError("no runs executed")
    return Fig4Result(
        unconstrained_request_mhz=unconstrained_mhz,
        points=tuple(points),
    )
