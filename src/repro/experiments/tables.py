"""The paper's tables as checkable data (Tables 1, 2, 3).

Table 1 is derived live from the :class:`~repro.hw.platform.PlatformSpec`
objects so the documentation cannot drift from the implementation;
Tables 2 and 3 re-export the mix/set constants the experiments use.
"""

from __future__ import annotations

from repro.experiments.priority_exp import TABLE2_MIXES
from repro.hw.platform import get_platform
from repro.units import mhz_to_ghz
from repro.workloads.generator import TABLE3_SETS


def table1_features(platform_name: str) -> dict[str, object]:
    """Table 1 row: power-management feature summary for one platform."""
    platform = get_platform(platform_name)
    turbo = max(f for f in platform.pstates.frequencies_mhz)
    return {
        "processor": platform.name,
        "vendor": platform.vendor,
        "cores": platform.n_cores,
        "threads": platform.n_threads,
        "dram_gb": platform.dram_gb,
        "freq_range_ghz": (
            f"{mhz_to_ghz(platform.min_frequency_mhz):.1f}-"
            f"{mhz_to_ghz(platform.max_nominal_frequency_mhz):.1f}"
            f" + {mhz_to_ghz(turbo):.1f} boost"
        ),
        "dvfs_step_mhz": platform.step_mhz,
        "per_core_dvfs": platform.has_per_core_dvfs,
        "simultaneous_pstates": platform.simultaneous_pstates,
        "rapl_capping": (
            f"{platform.rapl_limit_range_w[0]:.0f}-"
            f"{platform.rapl_limit_range_w[1]:.0f} W"
            if platform.has_rapl_limit
            else "none"
        ),
        "per_core_power_telemetry": platform.has_per_core_energy,
    }


def table2_rows() -> list[dict[str, object]]:
    """Table 2: Skylake priority-experiment workload mixes."""
    rows = []
    for mix, (hd_hp, ld_hp, hd_lp, ld_lp) in TABLE2_MIXES.items():
        rows.append(
            {
                "mix": mix,
                "cactusBSSN-HP": hd_hp,
                "leela-HP": ld_hp,
                "cactusBSSN-LP": hd_lp,
                "leela-LP": ld_lp,
            }
        )
    return rows


def table3_rows() -> list[dict[str, object]]:
    """Table 3: application sets for the random experiments."""
    rows = []
    for set_name, names in TABLE3_SETS.items():
        row: dict[str, object] = {"set": f"Skylake {set_name}"}
        for index, name in enumerate(names):
            row[f"app{index}"] = name
        rows.append(row)
    return rows
