"""Latency-sensitive experiments (paper Figs 5, 12, 13; sections 3.2, 6.4).

*websearch* (latency-sensitive, 300 users, low per-core demand) occupies
nine Skylake cores; the *cpuburn* power virus occupies the tenth.

* **Fig 5** — unfair throttling: under RAPL, co-locating one cpuburn core
  cuts websearch's 90th-percentile latency performance to less than half
  of running alone at low limits (<40 W), because RAPL throttles all the
  fast websearch cores to pay for the virus.
* **Fig 12** — the paper's policies (90/10 shares: websearch cores get
  90, cpuburn 10) recover most of that loss, approaching the
  websearch-alone latency, limited by the frequency floor.
* **Fig 13** — active frequencies under frequency shares: websearch
  cores stay fast, the cpuburn core pins at minimum frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.rapl_baseline import RaplBaselinePolicy
from repro.core.types import ManagedApp
from repro.hw.platform import get_platform
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad, ClusterCoreLoad
from repro.sim.engine import SimEngine
from repro.units import approx_eq
from repro.workloads.app import RunningApp
from repro.workloads.cpuburn import cpuburn
from repro.workloads.websearch import WebsearchCluster, WebsearchConfig

_TICK_S = 2e-3
_N_SERVING = 9
_BURN_CORE = 9

_POLICIES = {
    "frequency-shares": FrequencySharesPolicy,
    "performance-shares": PerformanceSharesPolicy,
    "rapl": RaplBaselinePolicy,
}


@dataclass(frozen=True)
class LatencyRun:
    """One websearch run: latency tail plus frequency telemetry."""

    policy: str
    limit_w: float
    colocated: bool
    p90_latency_s: float
    p99_latency_s: float
    throughput_rps: float
    mean_package_power_w: float
    websearch_freq_mhz: float
    cpuburn_freq_mhz: float | None


@dataclass(frozen=True)
class LatencyResult:
    runs: tuple[LatencyRun, ...]

    def run(
        self, policy: str, limit_w: float, colocated: bool
    ) -> LatencyRun:
        for run in self.runs:
            if (
                run.policy == policy
                and approx_eq(run.limit_w, limit_w, abs_tol=1e-6)
                and run.colocated == colocated
            ):
                return run
        raise ConfigError(f"no run ({policy}, {limit_w}, {colocated})")

    def to_rows(self) -> list[dict]:
        return [
            {
                "policy": r.policy,
                "limit_w": r.limit_w,
                "colocated": r.colocated,
                "p90_ms": 1e3 * r.p90_latency_s,
                "p99_ms": 1e3 * r.p99_latency_s,
                "rps": r.throughput_rps,
                "pkg_w": r.mean_package_power_w,
                "ws_mhz": r.websearch_freq_mhz,
                "burn_mhz": r.cpuburn_freq_mhz,
            }
            for r in self.runs
        ]


def _offline_websearch_baseline_ips(duration_s: float = 20.0) -> list[float]:
    """Per-serving-core IPS of websearch running alone at max frequency —
    the offline baseline measurement performance shares need."""
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=_TICK_S)
    engine = SimEngine(chip)
    cluster = WebsearchCluster(list(range(_N_SERVING)), WebsearchConfig())
    chip.attach_cluster(cluster)
    for core_id in cluster.core_ids:
        chip.assign_load(core_id, ClusterCoreLoad(cluster, core_id))
        chip.set_requested_frequency(core_id, 3000.0)
    engine.run(duration_s)
    return [
        max(chip.cores[core_id].total_instructions / chip.time_s, 1.0)
        for core_id in cluster.core_ids
    ]


def _run_one(
    policy_name: str,
    limit_w: float,
    colocated: bool,
    *,
    websearch_shares: float,
    cpuburn_shares: float,
    duration_s: float,
    warmup_s: float,
    baseline_ips: list[float] | None,
) -> LatencyRun:
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=_TICK_S)
    engine = SimEngine(chip)
    cluster = WebsearchCluster(list(range(_N_SERVING)), WebsearchConfig())
    chip.attach_cluster(cluster)
    managed: list[ManagedApp] = []
    for index, core_id in enumerate(cluster.core_ids):
        chip.assign_load(core_id, ClusterCoreLoad(cluster, core_id))
        managed.append(
            ManagedApp(
                label=f"websearch@{core_id}",
                core_id=core_id,
                shares=websearch_shares,
                baseline_ips=(
                    baseline_ips[index] if baseline_ips else None
                ),
            )
        )
    burn_app = None
    if colocated:
        burn_app = RunningApp(cpuburn())
        chip.assign_load(
            _BURN_CORE,
            BatchCoreLoad(burn_app, platform.reference_frequency_mhz),
        )
        managed.append(
            ManagedApp(
                label="cpuburn#0",
                core_id=_BURN_CORE,
                shares=cpuburn_shares,
                # IPS of the spin loop alone at max frequency; only used
                # by performance shares
                baseline_ips=3.0 * 3000e6,
            )
        )
    policy = _POLICIES[policy_name](platform, managed, limit_w)
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    engine.run(warmup_s)
    cluster.reset_latency_window()
    start_requests = cluster.completed_requests
    start_t = chip.time_s
    engine.run(duration_s - warmup_s)
    elapsed = chip.time_s - start_t
    window = [s for s in daemon.history if s.time_s >= warmup_s]
    ws_labels = [f"websearch@{c}" for c in cluster.core_ids]
    ws_freq = sum(
        s.app_frequency_mhz[label] for s in window for label in ws_labels
    ) / (len(window) * len(ws_labels))
    burn_freq = None
    if colocated:
        burn_freq = sum(
            s.app_frequency_mhz["cpuburn#0"] for s in window
        ) / len(window)
    return LatencyRun(
        policy=policy_name,
        limit_w=limit_w,
        colocated=colocated,
        p90_latency_s=cluster.latency_percentile(90.0),
        p99_latency_s=cluster.latency_percentile(99.0),
        throughput_rps=(
            (cluster.completed_requests - start_requests) / elapsed
        ),
        mean_package_power_w=(
            sum(s.package_power_w for s in window) / len(window)
        ),
        websearch_freq_mhz=ws_freq,
        cpuburn_freq_mhz=burn_freq,
    )


def run_fig5_unfair_throttling(
    *,
    limits_w: tuple[float, ...] = (85.0, 60.0, 50.0, 45.0, 40.0, 35.0),
    duration_s: float = 60.0,
    warmup_s: float = 20.0,
) -> LatencyResult:
    """Fig 5: websearch 90th-percentile latency under RAPL, with and
    without the co-located power virus."""
    runs = []
    for limit in limits_w:
        for colocated in (False, True):
            runs.append(
                _run_one(
                    "rapl", limit, colocated,
                    websearch_shares=1.0, cpuburn_shares=1.0,
                    duration_s=duration_s, warmup_s=warmup_s,
                    baseline_ips=None,
                )
            )
    return LatencyResult(runs=tuple(runs))


def run_fig12_policies(
    *,
    limits_w: tuple[float, ...] = (45.0, 40.0, 35.0),
    policies: tuple[str, ...] = ("frequency-shares", "performance-shares"),
    duration_s: float = 60.0,
    warmup_s: float = 20.0,
) -> LatencyResult:
    """Figs 12/13: policies vs RAPL vs alone at 90/10 shares.

    Returns colocated runs for each policy plus RAPL, and alone runs
    (RAPL) as the normalization baseline the paper reports above its
    bars.
    """
    baseline_ips = (
        _offline_websearch_baseline_ips()
        if "performance-shares" in policies
        else None
    )
    runs = []
    for limit in limits_w:
        runs.append(
            _run_one(
                "rapl", limit, False,
                websearch_shares=1.0, cpuburn_shares=1.0,
                duration_s=duration_s, warmup_s=warmup_s,
                baseline_ips=None,
            )
        )
        runs.append(
            _run_one(
                "rapl", limit, True,
                websearch_shares=1.0, cpuburn_shares=1.0,
                duration_s=duration_s, warmup_s=warmup_s,
                baseline_ips=None,
            )
        )
        for policy in policies:
            runs.append(
                _run_one(
                    policy, limit, True,
                    websearch_shares=90.0, cpuburn_shares=10.0,
                    duration_s=duration_s, warmup_s=warmup_s,
                    baseline_ips=baseline_ips,
                )
            )
    return LatencyResult(runs=tuple(runs))


def normalized_latency(
    result: LatencyResult, policy: str, limit_w: float
) -> float:
    """Fig 12's metric: 90th-pct latency relative to websearch alone at
    the same limit (values > 1 mean the colocated run is slower)."""
    alone = result.run("rapl", limit_w, False)
    colocated = result.run(policy, limit_w, True)
    return colocated.p90_latency_s / alone.p90_latency_s
