"""Time-series recording with the summary statistics the figures use.

The paper's box plots report median, quartiles, and 1st/99th percentiles
(Figs 2 and 3); other figures report means over the run.  A
:class:`TraceSeries` accumulates samples and produces exactly those
summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import percentile


@dataclass
class TraceSeries:
    """One named time-series of (time, value) samples."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time_s: float, value: float) -> None:
        if self.times and time_s < self.times[-1]:
            raise ConfigError(f"{self.name}: samples must be time-ordered")
        self.times.append(time_s)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def mean(self) -> float:
        if not self.values:
            raise ConfigError(f"{self.name}: empty series")
        return sum(self.values) / len(self.values)

    def median(self) -> float:
        return self.percentile(50.0)

    def percentile(self, pct: float) -> float:
        return percentile(self.values, pct)

    def boxplot_summary(self) -> dict[str, float]:
        """The five-number summary the paper's box plots draw."""
        return {
            "p1": self.percentile(1.0),
            "q1": self.percentile(25.0),
            "median": self.median(),
            "q3": self.percentile(75.0),
            "p99": self.percentile(99.0),
        }

    def last(self) -> float:
        if not self.values:
            raise ConfigError(f"{self.name}: empty series")
        return self.values[-1]

    def window(self, t_start_s: float, t_end_s: float | None = None) -> "TraceSeries":
        """Sub-series restricted to a time window (drop warm-up, etc.)."""
        out = TraceSeries(self.name)
        for t, v in zip(self.times, self.values):
            if t < t_start_s:
                continue
            if t_end_s is not None and t > t_end_s:
                continue
            out.append(t, v)
        return out


class Trace:
    """A bag of named series, convenient for experiment recording."""

    def __init__(self) -> None:
        self._series: dict[str, TraceSeries] = {}

    def record(self, name: str, time_s: float, value: float) -> None:
        self._series.setdefault(name, TraceSeries(name)).append(time_s, value)

    def series(self, name: str) -> TraceSeries:
        try:
            return self._series[name]
        except KeyError:
            known = ", ".join(sorted(self._series)) or "<none>"
            raise ConfigError(f"no series {name!r}; known: {known}") from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._series))

    def __contains__(self, name: str) -> bool:
        return name in self._series
