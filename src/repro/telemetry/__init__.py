"""Telemetry: counter snapshots, a turbostat-like sampler, and traces.

The paper's daemon reads processor statistics once per second — package
(and on Ryzen, per-core) power, retired instructions, and actual
frequency — via the ``turbostat`` tool, which the authors extended to
support Ryzen (section 3.1).  This package reproduces that stack over
the emulated MSR file.
"""

from repro.telemetry.counters import CounterSnapshot, CounterDelta, read_snapshot
from repro.telemetry.turbostat import Turbostat, TurbostatSample, CoreStats
from repro.telemetry.trace import Trace, TraceSeries
from repro.telemetry.wattsup import WattsUpMeter, WattsUpConfig, verify_rapl_against_meter
from repro.telemetry.ledger import AppEnergyAccount, EnergyLedger

__all__ = [
    "CounterSnapshot",
    "CounterDelta",
    "read_snapshot",
    "Turbostat",
    "TurbostatSample",
    "CoreStats",
    "Trace",
    "TraceSeries",
    "WattsUpMeter",
    "WattsUpConfig",
    "verify_rapl_against_meter",
    "AppEnergyAccount",
    "EnergyLedger",
]
