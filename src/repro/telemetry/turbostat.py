"""turbostat-like periodic sampler.

The paper collects package power, core power (Ryzen), performance
(instructions per second) and active frequency once per second with a
modified turbostat (section 3.1).  :class:`Turbostat` does the same over
the emulated MSR file: call :meth:`sample` on whatever cadence the
monitoring loop uses and get back a :class:`TurbostatSample` of derived
per-core statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.hw.msr import MSRFile
from repro.hw.platform import PlatformSpec
from repro.telemetry.counters import CounterSnapshot, read_snapshot


@dataclass(frozen=True)
class CoreStats:
    """Per-core derived statistics for one sampling interval."""

    core_id: int
    active_frequency_mhz: float
    busy_fraction: float
    ips: float
    power_w: float | None  # None on platforms without per-core energy


@dataclass(frozen=True)
class TurbostatSample:
    """One monitoring-interval report."""

    timestamp_s: float
    interval_s: float
    package_power_w: float
    cores: tuple[CoreStats, ...]

    def core(self, core_id: int) -> CoreStats:
        for stats in self.cores:
            if stats.core_id == core_id:
                return stats
        raise PlatformError(f"no core {core_id} in sample")

    def total_ips(self) -> float:
        return sum(stats.ips for stats in self.cores)


class Turbostat:
    """Stateful sampler: each :meth:`sample` reports since the previous."""

    def __init__(self, platform: PlatformSpec, msr: MSRFile):
        self.platform = platform
        self.msr = msr
        self._tsc_mhz = platform.max_nominal_frequency_mhz
        self._previous: CounterSnapshot | None = None
        self.history: list[TurbostatSample] = []

    def prime(self, timestamp_s: float) -> None:
        """Take the initial snapshot without emitting a sample."""
        self._previous = read_snapshot(self.platform, self.msr, timestamp_s)

    @property
    def primed(self) -> bool:
        return self._previous is not None

    def sample(self, timestamp_s: float) -> TurbostatSample:
        """Read counters and report the interval since the last call.

        Requires a prior :meth:`prime` (or a previous successful sample):
        an unprimed sampler has no baseline snapshot, and fabricating a
        zero-interval sample would silently feed zeros into whatever
        control loop called us.  Raises :class:`PlatformError` instead.
        """
        if self._previous is None:
            raise PlatformError(
                "turbostat sampler not primed: call prime() before sample()"
            )
        current = read_snapshot(self.platform, self.msr, timestamp_s)
        delta = self._previous.delta(current)
        self._previous = current
        cores = []
        for cpu in self.platform.core_ids():
            power = None
            if self.platform.has_per_core_energy:
                power = delta.core_power_w(cpu)
            cores.append(
                CoreStats(
                    core_id=cpu,
                    active_frequency_mhz=delta.active_frequency_mhz(
                        cpu, self._tsc_mhz
                    ),
                    busy_fraction=delta.busy_fraction(cpu, self._tsc_mhz),
                    ips=delta.ips(cpu),
                    power_w=power,
                )
            )
        sample = TurbostatSample(
            timestamp_s=timestamp_s,
            interval_s=delta.dt_s,
            package_power_w=delta.package_power_w(),
            cores=tuple(cores),
        )
        self.history.append(sample)
        return sample
