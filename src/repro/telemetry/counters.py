"""Raw counter snapshots and wrap-safe deltas.

Everything the monitoring loop consumes derives from differences of
free-running hardware counters: APERF/MPERF for average active frequency,
IA32_FIXED_CTR0 for retired instructions, and the RAPL energy-status
counters for power.  Energy counters are 32-bit and wrap every few hours
at server power draw; the cycle/instruction counters are 64-bit and wrap
too (rarely in practice, constantly under injected wrap storms).
:func:`CounterSnapshot.delta` diffs *every* counter modulo its width,
the same way turbostat does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlatformError
from repro.hw import msr as msrdef
from repro.hw.msr import MSRFile, read_counter_delta, read_energy_delta
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class CounterSnapshot:
    """One point-in-time read of all monitored counters."""

    timestamp_s: float
    aperf: tuple[int, ...]
    mperf: tuple[int, ...]
    instructions: tuple[int, ...]
    pkg_energy_uj: int
    core_energy_uj: tuple[int, ...] | None

    def delta(self, later: "CounterSnapshot") -> "CounterDelta":
        """Compute the wrap-safe difference ``later - self``."""
        if later.timestamp_s < self.timestamp_s:
            raise PlatformError("snapshots out of order")
        dt = later.timestamp_s - self.timestamp_s
        core_energy = None
        if self.core_energy_uj is not None and later.core_energy_uj is not None:
            core_energy = tuple(
                read_energy_delta(a, b)
                for a, b in zip(self.core_energy_uj, later.core_energy_uj)
            )
        return CounterDelta(
            dt_s=dt,
            aperf=tuple(
                read_counter_delta(a, b)
                for a, b in zip(self.aperf, later.aperf)
            ),
            mperf=tuple(
                read_counter_delta(a, b)
                for a, b in zip(self.mperf, later.mperf)
            ),
            instructions=tuple(
                read_counter_delta(a, b)
                for a, b in zip(self.instructions, later.instructions)
            ),
            pkg_energy_uj=read_energy_delta(
                self.pkg_energy_uj, later.pkg_energy_uj
            ),
            core_energy_uj=core_energy,
        )


@dataclass(frozen=True)
class CounterDelta:
    """Counter movement over an interval, plus derived metrics."""

    dt_s: float
    aperf: tuple[int, ...]
    mperf: tuple[int, ...]
    instructions: tuple[int, ...]
    pkg_energy_uj: int
    core_energy_uj: tuple[int, ...] | None

    def package_power_w(self) -> float:
        if self.dt_s <= 0:
            return 0.0
        return self.pkg_energy_uj * 1e-6 / self.dt_s

    def core_power_w(self, core_id: int) -> float:
        if self.core_energy_uj is None:
            raise PlatformError("platform has no per-core energy counters")
        if self.dt_s <= 0:
            return 0.0
        return self.core_energy_uj[core_id] * 1e-6 / self.dt_s

    def active_frequency_mhz(self, core_id: int, tsc_mhz: float) -> float:
        """Average frequency while in C0: ``tsc * APERF/MPERF``.

        Returns 0 for a core that never entered C0 this interval, which
        is how turbostat reports fully idle cores.
        """
        mperf = self.mperf[core_id]
        if mperf == 0:
            return 0.0
        return tsc_mhz * self.aperf[core_id] / mperf

    def ips(self, core_id: int) -> float:
        """Instructions retired per second on a core."""
        if self.dt_s <= 0:
            return 0.0
        return self.instructions[core_id] / self.dt_s

    def busy_fraction(self, core_id: int, tsc_mhz: float) -> float:
        """C0 residency estimated from MPERF movement vs wall time."""
        if self.dt_s <= 0:
            return 0.0
        return min(1.0, self.mperf[core_id] / (tsc_mhz * 1e6 * self.dt_s))


def read_snapshot(
    platform: PlatformSpec, msr: MSRFile, timestamp_s: float
) -> CounterSnapshot:
    """Read all monitored counters through the MSR interface."""
    n = platform.n_cores
    if platform.vendor == "intel":
        pkg_addr = msrdef.MSR_PKG_ENERGY_STATUS
    else:
        pkg_addr = msrdef.MSR_AMD_PKG_ENERGY
    core_energy = None
    if platform.has_per_core_energy:
        core_energy = tuple(
            msr.read(cpu, msrdef.MSR_AMD_CORE_ENERGY) for cpu in range(n)
        )
    return CounterSnapshot(
        timestamp_s=timestamp_s,
        aperf=tuple(msr.read(cpu, msrdef.IA32_APERF) for cpu in range(n)),
        mperf=tuple(msr.read(cpu, msrdef.IA32_MPERF) for cpu in range(n)),
        instructions=tuple(
            msr.read(cpu, msrdef.IA32_FIXED_CTR0) for cpu in range(n)
        ),
        pkg_energy_uj=msr.read(0, pkg_addr),
        core_energy_uj=core_energy,
    )
