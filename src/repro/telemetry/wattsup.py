"""External wall-power meter (a "Watts Up" — paper section 3.1).

The paper verified its RAPL power readings against a Watts Up meter,
citing Khan et al.'s finding that RAPL is accurate.  This module models
that external meter: it samples *true* platform power (which the meter
sees after the power supply, so a PSU efficiency loss and wall-side
overhead apply) at a coarse rate with quantisation and calibration
noise, independent of the on-die counters.

:func:`verify_rapl_against_meter` reproduces the verification
methodology: run both instruments over a window and report the relative
error between RAPL energy and meter energy net of the modelled PSU.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class WattsUpConfig:
    """Meter characteristics (a consumer wall meter, not a lab PSU)."""

    sample_period_s: float = 1.0
    #: wall power = platform power / psu_efficiency + base draw
    psu_efficiency: float = 0.90
    psu_base_watts: float = 8.0
    #: display quantisation, watts.
    resolution_w: float = 0.1
    #: relative calibration noise (1 sigma).
    noise_sigma: float = 0.005
    seed: int = 99

    def __post_init__(self) -> None:
        if not 0.0 < self.psu_efficiency <= 1.0:
            raise ConfigError("PSU efficiency must be in (0, 1]")
        if self.sample_period_s <= 0 or self.resolution_w <= 0:
            raise ConfigError("period and resolution must be positive")


class WattsUpMeter:
    """Samples true package power through a modelled PSU."""

    def __init__(self, config: WattsUpConfig | None = None):
        self.config = config or WattsUpConfig()
        self._rng = random.Random(self.config.seed)
        self.samples_w: list[float] = []
        self._accum_s = 0.0

    def observe(self, true_package_w: float, dt_s: float) -> None:
        """Feed true power; the meter latches a reading once per period."""
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        self._accum_s += dt_s
        if self._accum_s + 1e-12 < self.config.sample_period_s:
            return
        self._accum_s -= self.config.sample_period_s
        cfg = self.config
        wall = true_package_w / cfg.psu_efficiency + cfg.psu_base_watts
        wall *= 1.0 + self._rng.gauss(0.0, cfg.noise_sigma)
        quantised = round(wall / cfg.resolution_w) * cfg.resolution_w
        self.samples_w.append(quantised)

    def mean_wall_power_w(self) -> float:
        if not self.samples_w:
            raise ConfigError("meter has no samples yet")
        return sum(self.samples_w) / len(self.samples_w)

    def implied_package_power_w(self) -> float:
        """Back out package power from wall readings using the PSU model
        (what the paper's verification effectively computes)."""
        cfg = self.config
        return (self.mean_wall_power_w() - cfg.psu_base_watts) * (
            cfg.psu_efficiency
        )


def verify_rapl_against_meter(
    chip, duration_s: float = 20.0, config: WattsUpConfig | None = None
) -> float:
    """Run chip + meter together; return RAPL's relative error vs the
    meter-implied package power (paper section 3.1 methodology)."""
    meter = WattsUpMeter(config)
    start_energy = chip.energy.package_energy_joules
    start_time = chip.time_s
    ticks = int(round(duration_s / chip.tick_s))
    for _ in range(ticks):
        chip.tick()
        meter.observe(chip.last_package_power_w, chip.tick_s)
    chip.flush_counters()
    elapsed = chip.time_s - start_time
    rapl_power = (chip.energy.package_energy_joules - start_energy) / elapsed
    meter_power = meter.implied_package_power_w()
    return abs(rapl_power - meter_power) / meter_power
