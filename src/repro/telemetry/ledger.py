"""Per-application energy accounting over daemon history.

The paper positions itself against energy-accounting systems (Cinder,
ECOSystem, Power Containers): those budget *energy over time* while the
paper polices *power at all times*.  The ledger bridges the two views —
it folds a :class:`~repro.core.daemon.PowerDaemon` history into per-app
cumulative energy, so power-policy runs can also be judged on the energy
metrics those systems care about (joules, instructions per joule, EDP).

Attribution:

* on platforms with per-core energy counters (Ryzen) the measurement is
  direct;
* on package-only platforms (Skylake) core energy is attributed by each
  app's modelled dynamic weight, ``f³``-proportional within the interval
  (the standard V∝f approximation), after subtracting an uncore
  estimate — the same kind of model-based attribution Power Containers
  describes, and clearly labelled as an estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import
    # cycle: core.daemon itself imports the telemetry package
    from repro.core.daemon import DaemonSample


@dataclass
class AppEnergyAccount:
    """Cumulative per-app energy and work."""

    label: str
    energy_j: float = 0.0
    instructions: float = 0.0
    active_s: float = 0.0
    measured: bool = True  # False when attribution was model-based

    @property
    def instructions_per_joule(self) -> float:
        if self.energy_j <= 0:
            raise ConfigError(f"{self.label}: no energy recorded")
        return self.instructions / self.energy_j

    @property
    def mean_power_w(self) -> float:
        if self.active_s <= 0:
            raise ConfigError(f"{self.label}: no active time recorded")
        return self.energy_j / self.active_s


class EnergyLedger:
    """Accumulates per-app energy from daemon samples."""

    def __init__(self, *, uncore_estimate_w: float = 7.0):
        if uncore_estimate_w < 0:
            raise ConfigError("uncore estimate cannot be negative")
        self.uncore_estimate_w = uncore_estimate_w
        self._accounts: dict[str, AppEnergyAccount] = {}
        self._last_time: float | None = None
        self.package_energy_j = 0.0

    def accounts(self) -> dict[str, AppEnergyAccount]:
        return dict(self._accounts)

    def account(self, label: str) -> AppEnergyAccount:
        try:
            return self._accounts[label]
        except KeyError:
            known = ", ".join(sorted(self._accounts)) or "<none>"
            raise ConfigError(
                f"no account for {label!r}; known: {known}"
            ) from None

    def ingest(self, sample: "DaemonSample") -> None:
        """Fold one daemon interval into the ledger."""
        if self._last_time is None:
            self._last_time = sample.time_s
            # first sample establishes the time base but carries a full
            # interval of data too (the daemon reports deltas); use its
            # nominal interval by looking at iteration cadence
            dt = sample.time_s / max(sample.iteration, 1)
        else:
            dt = sample.time_s - self._last_time
            self._last_time = sample.time_s
        if dt <= 0:
            raise ConfigError("daemon samples must move forward in time")
        self.package_energy_j += sample.package_power_w * dt

        labels = list(sample.app_frequency_mhz)
        for label in labels:
            self._accounts.setdefault(label, AppEnergyAccount(label))

        measured = all(
            sample.app_power_w[label] is not None for label in labels
        )
        if measured:
            for label in labels:
                account = self._accounts[label]
                power = sample.app_power_w[label]
                assert power is not None
                account.energy_j += power * dt
                self._credit_work(account, sample, label, dt)
            return

        # model-based attribution: split (package - uncore estimate)
        # by f^3 weights among non-parked apps
        budget_w = max(
            sample.package_power_w - self.uncore_estimate_w, 0.0
        )
        weights = {}
        for label in labels:
            if sample.app_parked[label]:
                weights[label] = 0.0
            else:
                weights[label] = sample.app_frequency_mhz[label] ** 3
        total_weight = sum(weights.values())
        for label in labels:
            account = self._accounts[label]
            account.measured = False
            if total_weight > 0:
                share = weights[label] / total_weight
                account.energy_j += budget_w * share * dt
            self._credit_work(account, sample, label, dt)

    def _credit_work(
        self,
        account: AppEnergyAccount,
        sample: "DaemonSample",
        label: str,
        dt: float,
    ) -> None:
        account.instructions += sample.app_ips[label] * dt
        if not sample.app_parked[label]:
            account.active_s += dt

    def ingest_history(self, history: list["DaemonSample"]) -> None:
        for sample in history:
            self.ingest(sample)

    def to_rows(self) -> list[dict]:
        rows = []
        for account in self._accounts.values():
            rows.append(
                {
                    "app": account.label,
                    "energy_j": account.energy_j,
                    "gi": account.instructions / 1e9,
                    "gips_per_j": (
                        account.instructions / account.energy_j / 1e9
                        if account.energy_j > 0
                        else None
                    ),
                    "measured": account.measured,
                }
            )
        return sorted(rows, key=lambda r: -r["energy_j"])
