"""Model-based demand validation, trust scores, and the brownout ladder.

Every robustness layer before this one assumed nodes fail *silently or
cleanly*; the arbiter still took each demand report at face value, so a
stuck sensor or a greedy tenant could siphon the whole facility budget
(see :mod:`repro.faults.telemetry` for the attack family).  This module
is the defense, three mechanisms the arbiters compose per epoch:

* :class:`DemandValidator` cross-checks every *fresh* report against
  the node's own power model — the platform envelope (a node cannot
  draw more than its P-state table allows), the cap it was actually
  granted, rate-of-change limits, and the internal consistency of the
  power/headroom/throttle channels — and clamps implausible values to
  the model envelope, so no lie ever reaches the water-filling raw.
* :class:`TrustBook` keeps a per-node trust score in ``[0, 1]``:
  exponential decay on each violating epoch, slow probationary
  recovery on clean ones.  Low-trust demand is discounted toward the
  node's floor and repeat offenders are **quarantined** (demand pinned
  at the floor) once the score falls below the threshold — with decay
  of 0.5 per violating epoch against a threshold of 0.3, an offender
  is quarantined within **2 violating epochs** of first detection.
* :class:`BrownoutController` is the facility ladder
  NORMAL → BROWNOUT1 → BROWNOUT2 → SHED for *sustained* infeasibility.
  Demand exceeding the budget is ordinary contention — the water-fill
  resolves it every epoch.  Infeasibility is the *commitment* layer
  overflowing: live members' floors plus silent members' lease
  reservations exceeding the budget, which no fill can satisfy.  When
  that load stays above the enter ratio for ``k`` consecutive epochs
  the ladder steps up, shedding in priority order — idle-node floors
  first, then best-effort shares, then floors themselves — and steps
  down only after a longer run of calm epochs (hysteresis), so the
  fleet cannot flap.

Validation and trust updates run only on reports with fresh samples:
a node that is merely partitioned or held over is judged by the lease
ladder (:mod:`repro.cluster.lease`), never by trust — the two penalty
tracks cannot double-fire.  All state here snapshots into the journal
fence, so crash recovery replays trust decisions byte-identically.
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Collection, Iterable, Mapping, Sequence
from typing import Any

try:  # pragma: no cover - exercised by absence only
    import numpy as np
except ImportError:  # pragma: no cover - screen then defers everything
    np = None  # type: ignore[assignment]

from repro.cluster.node import NodeEpochReport

#: multiplier applied to the trust score on each violating epoch.
TRUST_DECAY = 0.5

#: score regained per clean fresh epoch once probation has passed.
TRUST_RECOVERY = 0.1

#: clean fresh epochs a violator must string together before its score
#: starts recovering (the probationary period).
TRUST_PROBATION_EPOCHS = 2

#: scores below this are quarantined: demand pinned at the floor.
QUARANTINE_THRESHOLD = 0.3

#: tolerance above the platform maximum before a power reading is
#: physically impossible (sensor quantization headroom).
PLATFORM_MARGIN = 1.05

#: tolerance above the enforced cap before a reading is implausible
#: (the daemon's backstop allows brief overshoot, not 10 %).
CAP_OVERAGE = 1.1

#: maximum plausible epoch-over-epoch demand growth factor.
RATE_GROWTH = 1.5

#: a booting node with no accepted history may plausibly report up to
#: this multiple of its floor before the rate limit engages.
BOOT_FLOOR_FACTOR = 2.0

#: absolute tolerance on the headroom-consistency cross-check, watts.
#: Honest daemons compute ``headroom = max(cap - power, 0)`` from the
#: same floats they report, so the honest mismatch is exactly zero.
_CONSISTENCY_TOL_W = 1e-6

#: below this many fresh reports the vectorized screen costs more in
#: numpy call overhead than the per-report path it would save (the
#: fixed array-building cost amortizes past roughly this point, since
#: a full :meth:`DemandValidator.validate` pass runs ~2.5 us/report).
_SCREEN_MIN_BATCH = 8

#: brownout ladder levels, in order.
BROWNOUT_LEVELS = ("normal", "brownout1", "brownout2", "shed")

#: committed load above ``enter_ratio`` x budget for this many
#: consecutive epochs steps the ladder up one level.
BROWNOUT_ENTER_EPOCHS = 2

#: committed load at or below ``exit_ratio`` x budget for this many
#: consecutive epochs steps the ladder down one level (hysteresis).
BROWNOUT_EXIT_EPOCHS = 3

#: committed/budget ratio that counts as infeasible.  Commitments are
#: floors plus lease reservations — config validation guarantees the
#: all-floors sum fits, so only reservation storms (partitions holding
#: budget at old caps) push past this.
BROWNOUT_ENTER_RATIO = 1.02

#: committed/budget ratio that counts as calm: the commitments fit the
#: budget again.  Strictly below the enter ratio so the ladder cannot
#: flap across one boundary.
BROWNOUT_EXIT_RATIO = 1.0

#: fraction of a node's floor kept when brownout sheds the floor
#: itself — the same idle-power fraction the diurnal scheduler uses.
BROWNOUT_FLOOR_FRACTION = 0.6


class DemandValidator:
    """Clamps each fresh report to the node's model envelope.

    Stateful only in the per-node last *accepted* power reading, which
    anchors the rate-of-change limit; that dict checkpoints into the
    journal fence via :meth:`snapshot`.  ``validate`` never mutates the
    incoming report — it returns a clamped copy plus the violation
    reasons, and the caller stores the clamped copy as demand history
    so a lie never survives in ``_last_report`` either.
    """

    def __init__(self, lease_ttl: int):
        self._ttl = lease_ttl
        #: node -> last accepted (post-clamp) power reading, watts.
        self._prev_power: dict[str, float] = {}
        #: node -> ``(power, throttle, headroom, cap)`` of the last
        #: report accepted *clean* (no violations, no clamp).  A new
        #: report matching this tuple needs no envelope math at all
        #: (see :meth:`screen`).  Pure cache: cleared on restore, so
        #: it is deliberately absent from :meth:`snapshot` — dropping
        #: it only sends reports down the slow path, never changes a
        #: verdict.
        self._last_clean: dict[
            str, tuple[float, float, float, float]
        ] = {}

    def validate(
        self,
        report: NodeEpochReport,
        *,
        epoch: int,
        floor_w: float,
        max_cap_w: float,
        granted_w: float | None,
    ) -> tuple[NodeEpochReport, tuple[str, ...]]:
        """Cross-check one fresh report against the node's power model.

        ``granted_w`` is the cap *this arbiter* last granted the node
        (None for a member with no grant yet); ``max_cap_w`` is the
        platform envelope from the node's P-state table.  Returns
        ``(clamped_report, violations)`` — an empty violations tuple
        means the report passed every check and is byte-identical to
        the input.
        """
        violations: list[str] = []
        power = report.mean_power_w
        throttle = report.throttle_pressure
        headroom = report.headroom_w
        prev = self._prev_power.get(report.name)

        finite = all(
            math.isfinite(v) for v in (power, throttle, headroom)
        )
        if not finite:
            # NaN/inf anywhere poisons every downstream fill: fall back
            # to the last accepted reading (or the floor) wholesale.
            violations.append("non-finite")
            power = prev if prev is not None else floor_w
            throttle = 0.0
        else:
            if not 0.0 <= throttle <= 1.0:
                violations.append("throttle-range")
                throttle = min(max(throttle, 0.0), 1.0)
            expected = max(report.cap_w - power, 0.0)
            if abs(headroom - expected) > _CONSISTENCY_TOL_W:
                # power and headroom disagree about the same cap: one
                # of the two channels is miscalibrated (gain drift).
                violations.append("inconsistent-headroom")

        # the model envelope: physically bounded by the platform, and
        # plausibly bounded by the enforced cap and the ramp rate.  The
        # first accepted report seeds the model and is held only to the
        # platform bound — boot overshoot (the daemon's backstop
        # engaging mid-epoch) is real and can exceed the cap ratio.
        if prev is None:
            ceiling = max_cap_w * PLATFORM_MARGIN
        else:
            claimed_cap = min(max(report.cap_w, 0.0), max_cap_w)
            enforced = max(granted_w or 0.0, claimed_cap)
            ceiling = max(
                enforced * CAP_OVERAGE,
                floor_w * BOOT_FLOOR_FACTOR,
                prev * RATE_GROWTH,
            )
            ceiling = min(ceiling, max_cap_w * PLATFORM_MARGIN)
        if power > max_cap_w * PLATFORM_MARGIN:
            violations.append("exceeds-platform")
        elif power > ceiling + _CONSISTENCY_TOL_W:
            violations.append("implausible-demand")
        power = min(power, ceiling)

        self._prev_power[report.name] = power

        # a payload frozen in the past while envelopes keep arriving is
        # the stuck-sensor signature; normal delivery lag (including
        # transport delay) never exceeds the lease TTL.
        if epoch - report.epoch > self._ttl:
            violations.append("stale-payload")

        if not violations:
            self._last_clean[report.name] = (
                report.mean_power_w,
                report.throttle_pressure,
                report.headroom_w,
                report.cap_w,
            )
            return report, ()
        self._last_clean.pop(report.name, None)
        headroom = max(report.cap_w - power, 0.0)
        if not math.isfinite(headroom):
            headroom = 0.0
        clamped = dataclasses.replace(
            report,
            mean_power_w=power,
            throttle_pressure=throttle,
            headroom_w=headroom,
        )
        return clamped, tuple(violations)

    @property
    def clean_tuples(self) -> Mapping[str, tuple[float, float, float, float]]:
        """Live read-only view of the last clean-accepted channel
        tuples, keyed by node name, for callers that fuse the tier-0
        settled check of :meth:`screen` into a report loop they already
        pay for (the arbiter's ingest does).  Callers must not mutate.
        """
        return self._last_clean

    def fresh_cut(self, epoch: int) -> int:
        """Oldest payload epoch not considered stale at ``epoch``."""
        return epoch - self._ttl

    def screen(
        self,
        reports: Sequence[NodeEpochReport],
        names: Sequence[str],
        *,
        epoch: int,
        floors: Mapping[str, float],
        maxes: Mapping[str, float],
        granted: Mapping[str, float],
    ) -> Sequence[int]:
        """Prescreen one epoch's fresh reports; ``names[i]`` must be
        ``reports[i].name``.

        Returns the indices whose reports must still go through
        :meth:`validate`; every other index is *proven* clean — the
        report passes every model check unmodified, and accepting it
        leaves the validator in exactly the state :meth:`validate`
        would have left.

        **Tier 0** (one dict probe per report) proves the settled
        majority clean: a report byte-identical to the node's last
        clean-accepted reading on every validated channel, and not
        stale, needs no envelope math — the identical tuple already
        passed the consistency and throttle checks, a clean accept
        pinned the rate anchor to this exact power (so the ceiling,
        which is at least ``anchor * RATE_GROWTH`` and never below
        zero, still admits it), and an unclamped accept is proof the
        reading sits under the platform bound.

        **Tier 1** replicates the :meth:`validate` ceiling in one
        numpy pass over the residue (movers, first reports), but
        accepts only readings strictly inside it — no float
        tolerance, so borderline readings fall through to
        :meth:`validate` for the authoritative verdict, and a NaN
        anywhere (channels or missing anchor) fails every comparison
        and defers too.  Accepted movers have their anchors and
        clean-tuples updated here, exactly as :meth:`validate` would.

        The combined outcome — accepted reports, violation verdicts,
        validator state — is identical to validating every report
        individually; the property tests assert that equivalence on
        adversarial batches.  Small batches skip screening entirely
        (per-report validation is cheaper than the setup), as does a
        build without numpy.
        """
        n = len(reports)
        if n < _SCREEN_MIN_BATCH:
            return range(n)
        cut = epoch - self._ttl
        rest: list[int] = []
        last_get = self._last_clean.get
        defer = rest.append
        for i, report in enumerate(reports):
            t = last_get(report.name)
            if (
                t is not None
                and report.epoch >= cut
                and t[0] == report.mean_power_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
                and t[1] == report.throttle_pressure
                and t[2] == report.headroom_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
                and t[3] == report.cap_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
            ):
                continue
            defer(i)
        if np is None or len(rest) < _SCREEN_MIN_BATCH:
            return rest
        sub = [reports[i] for i in rest]
        p = np.array([r.mean_power_w for r in sub])
        tp = np.array([r.throttle_pressure for r in sub])
        h = np.array([r.headroom_w for r in sub])
        c = np.array([r.cap_w for r in sub])
        e = np.array([r.epoch for r in sub])
        f = np.array([floors[names[i]] for i in rest])
        m = np.array([maxes[names[i]] for i in rest])
        g = np.array([granted.get(names[i], 0.0) for i in rest])
        prev = np.array(
            [self._prev_power.get(r.name, math.nan) for r in sub]
        )
        # NaN fails every comparison, landing the report in the
        # suspect set — exactly where a non-finite reading belongs.
        ok = np.abs(h - np.maximum(c - p, 0.0)) <= _CONSISTENCY_TOL_W
        ok &= (tp >= 0.0) & (tp <= 1.0)
        ok &= e >= cut
        claimed = np.minimum(np.maximum(c, 0.0), m)
        ceiling = np.minimum(
            np.maximum.reduce(
                [
                    np.maximum(g, claimed) * CAP_OVERAGE,
                    f * BOOT_FLOOR_FACTOR,
                    prev * RATE_GROWTH,
                ]
            ),
            m * PLATFORM_MARGIN,
        )
        ok &= p <= ceiling
        if not bool(ok.any()):
            return rest
        for j in np.nonzero(ok)[0].tolist():
            report = sub[j]
            self._prev_power[report.name] = report.mean_power_w
            self._last_clean[report.name] = (
                report.mean_power_w,
                report.throttle_pressure,
                report.headroom_w,
                report.cap_w,
            )
        suspects: list[int] = [
            rest[j] for j in np.nonzero(~ok)[0].tolist()
        ]
        return suspects

    def forget(self, name: str) -> None:
        """Drop a retired member's rate-limit anchor."""
        self._prev_power.pop(name, None)
        self._last_clean.pop(name, None)

    def snapshot(self) -> dict[str, float]:
        """Checkpoint the rate-limit anchors (journal fence)."""
        return dict(sorted(self._prev_power.items()))

    def restore(self, state: dict[str, float]) -> None:
        self._prev_power = dict(state)
        # pure cache: dropping it only routes the next report down
        # the slow path, never changes a verdict
        self._last_clean = {}


class TrustBook:
    """Per-node trust scores: decay on violations, slow recovery.

    Scores start at 1.0 (full trust) and are updated **only** from
    fresh reports — silence is the lease ladder's jurisdiction, so a
    partitioned node keeps its score frozen and is never
    double-penalized.  A violating epoch halves the score; a clean
    epoch first serves out a probation, then earns back
    :data:`TRUST_RECOVERY`.  Below :data:`QUARANTINE_THRESHOLD` the
    node is quarantined and its demand ceiling collapses to its floor.
    """

    def __init__(self) -> None:
        #: node -> trust score in [0, 1]; absent means 1.0.
        self._score: dict[str, float] = {}
        #: node -> consecutive clean fresh epochs since last violation.
        self._streak: dict[str, int] = {}
        #: total violating node-epochs observed (health roll-ups).
        self.violations = 0

    def observe(self, name: str, violated: bool) -> None:
        """Fold one fresh epoch's verdict into the node's score."""
        if violated:
            self.violations += 1
            self._score[name] = self.score(name) * TRUST_DECAY
            self._streak[name] = 0
            return
        if name not in self._score:
            # full trust already: nothing to recover, and the streak
            # is only ever consulted while a score exists — skip the
            # bookkeeping so clean epochs on honest nodes are free.
            return
        streak = self._streak.get(name, 0) + 1
        self._streak[name] = streak
        score = self._score[name]
        if streak > TRUST_PROBATION_EPOCHS:
            score = min(1.0, score + TRUST_RECOVERY)
            if score >= 1.0:
                # fully restored: drop the bookkeeping so the node is
                # indistinguishable from one that never violated.
                del self._score[name]
                del self._streak[name]
            else:
                self._score[name] = score

    def observe_clean(
        self, names: Iterable[str], *, skip: Collection[str] = ()
    ) -> None:
        """Batch clean-epoch observes for one epoch's fresh reports.

        ``skip`` holds the names already observed individually this
        epoch (the validator's suspect set).  When no node holds a
        degraded score the whole call is a single dict check — the
        common case on a healthy fleet.
        """
        if not self._score:
            return
        for name in names:
            if name not in skip:
                self.observe(name, False)

    def score(self, name: str) -> float:
        return self._score.get(name, 1.0)

    @property
    def scores(self) -> Mapping[str, float]:
        """Live read-only view of the degraded scores (absent = 1.0).

        Hot arbitration loops probe this directly — emptiness means
        every node holds full trust and per-node discount calls can
        be skipped wholesale.  Callers must not mutate it.
        """
        return self._score

    def quarantined(self, name: str) -> bool:
        return (
            self._score.get(name, 1.0) < QUARANTINE_THRESHOLD
        )

    def quarantined_names(self) -> tuple[str, ...]:
        return tuple(
            sorted(n for n in self._score if self.quarantined(n))
        )

    def discount_hi(self, name: str, lo: float, hi: float) -> float:
        """The trust-discounted demand ceiling.

        Full trust passes ``hi`` through bit-identically (so trusted
        runs match the pre-trust arbiter byte-for-byte); partial trust
        interpolates toward the floor; quarantine pins to it.
        """
        if not self._score:
            return hi
        score = self._score.get(name, 1.0)
        if score >= 1.0 or hi <= lo:
            return hi
        if score < QUARANTINE_THRESHOLD:
            return lo
        return lo + (hi - lo) * score

    def forget(self, name: str) -> None:
        """Reset a retired member: a rebooted node starts fresh."""
        self._score.pop(name, None)
        self._streak.pop(name, None)

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint scores and streaks (journal fence)."""
        return {
            "score": dict(sorted(self._score.items())),
            "streak": dict(sorted(self._streak.items())),
            "violations": self.violations,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._score = dict(state["score"])
        self._streak = dict(state["streak"])
        self.violations = int(state["violations"])


class BrownoutController:
    """The facility ladder for sustained infeasibility.

    Observes the epoch's *committed* load — live members' floors plus
    silent members' lease reservations, measured **before** the
    reservation shave and before brownout shedding, so the signal
    cannot chase its own effect — and steps the ladder with
    hysteresis: :data:`BROWNOUT_ENTER_EPOCHS` consecutive epochs above
    the enter ratio step up one level; :data:`BROWNOUT_EXIT_EPOCHS`
    consecutive epochs at or below the exit ratio step down one.  The
    band between the two ratios holds the current level, so the fleet
    never flaps across one boundary.  The level applied to claims is
    the level *entering* the epoch — a deliberate one-epoch control
    lag that keeps the grant a pure function of journaled state.
    """

    def __init__(self) -> None:
        self._level = 0
        self._over = 0
        self._under = 0

    @property
    def level(self) -> int:
        return self._level

    @property
    def level_name(self) -> str:
        return BROWNOUT_LEVELS[self._level]

    def observe(self, pressure_w: float, budget_w: float) -> int:
        """Fold one epoch's committed load; returns the new level."""
        if budget_w <= 0:
            return self._level
        ratio = pressure_w / budget_w
        if ratio > BROWNOUT_ENTER_RATIO:
            self._over += 1
            self._under = 0
            if self._over >= BROWNOUT_ENTER_EPOCHS:
                self._level = min(
                    self._level + 1, len(BROWNOUT_LEVELS) - 1
                )
                self._over = 0
        elif ratio <= BROWNOUT_EXIT_RATIO:
            self._under += 1
            self._over = 0
            if self._under >= BROWNOUT_EXIT_EPOCHS:
                self._level = max(self._level - 1, 0)
                self._under = 0
        else:
            # the hysteresis band: hold the level, reset both streaks
            self._over = 0
            self._under = 0
        return self._level

    def snapshot(self) -> dict[str, int]:
        """Checkpoint the ladder position (journal fence)."""
        return {
            "level": self._level,
            "over": self._over,
            "under": self._under,
        }

    def restore(self, state: dict[str, int]) -> None:
        self._level = int(state["level"])
        self._over = int(state["over"])
        self._under = int(state["under"])


def brownout_claim_bounds(
    level: int,
    *,
    floor_w: float,
    raw_hi_w: float,
    shares: float,
    top_shares: float,
) -> tuple[float, float]:
    """One node's claim bounds under the current brownout level.

    ``raw_hi_w`` is the trust-discounted demand ceiling *before* the
    usual ``max(hi, lo)`` flooring; ``top_shares`` is the largest
    shares value among this round's bidders (nodes below it are the
    best-effort tier).  Shedding order, cumulative by level:

    * **BROWNOUT1** — idle-node floors: a node demanding less than its
      floor no longer gets the full floor held for it; its claim
      collapses to its demand, bounded below by the idle fraction.
    * **BROWNOUT2** — best-effort shares: lower-share nodes are pinned
      at their floors (no growth above the no-starvation minimum).
    * **SHED** — floor-shedding: best-effort floors drop to the idle
      fraction and even top-share nodes are pinned at their floors.

    Returns ``(lo, hi)`` with ``lo <= hi`` guaranteed; level 0 is
    bit-identical to the pre-brownout bounds.
    """
    lo = floor_w
    if level >= 1 and raw_hi_w < lo:
        lo = max(raw_hi_w, BROWNOUT_FLOOR_FRACTION * floor_w)
    best_effort = shares < top_shares
    if level >= 3:
        if best_effort:
            lo = BROWNOUT_FLOOR_FRACTION * floor_w
        return lo, lo
    if level >= 2 and best_effort:
        return lo, lo
    return lo, max(raw_hi_w, lo)
