"""The cluster epoch loop: arbitrate, step, report, repeat.

:class:`ClusterSim` drives the whole fleet:

1. at each epoch boundary it admits nodes whose join time has arrived
   and retires announced leavers,
2. the :class:`~repro.cluster.arbiter.ClusterArbiter` turns the previous
   epoch's demand reports into next caps (detecting crashed nodes by
   their missing/flagged reports — one epoch of lag, like a real
   heartbeat timeout),
3. the stepper advances every live node through the epoch under its
   granted cap (serially or across fork workers — byte-identical either
   way), and
4. the :class:`~repro.cluster.trace.ClusterTrace` rolls the epoch up.

The cap-sum invariant is checked after every grant: live caps never sum
above the facility budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.arbiter import Arbitration, ClusterArbiter
from repro.cluster.config import ClusterConfig
from repro.cluster.node import NodeEpochReport
from repro.cluster.stepper import make_stepper
from repro.cluster.trace import ClusterTrace
from repro.errors import ConfigError


@dataclass
class ClusterRun:
    """Everything one finished cluster run produced."""

    config: ClusterConfig
    trace: ClusterTrace
    #: per epoch: the arbitration grant that governed it.
    grants: list[Arbitration] = field(default_factory=list)
    #: per epoch: the node reports it produced.
    reports: list[dict[str, NodeEpochReport]] = field(default_factory=list)

    @property
    def n_epochs(self) -> int:
        return len(self.grants)

    def max_cap_sum_w(self) -> float:
        """Largest per-epoch sum of granted caps (invariant witness)."""
        if not self.grants:
            return 0.0
        return max(grant.total_w for grant in self.grants)


class ClusterSim:
    """Seeded, deterministic driver for one cluster configuration."""

    def __init__(self, config: ClusterConfig, *, jobs: int | None = None):
        self.config = config
        self.arbiter = ClusterArbiter(config)
        self.trace = ClusterTrace()
        self._jobs = jobs
        self._admitted: set[str] = set()

    def _boundary_membership(self, t0: float, t1: float) -> None:
        """Apply announced lifecycle changes at an epoch boundary."""
        joiners = [
            spec.name
            for spec in self.config.nodes
            if spec.joins_at_s <= t0 and spec.name not in self._admitted
        ]
        if joiners:
            self.arbiter.admit(joiners)
            self._admitted.update(joiners)
        leavers = [
            name
            for name in self.arbiter.members
            if (spec := self.config.node(name)).leaves_at_s is not None
            and t1 > spec.leaves_at_s
        ]
        if leavers:
            self.arbiter.retire(leavers)

    def run(self, duration_s: float) -> ClusterRun:
        """Run ``duration_s`` of cluster time (whole epochs only)."""
        epoch_s = self.config.epoch_s
        n_epochs = int(round(duration_s / epoch_s))
        if n_epochs < 1:
            raise ConfigError(
                f"duration {duration_s}s is below one epoch ({epoch_s}s)"
            )
        run = ClusterRun(config=self.config, trace=self.trace)
        previous: dict[str, NodeEpochReport] = {}
        with make_stepper(self.config, self._jobs) as stepper:
            for epoch in range(n_epochs):
                t0 = epoch * epoch_s
                t1 = t0 + epoch_s
                self._boundary_membership(t0, t1)
                grant = self.arbiter.rebalance(epoch, previous)
                self.arbiter.check_invariant()
                reports = stepper.step(epoch, t0, t1, grant.caps_w)
                self.trace.record_epoch(
                    t1, reports, grant.caps_w, self.config.budget_w
                )
                run.grants.append(grant)
                run.reports.append(reports)
                previous = reports
        return run


def run_cluster(
    config: ClusterConfig,
    duration_s: float,
    *,
    jobs: int | None = None,
) -> ClusterRun:
    """Convenience one-shot: build a :class:`ClusterSim` and run it."""
    return ClusterSim(config, jobs=jobs).run(duration_s)
