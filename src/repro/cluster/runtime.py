"""The cluster epoch loop: arbitrate, grant, step, report, repeat.

:class:`ClusterSim` drives the whole fleet over an explicit — and
faultable — control plane:

1. at each epoch boundary it executes the configured crash schedule
   (:class:`~repro.faults.CrashScenario`): nodes enter their down
   windows, rebooted nodes re-join through the restart protocol, and
   every decision lands in the write-ahead
   :class:`~repro.cluster.journal.Journal` before its effects do,
2. it admits nodes whose join time has arrived and retires announced
   leavers,
3. it collects whichever ``demand`` envelopes the
   :class:`~repro.cluster.transport.UnreliableTransport` delivered to
   the arbiter this round (duplicates and stragglers rejected by
   sequence guard) and hands them to the
   :class:`~repro.cluster.arbiter.ClusterArbiter`, which turns them
   into next caps — reserving silent nodes' budget per their leases so
   the cap-sum invariant holds through partitions.  The decision is
   journaled *before* any grant is sent, so a seeded arbiter crash at
   this point is recovered by rebuilding the arbiter from the journal
   and resending the identical grants — byte-identical to no crash,
4. it sends each member its cap as a ``grant`` envelope; each node's
   :class:`~repro.cluster.lease.NodeLease` applies what arrives or
   steps down the GRANTED → HOLDOVER → DEGRADED → SAFE ladder (a down
   node's lease observes nothing and walks the same ladder),
5. the stepper advances every live node through the epoch under its
   *lease-effective* cap (serially or across fork workers —
   byte-identical either way, because every transport, lease, and
   crash decision happens here in the parent), nodes whose lease
   expired past its TTL run with the daemon's RAPL-backstop safe mode
   latched, and down nodes do not run at all, and
6. the :class:`~repro.cluster.trace.ClusterTrace` rolls the epoch up —
   transport health, lease states, restarts, crash recoveries — and
   the journal seals the epoch with a ``fence`` checkpoint.

**Restart protocol**: a node rebooting at an epoch boundary flushes its
queued envelopes (a dead NIC receives nothing), boots into SAFE with
the daemon's RAPL backstop latched, presents the journal's last fenced
epoch so pre-crash grants are fenced off, and is re-admitted by
:meth:`~repro.cluster.arbiter.ClusterArbiter.readmit` — which releases
its old reservation in the same round it bids again, so its watts are
never counted twice.  It then climbs back to GRANTED through the
ordinary lease ladder.

The cap-sum invariant is checked after every grant: granted plus
reserved watts never sum above the facility budget — including the
crash and rejoin epochs.  With no transport or crash scenario
configured the message layer is quiet and every process survives, and
the loop degenerates to PR 3's perfect-network behavior.

:func:`recover_cluster_sim` is the other half of the journal: given a
config and a journal (possibly reloaded from a torn JSONL dump), it
restores the arbiter, leases, guards, and transport from the last
fence and re-steps the node simulations through the journaled ``step``
entries, returning a sim that continues the run byte-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.sanitizer import (
    StateDigest,
    digest_fields,
    sanitize_enabled,
)
from repro.cluster.arbiter import Arbitration
from repro.cluster.config import ClusterConfig
from repro.cluster.journal import Journal
from repro.cluster.lease import LEASE_CODES, NodeLease
from repro.cluster.node import NodeEpochReport
from repro.cluster.stepper import make_stepper
from repro.cluster.trace import ClusterTrace
from repro.cluster.transport import (
    ARBITER,
    DEMAND,
    GRANT,
    Envelope,
    SequenceGuard,
    TransportStats,
    UnreliableTransport,
    fold_reports,
)
from repro.errors import ConfigError, SimulationError
from repro.faults.scenario import TransportScenario, get_transport_scenario
from repro.faults.telemetry import TelemetryCorruptor
from repro.fleet.arbiter import make_arbiter
from repro.fleet.topology import leaf_racks, rack_row_indices


@dataclass
class ClusterRun:
    """Everything one finished cluster run produced."""

    config: ClusterConfig
    trace: ClusterTrace
    #: per epoch: the arbitration grant that governed it.
    grants: list[Arbitration] = field(default_factory=list)
    #: per epoch: the node reports it produced.
    reports: list[dict[str, NodeEpochReport]] = field(default_factory=list)
    #: per epoch: each admitted node's lease state name at epoch end.
    lease_states: list[dict[str, str]] = field(default_factory=list)
    #: whole-run transport counters.
    transport_stats: TransportStats = field(default_factory=TransportStats)
    #: arbiter crashes recovered by journal redo during the run.
    crash_recoveries: int = 0
    #: ``(epoch, node)`` for every node reboot the run executed.
    node_restarts: list[tuple[int, str]] = field(default_factory=list)
    #: per epoch: the nodes the diurnal schedule left idle (empty sets
    #: on flat runs with no schedule).
    idle_sets: list[frozenset[str]] = field(default_factory=list)
    #: the write-ahead journal the run appended to.
    journal: Journal | None = None
    #: per-epoch state recording when the determinism sanitizer ran
    #: (``REPRO_SANITIZE=1`` or an explicit ``sanitize=True``).
    sanitizer: StateDigest | None = None

    @property
    def n_epochs(self) -> int:
        return len(self.grants)

    def max_cap_sum_w(self) -> float:
        """Largest per-epoch sum of granted caps (invariant witness)."""
        if not self.grants:
            return 0.0
        return max(grant.total_w for grant in self.grants)


class ClusterSim:
    """Seeded, deterministic driver for one cluster configuration."""

    def __init__(
        self,
        config: ClusterConfig,
        *,
        jobs: int | None = None,
        sanitize: bool | None = None,
    ):
        self.config = config
        self.arbiter = make_arbiter(config)
        self.trace = ClusterTrace()
        self.journal = Journal()
        self._jobs = jobs
        #: determinism sanitizer (explicit flag beats REPRO_SANITIZE):
        #: records a canonical digest of every node's epoch report so
        #: serial, stacked, and fork stepping can be diffed field by
        #: field instead of "bytes differ somewhere".
        if sanitize is None:
            sanitize = sanitize_enabled()
        self.sanitizer: StateDigest | None = None
        if sanitize:
            workers = "auto" if jobs is None else str(jobs)
            self.sanitizer = StateDigest(
                f"cluster/{config.engine}/jobs={workers}"
            )
        self._admitted: set[str] = set()
        scenario = self._scenario(config)
        #: the transport seed derives from the cluster seed so a run
        #: replays byte-identically, salted away from node fault seeds.
        self.transport = UnreliableTransport(scenario, seed=config.seed)
        #: telemetry corruption (liars, stuck sensors, NaN bursts):
        #: applied in the parent between stepping and sending, so the
        #: ground-truth reports stay intact for the trace and the
        #: corrupted stream is identical across steppers.
        telemetry = config.telemetry_scenario()
        self._corruptor: TelemetryCorruptor | None = None
        if telemetry is not None and not telemetry.quiet:
            self._corruptor = TelemetryCorruptor(telemetry, seed=config.seed)
        self._arbiter_guard = SequenceGuard(self.transport.stats)
        self._leases: dict[str, NodeLease] = {}
        self._seqs: dict[str, int] = {}
        self._stepper = None
        #: crash schedule, pre-indexed by epoch boundary.
        crash = config.crash_scenario()
        self._arbiter_crashes = set(crash.arbiter_crash_epochs)
        self._crashes_at: dict[int, list[str]] = {}
        self._restarts_at: dict[int, list[str]] = {}
        for restart in crash.node_restarts:
            self._crashes_at.setdefault(restart.crash_epoch, []).append(
                restart.node
            )
            self._restarts_at.setdefault(restart.restart_epoch, []).append(
                restart.node
            )
        #: nodes currently inside a crash window.
        self._down: set[str] = set()
        self.crash_recoveries = 0
        self.node_restarts: list[tuple[int, str]] = []
        #: diurnal-schedule structure: (rack member names, row index)
        #: per rack, precomputed once; empty without a schedule.
        self._sched_racks: tuple[tuple[tuple[str, ...], int], ...] = ()
        if config.schedule is not None and config.topology is not None:
            rows = rack_row_indices(config.topology)
            self._sched_racks = tuple(
                (rack.nodes, rows[rack.name])
                for rack in leaf_racks(config.topology)
            )

    @staticmethod
    def _scenario(config: ClusterConfig) -> TransportScenario:
        """Resolve the transport: explicit config beats the crash
        scenario's companion transport beats quiet."""
        explicit = config.transport_scenario()
        if explicit is not None:
            return explicit
        companion = config.crash_scenario().transport
        if companion is not None:
            return get_transport_scenario(companion)
        return get_transport_scenario("none")

    def _next_seq(self, sender: str) -> int:
        seq = self._seqs.get(sender, 0)
        self._seqs[sender] = seq + 1
        return seq

    # -- stepper lifecycle -------------------------------------------------------

    def _ensure_stepper(self):
        if self._stepper is None:
            self._stepper = make_stepper(self.config, self._jobs)
        return self._stepper

    def close(self) -> None:
        """Release the node stepper (fork workers, if any)."""
        if self._stepper is not None:
            self._stepper.close()
            self._stepper = None

    # -- crash schedule ----------------------------------------------------------

    def _boundary_crashes(self, epoch: int) -> frozenset[str]:
        """Execute the crash schedule at this epoch boundary.

        Nodes entering their down window go dark (journaled as
        ``crash``); nodes whose reboot is due run the restart protocol
        — flush the dead incarnation's queued envelopes, reset the
        lease to SAFE fenced at the journal's last sealed epoch, and
        re-admit with the arbiter so the old reservation is released
        the same round the node bids again.  Returns the names
        rebooting now (the stepper rebuilds their stacks boot-safe).
        """
        for name in self._crashes_at.get(epoch, ()):
            if name in self._admitted and name not in self._down:
                self._down.add(name)
                self.journal.append("crash", epoch, {"node": name})
        restarts: list[str] = []
        for name in self._restarts_at.get(epoch, ()):
            if name not in self._down:
                continue
            self._down.discard(name)
            fenced = self.journal.last_fenced_epoch
            flushed = self.transport.flush(name)
            if name in self._leases:
                self._leases[name].restart(fenced_epoch=fenced)
            self.arbiter.readmit(name, epoch)
            self.node_restarts.append((epoch, name))
            restarts.append(name)
            self.journal.append(
                "readmit",
                epoch,
                {"node": name, "fenced_epoch": fenced, "flushed": flushed},
            )
        return frozenset(restarts)

    def _recover_arbiter(self, epoch: int) -> Arbitration:
        """Redo this epoch's arbitration after a seeded arbiter crash.

        The crash lands *after* the decision hit the journal and
        *before* any grant left, so recovery rebuilds a fresh arbiter
        (and sequence guard, and send counter) from the journaled
        snapshot and re-issues the identical grants — the crash is
        invisible downstream.
        """
        entry = self.journal.last_of("arbitration")
        if entry is None or entry.epoch != epoch:
            raise SimulationError(
                f"arbiter crash at epoch {epoch} but the journal holds "
                f"no arbitration entry for it"
            )
        fresh = make_arbiter(self.config)
        fresh.restore(entry.data["arbiter"])
        self.arbiter = fresh
        guard = SequenceGuard(self.transport.stats)
        guard.restore(entry.data["guard"])
        self._arbiter_guard = guard
        self._seqs[ARBITER] = entry.data["seq"]
        self.crash_recoveries += 1
        return Arbitration(
            epoch=epoch,
            caps_w=dict(entry.data["caps"]),
            group_pools_w=dict(entry.data["pools"]),
            degraded=tuple(entry.data["degraded"]),
            reserved_w=dict(entry.data["reserved"]),
            shed=tuple(entry.data.get("shed", ())),
            fleet_stats=dict(entry.data.get("stats", {})),
            quarantined=tuple(entry.data.get("quarantined", ())),
            brownout=int(entry.data.get("brownout", 0)),
            trust_violations={
                name: tuple(kinds)
                for name, kinds in entry.data.get("violations", {}).items()
            },
        )

    # -- epoch phases ------------------------------------------------------------

    def _boundary_membership(self, epoch: int, t0: float, t1: float) -> None:
        """Apply announced lifecycle changes at an epoch boundary."""
        joiners = [
            spec.name
            for spec in self.config.nodes
            if spec.joins_at_s <= t0 and spec.name not in self._admitted
        ]
        if joiners:
            self.arbiter.admit(joiners)
            self._admitted.update(joiners)
            for name in joiners:
                self._leases[name] = NodeLease(
                    name,
                    floor_w=self.config.node(name).min_cap_w,
                    ttl_epochs=self.config.lease_ttl_epochs,
                    stats=self.transport.stats,
                )
            self.journal.append("admit", epoch, {"nodes": sorted(joiners)})
        leavers = [
            name
            for name in self.arbiter.members
            if (spec := self.config.node(name)).leaves_at_s is not None
            and t1 > spec.leaves_at_s
        ]
        if leavers:
            self.arbiter.retire(leavers)
            self.journal.append("retire", epoch, {"nodes": sorted(leavers)})

    def _ingest_reports(self, epoch: int) -> dict[str, NodeEpochReport]:
        """Demand envelopes the transport delivered to the arbiter."""
        envelopes = self.transport.deliver(ARBITER, epoch)
        folded = fold_reports(envelopes, self._arbiter_guard)
        reports: dict[str, NodeEpochReport] = {}
        for name, payload in folded.items():
            assert isinstance(payload, NodeEpochReport)
            reports[name] = payload
        return reports

    def _send_grants(self, epoch: int, grant: Arbitration) -> None:
        for name in sorted(grant.caps_w):
            self.transport.send(
                Envelope(
                    kind=GRANT,
                    src=ARBITER,
                    dst=name,
                    epoch=epoch,
                    seq=self._next_seq(ARBITER),
                    payload=grant.caps_w[name],
                ),
                epoch,
            )

    def _send_reports(
        self, epoch: int, reports: dict[str, NodeEpochReport]
    ) -> None:
        if self._corruptor is not None:
            reports = self._corruptor.corrupt(epoch, reports)
        for name in sorted(reports):
            self.transport.send(
                Envelope(
                    kind=DEMAND,
                    src=name,
                    dst=ARBITER,
                    epoch=epoch,
                    seq=self._next_seq(name),
                    payload=reports[name],
                ),
                epoch,
            )

    def _idle_set(
        self, epoch: int, caps_w: dict[str, float]
    ) -> frozenset[str]:
        """Nodes the diurnal schedule leaves without traffic this epoch.

        Within each rack the first ``k`` members (rack declaration
        order) are active; the rest are idle.  Pure arithmetic on the
        epoch counter, decided here in the parent so serial, stacked,
        and fork stepping see the identical set.  Down nodes and
        un-granted nodes are excluded — crash windows outrank idleness.
        """
        if not self._sched_racks:
            return frozenset()
        schedule = self.config.schedule
        assert schedule is not None
        idle: set[str] = set()
        for members, row in self._sched_racks:
            k = schedule.active_count(len(members), epoch, row)
            for name in members[k:]:
                if name in caps_w and name not in self._down:
                    idle.add(name)
        return frozenset(idle)

    def _observe_leases(
        self, epoch: int
    ) -> tuple[dict[str, float], frozenset[str]]:
        """Deliver grants to every member and step each lease ladder.

        Down nodes observe nothing — a dead machine receives no
        envelopes (its queue keeps accumulating until the reboot
        flushes it) — so their ladders walk down exactly like a
        partitioned node's.  Returns the lease-effective caps the
        nodes will enforce this epoch and the set of names whose lease
        has expired into SAFE.
        """
        members = self.arbiter.members
        for name in list(self._leases):
            if name not in members:
                del self._leases[name]
        caps: dict[str, float] = {}
        safe: set[str] = set()
        for name in sorted(members):
            lease = self._leases[name]
            if name in self._down:
                lease.observe([], epoch)
            else:
                lease.observe(self.transport.deliver(name, epoch), epoch)
            caps[name] = lease.cap_w
            if lease.safe:
                safe.add(name)
        return caps, frozenset(safe)

    # -- the loop ----------------------------------------------------------------

    def run(self, duration_s: float, *, start_epoch: int = 0) -> ClusterRun:
        """Run ``duration_s`` of cluster time (whole epochs only).

        ``start_epoch`` supports crash recovery: a sim restored by
        :func:`recover_cluster_sim` continues from the first unfenced
        epoch, and the returned run covers only the continued tail.
        """
        epoch_s = self.config.epoch_s
        n_epochs = int(round(duration_s / epoch_s))
        if n_epochs < 1:
            raise ConfigError(
                f"duration {duration_s}s is below one epoch ({epoch_s}s)"
            )
        if start_epoch < 0 or start_epoch >= n_epochs:
            raise ConfigError(
                f"start_epoch {start_epoch} outside the run's "
                f"{n_epochs} epochs"
            )
        run = ClusterRun(
            config=self.config,
            trace=self.trace,
            transport_stats=self.transport.stats,
            journal=self.journal,
            sanitizer=self.sanitizer,
        )
        stepper = self._ensure_stepper()
        try:
            for epoch in range(start_epoch, n_epochs):
                t0 = epoch * epoch_s
                t1 = t0 + epoch_s
                restarts = self._boundary_crashes(epoch)
                self._boundary_membership(epoch, t0, t1)
                delivered = self._ingest_reports(epoch)
                grant = self.arbiter.rebalance(epoch, delivered)
                self.arbiter.check_invariant()
                # write-ahead: the decision is durable before any grant
                # leaves, so an arbiter crash here is redone, not lost
                self.journal.append(
                    "arbitration",
                    epoch,
                    {
                        "caps": dict(grant.caps_w),
                        "pools": dict(grant.group_pools_w),
                        "degraded": list(grant.degraded),
                        "reserved": dict(grant.reserved_w),
                        "shed": list(grant.shed),
                        "stats": dict(grant.fleet_stats),
                        "quarantined": list(grant.quarantined),
                        "brownout": grant.brownout,
                        "violations": {
                            name: list(kinds)
                            for name, kinds in grant.trust_violations.items()
                        },
                        "arbiter": self.arbiter.snapshot(),
                        "guard": self._arbiter_guard.snapshot(),
                        "seq": self._seqs.get(ARBITER, 0),
                    },
                )
                if epoch in self._arbiter_crashes:
                    grant = self._recover_arbiter(epoch)
                self._send_grants(epoch, grant)
                caps_w, safe_names = self._observe_leases(epoch)
                idle = self._idle_set(epoch, caps_w)
                self.journal.append(
                    "leases",
                    epoch,
                    {
                        name: self._leases[name].snapshot()
                        for name in sorted(self._leases)
                    },
                )
                self.journal.append(
                    "step",
                    epoch,
                    {
                        "caps": dict(caps_w),
                        "safe": sorted(safe_names),
                        "down": sorted(self._down),
                        "restarts": sorted(restarts),
                        "idle": sorted(idle),
                    },
                )
                reports = stepper.step(
                    epoch,
                    t0,
                    t1,
                    caps_w,
                    safe_names,
                    frozenset(self._down),
                    restarts,
                    idle,
                )
                if self.sanitizer is not None:
                    for name in sorted(reports):
                        self.sanitizer.record(
                            epoch, name, digest_fields(reports[name])
                        )
                self._send_reports(epoch, reports)
                self.trace.record_epoch(
                    t1, reports, caps_w, self.config.budget_w
                )
                lease_states = {
                    name: self._leases[name].state.value
                    for name in sorted(self._leases)
                }
                fleet_counters = None
                if self.config.topology is not None:
                    fleet_counters = {
                        **grant.fleet_stats,
                        "shed": len(grant.shed),
                        "idle": len(idle),
                    }
                self.trace.record_control(
                    t1,
                    transport_epoch=self.transport.stats.take_epoch(epoch),
                    lease_codes={
                        name: LEASE_CODES[self._leases[name].state]
                        for name in self._leases
                    },
                    reserved_w=sum(grant.reserved_w.values()),
                    degraded_grants=len(grant.degraded),
                    restarts=len(restarts),
                    crash_recoveries=(
                        1 if epoch in self._arbiter_crashes else 0
                    ),
                    fleet=fleet_counters,
                    brownout=grant.brownout,
                    trust_violations=len(grant.trust_violations),
                    quarantined=len(grant.quarantined),
                )
                run.grants.append(grant)
                run.reports.append(reports)
                run.lease_states.append(lease_states)
                run.idle_sets.append(idle)
                self.journal.append(
                    "fence",
                    epoch,
                    {
                        "transport": self.transport.snapshot(),
                        "telemetry": (
                            self._corruptor.snapshot()
                            if self._corruptor is not None
                            else None
                        ),
                        "seqs": dict(self._seqs),
                        "admitted": sorted(self._admitted),
                        "down": sorted(self._down),
                    },
                )
        finally:
            self.close()
        run.crash_recoveries = self.crash_recoveries
        run.node_restarts = list(self.node_restarts)
        return run


def recover_cluster_sim(
    config: ClusterConfig,
    journal: Journal,
    *,
    jobs: int | None = None,
) -> tuple[ClusterSim, int]:
    """Rebuild a :class:`ClusterSim` from a journal after a crash.

    Returns ``(sim, next_epoch)``: the control plane — arbiter, lease
    ladders, sequence guards, transport queues and RNG, send counters,
    membership — is restored from the last fence, and the node
    simulations are rebuilt by re-stepping them through the journaled
    ``step`` entries (deterministic, because every cap/safe/down/
    restart decision was journaled by the parent).  Calling
    ``sim.run(duration_s, start_epoch=next_epoch)`` continues the run
    byte-identically to one that never crashed.  An empty or unfenced
    journal recovers to a cold start (``next_epoch == 0``).
    """
    state = journal.replay()
    sim = ClusterSim(config, jobs=jobs)
    sim.journal = journal
    if state.last_fenced_epoch < 0:
        return sim, 0
    sim._admitted = set(state.admitted)
    sim._down = set(state.down)
    sim._seqs = dict(state.seqs)
    if state.transport is not None:
        sim.transport.restore(state.transport)
    if state.telemetry is not None and sim._corruptor is not None:
        sim._corruptor.restore(state.telemetry)
    if state.arbiter is not None:
        sim.arbiter.restore(state.arbiter)
    guard = SequenceGuard(sim.transport.stats)
    guard.restore(state.guard)
    sim._arbiter_guard = guard
    for name, snap in state.leases.items():
        lease = NodeLease(
            name,
            floor_w=config.node(name).min_cap_w,
            ttl_epochs=config.lease_ttl_epochs,
            stats=sim.transport.stats,
        )
        lease.restore(snap)
        sim._leases[name] = lease
    epoch_s = config.epoch_s
    stepper = sim._ensure_stepper()
    for epoch, caps_w, safe, down, restarts, idle in state.steps:
        t0 = epoch * epoch_s
        # reports are discarded: their downstream effects (envelopes,
        # grants, trace) are already part of the fenced checkpoint
        stepper.step(
            epoch,
            t0,
            t0 + epoch_s,
            caps_w,
            frozenset(safe),
            frozenset(down),
            frozenset(restarts),
            frozenset(idle),
        )
    return sim, state.last_fenced_epoch + 1


def run_cluster(
    config: ClusterConfig,
    duration_s: float,
    *,
    jobs: int | None = None,
    sanitize: bool | None = None,
) -> ClusterRun:
    """Convenience one-shot: build a :class:`ClusterSim` and run it."""
    return ClusterSim(config, jobs=jobs, sanitize=sanitize).run(duration_s)
