"""The cluster epoch loop: arbitrate, grant, step, report, repeat.

:class:`ClusterSim` drives the whole fleet over an explicit — and
faultable — control plane:

1. at each epoch boundary it admits nodes whose join time has arrived
   and retires announced leavers,
2. it collects whichever ``demand`` envelopes the
   :class:`~repro.cluster.transport.UnreliableTransport` delivered to
   the arbiter this round (duplicates and stragglers rejected by
   sequence guard) and hands them to the
   :class:`~repro.cluster.arbiter.ClusterArbiter`, which turns them
   into next caps — reserving silent nodes' budget per their leases so
   the cap-sum invariant holds through partitions,
3. it sends each member its cap as a ``grant`` envelope; each node's
   :class:`~repro.cluster.lease.NodeLease` applies what arrives or
   steps down the GRANTED → HOLDOVER → DEGRADED → SAFE ladder,
4. the stepper advances every live node through the epoch under its
   *lease-effective* cap (serially or across fork workers —
   byte-identical either way, because every transport and lease
   decision happens here in the parent), nodes whose lease expired past
   its TTL run with the daemon's RAPL-backstop safe mode latched, and
5. the :class:`~repro.cluster.trace.ClusterTrace` rolls the epoch up,
   including per-epoch transport health and lease states.

The cap-sum invariant is checked after every grant: granted plus
reserved watts never sum above the facility budget.  With no transport
scenario configured the message layer is quiet — every envelope
delivered, zero fault rolls — and the loop degenerates to PR 3's
perfect-network behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.arbiter import Arbitration, ClusterArbiter
from repro.cluster.config import ClusterConfig
from repro.cluster.lease import LEASE_CODES, NodeLease
from repro.cluster.node import NodeEpochReport
from repro.cluster.stepper import make_stepper
from repro.cluster.trace import ClusterTrace
from repro.cluster.transport import (
    ARBITER,
    DEMAND,
    GRANT,
    Envelope,
    SequenceGuard,
    TransportStats,
    UnreliableTransport,
    fold_reports,
)
from repro.errors import ConfigError
from repro.faults.scenario import TransportScenario, get_transport_scenario


@dataclass
class ClusterRun:
    """Everything one finished cluster run produced."""

    config: ClusterConfig
    trace: ClusterTrace
    #: per epoch: the arbitration grant that governed it.
    grants: list[Arbitration] = field(default_factory=list)
    #: per epoch: the node reports it produced.
    reports: list[dict[str, NodeEpochReport]] = field(default_factory=list)
    #: per epoch: each admitted node's lease state name at epoch end.
    lease_states: list[dict[str, str]] = field(default_factory=list)
    #: whole-run transport counters.
    transport_stats: TransportStats = field(default_factory=TransportStats)

    @property
    def n_epochs(self) -> int:
        return len(self.grants)

    def max_cap_sum_w(self) -> float:
        """Largest per-epoch sum of granted caps (invariant witness)."""
        if not self.grants:
            return 0.0
        return max(grant.total_w for grant in self.grants)


class ClusterSim:
    """Seeded, deterministic driver for one cluster configuration."""

    def __init__(self, config: ClusterConfig, *, jobs: int | None = None):
        self.config = config
        self.arbiter = ClusterArbiter(config)
        self.trace = ClusterTrace()
        self._jobs = jobs
        self._admitted: set[str] = set()
        scenario = self._scenario(config)
        #: the transport seed derives from the cluster seed so a run
        #: replays byte-identically, salted away from node fault seeds.
        self.transport = UnreliableTransport(scenario, seed=config.seed)
        self._arbiter_guard = SequenceGuard(self.transport.stats)
        self._leases: dict[str, NodeLease] = {}
        self._seqs: dict[str, int] = {}

    @staticmethod
    def _scenario(config: ClusterConfig) -> TransportScenario:
        if config.transport is None:
            return get_transport_scenario("none")
        return get_transport_scenario(config.transport)

    def _next_seq(self, sender: str) -> int:
        seq = self._seqs.get(sender, 0)
        self._seqs[sender] = seq + 1
        return seq

    def _boundary_membership(self, t0: float, t1: float) -> None:
        """Apply announced lifecycle changes at an epoch boundary."""
        joiners = [
            spec.name
            for spec in self.config.nodes
            if spec.joins_at_s <= t0 and spec.name not in self._admitted
        ]
        if joiners:
            self.arbiter.admit(joiners)
            self._admitted.update(joiners)
            for name in joiners:
                self._leases[name] = NodeLease(
                    name,
                    floor_w=self.config.node(name).min_cap_w,
                    ttl_epochs=self.config.lease_ttl_epochs,
                    stats=self.transport.stats,
                )
        leavers = [
            name
            for name in self.arbiter.members
            if (spec := self.config.node(name)).leaves_at_s is not None
            and t1 > spec.leaves_at_s
        ]
        if leavers:
            self.arbiter.retire(leavers)

    def _ingest_reports(self, epoch: int) -> dict[str, NodeEpochReport]:
        """Demand envelopes the transport delivered to the arbiter."""
        envelopes = self.transport.deliver(ARBITER, epoch)
        folded = fold_reports(envelopes, self._arbiter_guard)
        reports: dict[str, NodeEpochReport] = {}
        for name, payload in folded.items():
            assert isinstance(payload, NodeEpochReport)
            reports[name] = payload
        return reports

    def _send_grants(self, epoch: int, grant: Arbitration) -> None:
        for name in sorted(grant.caps_w):
            self.transport.send(
                Envelope(
                    kind=GRANT,
                    src=ARBITER,
                    dst=name,
                    epoch=epoch,
                    seq=self._next_seq(ARBITER),
                    payload=grant.caps_w[name],
                ),
                epoch,
            )

    def _send_reports(
        self, epoch: int, reports: dict[str, NodeEpochReport]
    ) -> None:
        for name in sorted(reports):
            self.transport.send(
                Envelope(
                    kind=DEMAND,
                    src=name,
                    dst=ARBITER,
                    epoch=epoch,
                    seq=self._next_seq(name),
                    payload=reports[name],
                ),
                epoch,
            )

    def _observe_leases(self, epoch: int) -> tuple[dict[str, float], frozenset[str]]:
        """Deliver grants to every member and step each lease ladder.

        Returns the lease-effective caps the nodes will enforce this
        epoch and the set of names whose lease has expired into SAFE.
        """
        members = self.arbiter.members
        for name in list(self._leases):
            if name not in members:
                del self._leases[name]
        caps: dict[str, float] = {}
        safe: set[str] = set()
        for name in sorted(members):
            lease = self._leases[name]
            lease.observe(self.transport.deliver(name, epoch), epoch)
            caps[name] = lease.cap_w
            if lease.safe:
                safe.add(name)
        return caps, frozenset(safe)

    def run(self, duration_s: float) -> ClusterRun:
        """Run ``duration_s`` of cluster time (whole epochs only)."""
        epoch_s = self.config.epoch_s
        n_epochs = int(round(duration_s / epoch_s))
        if n_epochs < 1:
            raise ConfigError(
                f"duration {duration_s}s is below one epoch ({epoch_s}s)"
            )
        run = ClusterRun(
            config=self.config,
            trace=self.trace,
            transport_stats=self.transport.stats,
        )
        with make_stepper(self.config, self._jobs) as stepper:
            for epoch in range(n_epochs):
                t0 = epoch * epoch_s
                t1 = t0 + epoch_s
                self._boundary_membership(t0, t1)
                delivered = self._ingest_reports(epoch)
                grant = self.arbiter.rebalance(epoch, delivered)
                self.arbiter.check_invariant()
                self._send_grants(epoch, grant)
                caps_w, safe_names = self._observe_leases(epoch)
                reports = stepper.step(epoch, t0, t1, caps_w, safe_names)
                self._send_reports(epoch, reports)
                self.trace.record_epoch(
                    t1, reports, caps_w, self.config.budget_w
                )
                lease_states = {
                    name: self._leases[name].state.value
                    for name in sorted(self._leases)
                }
                self.trace.record_control(
                    t1,
                    transport_epoch=self.transport.stats.take_epoch(),
                    lease_codes={
                        name: LEASE_CODES[self._leases[name].state]
                        for name in self._leases
                    },
                    reserved_w=sum(grant.reserved_w.values()),
                    degraded_grants=len(grant.degraded),
                )
                run.grants.append(grant)
                run.reports.append(reports)
                run.lease_states.append(lease_states)
        return run


def run_cluster(
    config: ClusterConfig,
    duration_s: float,
    *,
    jobs: int | None = None,
) -> ClusterRun:
    """Convenience one-shot: build a :class:`ClusterSim` and run it."""
    return ClusterSim(config, jobs=jobs).run(duration_s)
