"""Write-ahead journal for the cluster control plane.

Every decision the supervisor makes — membership changes, arbitration
grants, lease transitions, node steps, crash re-admissions — is
appended as an epoch-tagged :class:`JournalEntry` *before* its effects
leave the process, and each completed epoch is sealed with a ``fence``
entry carrying a full checkpoint of the message layer.  That ordering
buys two recovery guarantees:

* **redo within an epoch** — an arbiter that dies after its decision is
  journaled but before any grant is sent can be rebuilt from the last
  ``arbitration`` entry and resend the *identical* grants, making the
  crash invisible (byte-identical to a run that never crashed);
* **replay across epochs** — :meth:`Journal.replay` folds the entries
  up to the last fence into a :class:`RecoveredState`;
  :func:`~repro.cluster.runtime.recover_cluster_sim` restores the
  arbiter, every lease ladder and sequence-guard position, the
  transport queues and RNG, and re-steps the node simulations through
  the journaled ``step`` entries — so continuing the run produces
  byte-identical grants, lease states, and trace points from the fence
  on.

Entry kinds, in per-epoch append order::

    admit / retire          membership at the epoch boundary
    crash / readmit         scenario crashes and restart re-admissions
    arbitration             the grant decision + full arbiter snapshot
    leases                  every lease's post-observe ladder position
    step                    the caps/safe/down/restart sets the nodes ran
    fence                   epoch sealed: transport + seq checkpoint

Entries are deterministic (no wall clock, no unseeded randomness) and
the JSON-lines dump is fully ordered, so two runs of the same seeded
config produce byte-identical journals.  :meth:`Journal.load` tolerates
a torn final line — the classic crash-during-append — by dropping it,
which is safe because an unfenced suffix is redone, never trusted.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.cluster.node import NodeEpochReport
from repro.cluster.transport import Envelope
from repro.errors import ConfigError

#: entry kinds, in the order one epoch appends them.
ENTRY_KINDS = (
    "admit",
    "retire",
    "crash",
    "readmit",
    "arbitration",
    "leases",
    "step",
    "fence",
)


@dataclass(frozen=True)
class JournalEntry:
    """One journaled control-plane event."""

    #: global append position (dense, starts at 0).
    seq: int
    #: the arbitration epoch the event belongs to.
    epoch: int
    kind: str
    data: dict[str, Any]

    def __post_init__(self) -> None:
        if self.kind not in ENTRY_KINDS:
            raise ConfigError(f"unknown journal entry kind {self.kind!r}")
        if self.epoch < 0:
            raise ConfigError("journal entry epoch cannot be negative")


@dataclass(frozen=True)
class RecoveredState:
    """Everything :meth:`Journal.replay` folds out of the entries.

    All control-plane state as of the last fence, plus the per-epoch
    ``step`` directives needed to rebuild the node simulations by
    re-stepping them (deterministic, because every cap/safe/down/
    restart decision was rolled in the parent and journaled).
    """

    last_fenced_epoch: int
    admitted: tuple[str, ...]
    down: tuple[str, ...]
    seqs: dict[str, int]
    transport: dict[str, Any] | None
    #: telemetry-corruptor checkpoint (None: no corruption configured
    #: or a pre-trust journal).
    telemetry: dict[str, Any] | None
    arbiter: dict[str, Any] | None
    guard: dict[str, int]
    leases: dict[str, dict[str, Any]]
    #: per fenced epoch: (epoch, caps_w, safe, down, restarts, idle).
    steps: tuple[tuple[int, dict[str, float], tuple[str, ...],
                       tuple[str, ...], tuple[str, ...],
                       tuple[str, ...]], ...]


class Journal:
    """Append-only, epoch-fenced control-plane journal."""

    def __init__(self) -> None:
        self._entries: list[JournalEntry] = []
        self._last_fenced = -1

    # -- writing -----------------------------------------------------------------

    def append(
        self, kind: str, epoch: int, data: dict[str, Any]
    ) -> JournalEntry:
        entry = JournalEntry(
            seq=len(self._entries), epoch=epoch, kind=kind, data=data
        )
        self._entries.append(entry)
        if kind == "fence":
            self._last_fenced = epoch
        return entry

    # -- introspection -----------------------------------------------------------

    @property
    def entries(self) -> tuple[JournalEntry, ...]:
        return tuple(self._entries)

    @property
    def last_fenced_epoch(self) -> int:
        """Newest epoch sealed by a fence (-1: nothing fenced yet)."""
        return self._last_fenced

    def __len__(self) -> int:
        return len(self._entries)

    def last_of(self, kind: str) -> JournalEntry | None:
        """The newest entry of a kind (the redo source for recovery)."""
        for entry in reversed(self._entries):
            if entry.kind == kind:
                return entry
        return None

    # -- replay ------------------------------------------------------------------

    def replay(self) -> RecoveredState:
        """Fold the fenced prefix into a recoverable control-plane state.

        Entries after the last fence describe an epoch that never
        committed; they are ignored here (the runtime redoes unfenced
        arbitration from :meth:`last_of` during in-epoch recovery).
        """
        fence: JournalEntry | None = None
        arbitration: JournalEntry | None = None
        leases: dict[str, dict[str, Any]] = {}
        steps: list[
            tuple[int, dict[str, float], tuple[str, ...], tuple[str, ...],
                  tuple[str, ...], tuple[str, ...]]
        ] = []
        for entry in self._entries:
            if entry.epoch > self._last_fenced:
                break
            if entry.kind == "fence":
                fence = entry
            elif entry.kind == "arbitration":
                arbitration = entry
            elif entry.kind == "leases":
                leases = {
                    name: dict(snap) for name, snap in entry.data.items()
                }
            elif entry.kind == "step":
                steps.append((
                    entry.epoch,
                    dict(entry.data["caps"]),
                    tuple(entry.data["safe"]),
                    tuple(entry.data["down"]),
                    tuple(entry.data["restarts"]),
                    # pre-fleet journals carry no idle set
                    tuple(entry.data.get("idle", ())),
                ))
        return RecoveredState(
            last_fenced_epoch=self._last_fenced,
            admitted=tuple(fence.data["admitted"]) if fence else (),
            down=tuple(fence.data["down"]) if fence else (),
            seqs=dict(fence.data["seqs"]) if fence else {},
            transport=fence.data["transport"] if fence else None,
            # pre-trust journals carry no telemetry checkpoint
            telemetry=fence.data.get("telemetry") if fence else None,
            arbiter=arbitration.data["arbiter"] if arbitration else None,
            guard=dict(arbitration.data["guard"]) if arbitration else {},
            leases=leases,
            steps=tuple(steps),
        )

    # -- (de)serialization ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """Deterministic JSON-lines form (one entry per line)."""
        lines = [
            json.dumps(_entry_to_jsonable(entry), sort_keys=True)
            for entry in self._entries
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def dump(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "Journal":
        """Parse a JSON-lines dump, dropping a torn final line.

        A crash mid-append leaves a truncated last record; dropping it
        is safe because everything after the last fence is redone from
        scratch, never trusted.  A malformed line anywhere *else* is
        corruption and raises.
        """
        journal = cls()
        lines = [line for line in text.splitlines() if line.strip()]
        for lineno, line in enumerate(lines):
            try:
                raw = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1:
                    break  # torn tail: the unfenced suffix is redone
                raise ConfigError(
                    f"corrupt journal entry at line {lineno + 1}"
                ) from None
            entry = _entry_from_jsonable(raw)
            if entry.seq != len(journal):
                raise ConfigError(
                    f"journal sequence gap at line {lineno + 1}: "
                    f"expected seq {len(journal)}, got {entry.seq}"
                )
            journal.append(entry.kind, entry.epoch, entry.data)
        return journal

    @classmethod
    def load(cls, path: str | Path) -> "Journal":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_jsonl(handle.read())


# -- JSON conversion helpers ------------------------------------------------------
#
# Journal entries hold live objects in memory (frozen dataclasses, RNG
# state tuples) so in-process recovery is exact and allocation-free;
# these helpers own the disk round trip.  Python floats survive the
# repr-based JSON round trip exactly, so a journal restored from disk
# recovers byte-identical state.


def _report_to_jsonable(report: NodeEpochReport) -> dict[str, Any]:
    return asdict(report)


def _report_from_jsonable(data: dict[str, Any]) -> NodeEpochReport:
    return NodeEpochReport(**data)


def _envelope_to_jsonable(env: Envelope) -> dict[str, Any]:
    if isinstance(env.payload, NodeEpochReport):
        payload: dict[str, Any] = {"report": _report_to_jsonable(env.payload)}
    else:
        payload = {"cap": env.payload}
    return {
        "kind": env.kind,
        "src": env.src,
        "dst": env.dst,
        "epoch": env.epoch,
        "seq": env.seq,
        "payload": payload,
    }


def _envelope_from_jsonable(data: dict[str, Any]) -> Envelope:
    payload = data["payload"]
    value: object
    if "report" in payload:
        value = _report_from_jsonable(payload["report"])
    else:
        value = payload["cap"]
    return Envelope(
        kind=data["kind"],
        src=data["src"],
        dst=data["dst"],
        epoch=data["epoch"],
        seq=data["seq"],
        payload=value,
    )


def _transport_to_jsonable(state: dict[str, Any]) -> dict[str, Any]:
    version, internal, gauss = state["rng"]
    return {
        "order": state["order"],
        "rng": {
            "version": version,
            "state": list(internal),
            "gauss": gauss,
        },
        "queues": {
            dst: [
                [epoch, order, _envelope_to_jsonable(env)]
                for epoch, order, env in items
            ]
            for dst, items in state["queues"].items()
        },
        "stats": state["stats"],
    }


def _transport_from_jsonable(data: dict[str, Any]) -> dict[str, Any]:
    rng = data["rng"]
    return {
        "order": data["order"],
        "rng": (rng["version"], tuple(rng["state"]), rng["gauss"]),
        "queues": {
            dst: [
                (epoch, order, _envelope_from_jsonable(env))
                for epoch, order, env in items
            ]
            for dst, items in data["queues"].items()
        },
        "stats": data["stats"],
    }


def _telemetry_to_jsonable(state: dict[str, Any]) -> dict[str, Any]:
    version, internal, gauss = state["rng"]
    return {
        "rng": {
            "version": version,
            "state": list(internal),
            "gauss": gauss,
        },
        "stuck": {
            name: _report_to_jsonable(report)
            for name, report in state["stuck"].items()
        },
    }


def _telemetry_from_jsonable(data: dict[str, Any]) -> dict[str, Any]:
    rng = data["rng"]
    return {
        "rng": (rng["version"], tuple(rng["state"]), rng["gauss"]),
        "stuck": {
            name: _report_from_jsonable(report)
            for name, report in data["stuck"].items()
        },
    }


def _arbiter_to_jsonable(state: dict[str, Any]) -> dict[str, Any]:
    out = dict(state)
    out["last_report"] = {
        name: _report_to_jsonable(report)
        for name, report in state["last_report"].items()
    }
    return out


def _arbiter_from_jsonable(data: dict[str, Any]) -> dict[str, Any]:
    out = dict(data)
    out["last_report"] = {
        name: _report_from_jsonable(report)
        for name, report in data["last_report"].items()
    }
    return out


def _entry_to_jsonable(entry: JournalEntry) -> dict[str, Any]:
    data = dict(entry.data)
    if entry.kind == "fence":
        data["transport"] = _transport_to_jsonable(data["transport"])
        if data.get("telemetry") is not None:
            data["telemetry"] = _telemetry_to_jsonable(data["telemetry"])
    elif entry.kind == "arbitration":
        data["arbiter"] = _arbiter_to_jsonable(data["arbiter"])
    return {
        "seq": entry.seq,
        "epoch": entry.epoch,
        "kind": entry.kind,
        "data": data,
    }


def _entry_from_jsonable(raw: dict[str, Any]) -> JournalEntry:
    data = dict(raw["data"])
    if raw["kind"] == "fence":
        data["transport"] = _transport_from_jsonable(data["transport"])
        if data.get("telemetry") is not None:
            data["telemetry"] = _telemetry_from_jsonable(data["telemetry"])
    elif raw["kind"] == "arbitration":
        data["arbiter"] = _arbiter_from_jsonable(data["arbiter"])
    return JournalEntry(
        seq=raw["seq"], epoch=raw["epoch"], kind=raw["kind"], data=data
    )
