"""Unreliable control-plane transport between nodes and the arbiter.

PR 3's cluster assumed a perfect network: every ``NodeEpochReport``
arrived intact and every cap grant applied instantly.  Real
per-application power delivery at datacenter scale rides a lossy
control plane, so this module makes the message layer explicit — and
faultable.  All cluster traffic travels as epoch-sequenced
:class:`Envelope` values through one :class:`UnreliableTransport`:

* ``demand`` envelopes carry a node's :class:`~repro.cluster.node.
  NodeEpochReport` to the arbiter (sent at the end of epoch *e*,
  normally picked up at the start of epoch *e+1* — the same one-epoch
  reporting lag the perfect-network runtime always had);
* ``grant`` envelopes carry the arbiter's cap back (sent and normally
  delivered within the granting epoch).

A seeded :class:`~repro.faults.scenario.TransportScenario` injects
drop, N-epoch delay, duplication, per-batch reordering, and named
node↔arbiter partitions.  Every roll comes from one ``random.Random``
consumed in a deterministic order (senders iterate sorted names), so a
faulty run replays byte-identically — and the serial and parallel node
steppers stay byte-identical because *all* transport logic runs in the
parent process; workers only ever see the caps that survived delivery.

Receivers defend themselves with a :class:`SequenceGuard`: an envelope
whose epoch is at or below the newest accepted from the same sender is
a duplicate or a reordered straggler and is rejected (counted as
``stale``).  :func:`fold_reports` is the arbiter-side ingestion built
on that guard; the property suite proves that any permutation and
duplication of one epoch's envelopes folds to the identical report set,
hence byte-identical grants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults.scenario import TransportScenario

#: reserved endpoint name for the arbiter's side of every link.
ARBITER = "arbiter"

#: envelope kinds.
DEMAND = "demand"
GRANT = "grant"

#: seed salt so the transport schedule is independent of the node fault
#: schedules drawn from the same cluster seed.
_SEED_SALT = 0x7247A45F


@dataclass(frozen=True)
class Envelope:
    """One control-plane message, sequenced by arbitration epoch."""

    kind: str
    src: str
    dst: str
    #: the epoch the payload describes; doubles as the sequence number
    #: receivers deduplicate and order by (one payload per epoch per
    #: sender direction).
    epoch: int
    #: sender's running send counter — a deterministic tie-break for
    #: delivery ordering, never consulted for acceptance.
    seq: int
    payload: object

    def __post_init__(self) -> None:
        if self.kind not in (DEMAND, GRANT):
            raise ConfigError(f"unknown envelope kind {self.kind!r}")
        if self.epoch < 0:
            raise ConfigError("envelope epoch cannot be negative")


@dataclass
class TransportStats:
    """Running totals plus a per-epoch window the supervisor samples."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    delayed: int = 0
    duplicated: int = 0
    #: duplicate/reordered envelopes rejected by a receiver's guard.
    stale: int = 0
    _window: dict[str, int] = field(
        default_factory=lambda: {
            "sent": 0, "delivered": 0, "dropped": 0,
            "delayed": 0, "duplicated": 0, "stale": 0,
        }
    )
    #: closed per-epoch windows (epoch -> counts), archived by
    #: :meth:`take_epoch` when it is given the epoch being sealed.
    _epochs: dict[int, dict[str, int]] = field(default_factory=dict)

    def count(self, event: str, n: int = 1) -> None:
        setattr(self, event, getattr(self, event) + n)
        self._window[event] += n

    def take_epoch(self, epoch: int | None = None) -> dict[str, int]:
        """Counts since the last call (one arbitration epoch's worth).

        With ``epoch`` given, the closed window is also archived so
        whole-run dumps can report every epoch's transport health.
        """
        window = dict(self._window)
        for key in self._window:
            self._window[key] = 0
        if epoch is not None:
            self._epochs[epoch] = window
        return window

    def epoch_windows(self) -> tuple[tuple[int, dict[str, int]], ...]:
        """The archived windows, sorted by epoch.

        The archive dict fills in arbitration order, but recovery can
        interleave re-fills, so dumps must not trust insertion order —
        sorting here is what keeps a recovered run's dump byte-equal
        to an uninterrupted one's.
        """
        return tuple(
            (epoch, dict(self._epochs[epoch]))
            for epoch in sorted(self._epochs)
        )

    def windows_jsonable(self) -> list[dict]:
        """Byte-stable JSON form: one row per epoch, sorted keys."""
        return [
            {"epoch": epoch, **{k: window[k] for k in sorted(window)}}
            for epoch, window in self.epoch_windows()
        ]

    def snapshot(self) -> dict:
        """Checkpoint the totals and the open window (journal fence)."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "delayed": self.delayed,
            "duplicated": self.duplicated,
            "stale": self.stale,
            "window": dict(self._window),
            "epochs": [
                [epoch, dict(window)]
                for epoch, window in sorted(self._epochs.items())
            ],
        }

    def restore(self, state: dict) -> None:
        """Restore counters in place (guards and leases keep their
        references to this object across a recovery)."""
        for event in ("sent", "delivered", "dropped", "delayed",
                      "duplicated", "stale"):
            setattr(self, event, state[event])
        self._window = dict(state["window"])
        # pre-window-archive journals carry no "epochs" key
        self._epochs = {
            int(epoch): dict(window)
            for epoch, window in state.get("epochs", [])
        }


class SequenceGuard:
    """Rejects duplicate and out-of-order envelopes per (kind, src).

    Acceptance is monotone in epoch: an envelope at or below the newest
    accepted epoch from the same sender is stale.  Folding a batch
    through the guard is therefore order-independent in outcome — the
    newest epoch wins no matter how the batch was permuted or
    duplicated — which is exactly the property the grants-equality
    tests assert.
    """

    def __init__(self, stats: TransportStats | None = None):
        self._high: dict[tuple[str, str], int] = {}
        self._stats = stats

    def accept(self, env: Envelope) -> bool:
        key = (env.kind, env.src)
        if env.epoch <= self._high.get(key, -1):
            if self._stats is not None:
                self._stats.count("stale")
            return False
        self._high[key] = env.epoch
        return True

    def prime(self, kind: str, src: str, epoch: int) -> None:
        """Pre-position the high-water mark without accepting anything.

        A rebooted node primes its grant guard at its last *fenced*
        epoch so every pre-crash straggler still in flight is stale on
        arrival — the wire-level half of the restart protocol.
        """
        key = (kind, src)
        if epoch > self._high.get(key, -1):
            self._high[key] = epoch

    def snapshot(self) -> dict[str, int]:
        """Checkpoint the high-water marks ("kind|src" -> epoch)."""
        return {
            f"{kind}|{src}": epoch
            for (kind, src), epoch in sorted(self._high.items())
        }

    def restore(self, state: dict[str, int]) -> None:
        self._high = {}
        for key, epoch in state.items():
            kind, src = key.split("|", 1)
            self._high[(kind, src)] = epoch


def fold_reports(
    envelopes: list[Envelope], guard: SequenceGuard
) -> dict:
    """Fold delivered demand envelopes into a per-node report dict.

    Later epochs overwrite earlier ones from the same node, so the
    result is the newest accepted report per node regardless of the
    order (or multiplicity) the envelopes arrived in.
    """
    reports: dict[str, object] = {}
    epochs: dict[str, int] = {}
    for env in envelopes:
        if env.kind != DEMAND:
            continue
        if not guard.accept(env):
            continue
        if env.epoch >= epochs.get(env.src, -1):
            reports[env.src] = env.payload
            epochs[env.src] = env.epoch
    return reports


class UnreliableTransport:
    """Seeded, deterministic message layer for one cluster run.

    ``send`` rolls the scenario's fault schedule and enqueues surviving
    copies with a delivery epoch; ``deliver`` hands an endpoint
    everything due by the current epoch, in deterministic send order
    unless the scenario reorders the batch.  Partitions are checked at
    both ends of the flight: an envelope sent into a severed link is
    lost immediately, and one whose delay lands it inside a partition
    window dies at the receiver's door.
    """

    def __init__(self, scenario: TransportScenario, *, seed: int | None = None):
        if seed is not None:
            scenario = scenario.with_seed(seed)
        self.scenario = scenario
        self._rng = random.Random(scenario.seed ^ _SEED_SALT)
        self.stats = TransportStats()
        #: dst -> [(delivery_epoch, order, envelope)]
        self._queues: dict[str, list[tuple[int, int, Envelope]]] = {}
        self._order = 0

    # -- sending -----------------------------------------------------------------

    def _node_of(self, env: Envelope) -> str:
        """The node endpoint of the link this envelope travels."""
        return env.src if env.dst == ARBITER else env.dst

    def _enqueue(self, env: Envelope, delivery_epoch: int) -> None:
        self._order += 1
        self._queues.setdefault(env.dst, []).append(
            (delivery_epoch, self._order, env)
        )

    def send(self, env: Envelope, now_epoch: int) -> None:
        """Submit one envelope at the current epoch."""
        s = self.scenario
        self.stats.count("sent")
        if s.partitioned(self._node_of(env), now_epoch):
            self.stats.count("dropped")
            return
        if s.quiet:
            self._enqueue(env, now_epoch)
            return
        roll = self._rng.random()
        if roll < s.drop_rate:
            self.stats.count("dropped")
            return
        roll -= s.drop_rate
        copies = 1
        if roll < s.dup_rate:
            self.stats.count("duplicated")
            copies = 2
        delivery = now_epoch
        if self._rng.random() < s.delay_rate:
            self.stats.count("delayed")
            delivery = now_epoch + self._rng.randint(1, s.max_delay_epochs)
        for _ in range(copies):
            self._enqueue(env, delivery)

    # -- receiving ---------------------------------------------------------------

    def deliver(self, dst: str, now_epoch: int) -> list[Envelope]:
        """Everything due to ``dst`` by ``now_epoch``, delivery-ordered."""
        queue = self._queues.get(dst, [])
        due = [item for item in queue if item[0] <= now_epoch]
        if not due:
            return []
        self._queues[dst] = [item for item in queue if item[0] > now_epoch]
        due.sort(key=lambda item: (item[0], item[1]))
        batch = [env for _, _, env in due]
        # a delayed packet arriving into a severed link dies at the door
        kept: list[Envelope] = []
        for env in batch:
            if self.scenario.partitioned(
                self._node_of(env), now_epoch
            ):
                self.stats.count("dropped")
            else:
                kept.append(env)
        if len(kept) > 1 and not self.scenario.quiet:
            if self._rng.random() < self.scenario.reorder_rate:
                self._rng.shuffle(kept)
        self.stats.count("delivered", len(kept))
        return kept

    def pending(self, dst: str) -> int:
        """Envelopes still queued for an endpoint (test introspection)."""
        return len(self._queues.get(dst, []))

    def flush(self, dst: str) -> int:
        """Drop everything queued for an endpoint; returns the count.

        A rebooted process has no socket buffers: whatever was in
        flight toward it died with the old incarnation.  The flushed
        envelopes are counted as dropped.
        """
        flushed = len(self._queues.pop(dst, []))
        if flushed:
            self.stats.count("dropped", flushed)
        return flushed

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint queues, RNG, and stats at an epoch fence.

        Envelopes are kept as live objects (payloads are frozen
        dataclasses); the journal converts them to a JSON form when it
        is dumped to disk.
        """
        return {
            "order": self._order,
            "rng": self._rng.getstate(),
            "queues": {
                dst: list(items)
                for dst, items in sorted(self._queues.items())
            },
            "stats": self.stats.snapshot(),
        }

    def restore(self, state: dict) -> None:
        """Restore a fence checkpoint into this (same-scenario) transport."""
        self._order = state["order"]
        self._rng.setstate(state["rng"])
        self._queues = {
            dst: list(items) for dst, items in state["queues"].items()
        }
        self.stats.restore(state["stats"])
