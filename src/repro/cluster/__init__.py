"""Cluster power arbitration: hierarchical budgets across many nodes.

The paper delivers per-application power on one socket; this package
generalizes its min-funding redistribution one level up.  N simulated
nodes — each a full :func:`repro.config.build_stack` stack with its own
hardened :class:`~repro.core.daemon.PowerDaemon` — run under a
:class:`~repro.cluster.arbiter.ClusterArbiter` that owns a facility
watt budget and, on a slower epoch loop, re-splits per-node power caps
from a two-level shares tree driven by each node's demand signals
(throttle pressure, headroom, parked/quarantined cores).

* :mod:`repro.cluster.config`    — declarative fleet description,
* :mod:`repro.cluster.node`      — one node stepped in epochs,
* :mod:`repro.cluster.arbiter`   — the epoch redistribution,
* :mod:`repro.cluster.transport` — the faultable control-plane message
  layer (epoch-sequenced demand/grant envelopes),
* :mod:`repro.cluster.lease`     — TTL cap leases and the node-side
  GRANTED → HOLDOVER → DEGRADED → SAFE step-down ladder,
* :mod:`repro.cluster.stepper`   — serial / fork-parallel node stepping,
* :mod:`repro.cluster.journal`   — epoch-fenced write-ahead journal and
  crash recovery (journal replay reconstructs byte-identical state),
* :mod:`repro.cluster.trace`     — per-node + global telemetry roll-up,
* :mod:`repro.cluster.runtime`   — the epoch loop tying it together.
"""

from repro.cluster.arbiter import Arbitration, ClusterArbiter, DEMAND_SLACK
from repro.cluster.config import (
    ClusterConfig,
    GroupSpec,
    NodeSpec,
    cluster_config_from_jsonable,
    cluster_config_to_jsonable,
)
from repro.cluster.journal import Journal, JournalEntry, RecoveredState
from repro.cluster.lease import LEASE_CODES, LeaseState, NodeLease
from repro.cluster.node import ClusterNode, NodeEpochReport
from repro.cluster.runtime import (
    ClusterRun,
    ClusterSim,
    recover_cluster_sim,
    run_cluster,
)
from repro.cluster.stepper import (
    ParallelNodeStepper,
    SerialNodeStepper,
    make_stepper,
)
from repro.cluster.trace import ClusterTrace
from repro.cluster.transport import (
    ARBITER,
    Envelope,
    SequenceGuard,
    TransportStats,
    UnreliableTransport,
    fold_reports,
)

__all__ = [
    "ARBITER",
    "Arbitration",
    "ClusterArbiter",
    "ClusterConfig",
    "ClusterNode",
    "ClusterRun",
    "ClusterSim",
    "ClusterTrace",
    "DEMAND_SLACK",
    "Envelope",
    "GroupSpec",
    "Journal",
    "JournalEntry",
    "LEASE_CODES",
    "LeaseState",
    "NodeEpochReport",
    "NodeLease",
    "NodeSpec",
    "ParallelNodeStepper",
    "RecoveredState",
    "SequenceGuard",
    "SerialNodeStepper",
    "TransportStats",
    "UnreliableTransport",
    "cluster_config_from_jsonable",
    "cluster_config_to_jsonable",
    "fold_reports",
    "make_stepper",
    "recover_cluster_sim",
    "run_cluster",
]
