"""Declarative cluster configuration.

A :class:`ClusterConfig` describes a fleet of simulated nodes — each one
a full single-socket stack (chip + engine + policy + ``PowerDaemon``)
exactly as :func:`repro.config.build_stack` builds it — plus the global
facility budget the :class:`~repro.cluster.arbiter.ClusterArbiter`
spreads across them.

The shares tree is two-level: the budget splits across *groups* by group
shares, then within each group across *nodes* by node shares, both with
the same min-funding primitive the paper uses inside one socket.  When
no groups are declared every node lives in one implicit root group and
the tree degenerates to the flat case.

Node lifecycle is part of the config so runs replay deterministically:
``joins_at_s`` admits a node mid-run, ``leaves_at_s`` is an announced
departure (the arbiter reclaims its cap at the same epoch boundary), and
``crashes_at_s`` is an unannounced death the arbiter only notices when
the node's epoch report stops arriving.  Per-node fault scenarios reuse
:data:`repro.faults.SCENARIOS` unchanged — cluster chaos is node chaos,
replicated.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.config import AppSpec, POLICY_REGISTRY, default_engine
from repro.core.types import Priority
from repro.errors import ConfigError
from repro.faults import (
    CrashScenario,
    LinkPartition,
    TelemetryFault,
    TelemetryScenario,
    TransportScenario,
    get_crash_scenario,
    get_scenario,
    get_telemetry_scenario,
    get_transport_scenario,
)
from repro.fleet.schedule import DiurnalSchedule
from repro.fleet.topology import (
    DomainSpec,
    domain_from_jsonable,
    validate_topology,
)
from repro.hw.platform import get_platform

#: root group used when the config declares no explicit groups.
ROOT_GROUP = ""

#: default lowest cap the arbiter may squeeze a node down to, watts.
#: Roughly uncore draw plus a floored core or two: a live node can never
#: usefully run below it, and the paper's no-starvation rule holds one
#: level up — member nodes are floored, not revoked to zero.
DEFAULT_MIN_CAP_W = 15.0


@dataclass(frozen=True)
class GroupSpec:
    """One interior vertex of the shares tree."""

    name: str
    shares: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("group needs a non-empty name")
        if self.shares <= 0:
            raise ConfigError(f"group {self.name}: shares must be positive")


@dataclass(frozen=True)
class NodeSpec:
    """One node (socket + daemon) in the cluster."""

    name: str
    apps: tuple[AppSpec, ...]
    platform: str = "skylake"
    policy: str = "frequency-shares"
    shares: float = 1.0
    group: str = ROOT_GROUP
    #: cap bounds the arbiter honours for this node; ``max_cap_w=None``
    #: defaults to the platform TDP.
    min_cap_w: float = DEFAULT_MIN_CAP_W
    max_cap_w: float | None = None
    #: lifecycle (cluster time, seconds); see module docstring.
    joins_at_s: float = 0.0
    leaves_at_s: float | None = None
    crashes_at_s: float | None = None
    #: named fault scenario injected into *this node's* daemon.
    faults: str | None = None
    #: explicit fault seed; None derives one from the cluster seed and
    #: the node's position, so every node draws a distinct schedule.
    fault_seed: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("node needs a non-empty name")
        if not self.apps:
            raise ConfigError(f"node {self.name}: needs at least one app")
        if self.policy not in POLICY_REGISTRY:
            known = ", ".join(sorted(POLICY_REGISTRY))
            raise ConfigError(
                f"node {self.name}: unknown policy {self.policy!r}; "
                f"known: {known}"
            )
        if self.shares <= 0:
            raise ConfigError(f"node {self.name}: shares must be positive")
        if self.min_cap_w <= 0:
            raise ConfigError(
                f"node {self.name}: min_cap_w must be positive"
            )
        if self.max_cap_w is not None and self.max_cap_w < self.min_cap_w:
            raise ConfigError(
                f"node {self.name}: max_cap_w {self.max_cap_w} below "
                f"min_cap_w {self.min_cap_w}"
            )
        if self.joins_at_s < 0:
            raise ConfigError(f"node {self.name}: joins_at_s is negative")
        for attr in ("leaves_at_s", "crashes_at_s"):
            when = getattr(self, attr)
            if when is not None and when <= self.joins_at_s:
                raise ConfigError(
                    f"node {self.name}: {attr}={when} is not after "
                    f"joins_at_s={self.joins_at_s}"
                )
        if self.leaves_at_s is not None and self.crashes_at_s is not None:
            raise ConfigError(
                f"node {self.name}: cannot both leave and crash"
            )
        if self.faults is not None:
            get_scenario(self.faults)  # validate the name early

    def resolved_max_cap_w(self) -> float:
        if self.max_cap_w is not None:
            return self.max_cap_w
        return get_platform(self.platform).power.tdp_watts


@dataclass(frozen=True)
class ClusterConfig:
    """The whole fleet: budget, shares tree, epoch cadence, seed."""

    budget_w: float
    nodes: tuple[NodeSpec, ...]
    groups: tuple[GroupSpec, ...] = ()
    #: arbiter epoch length in *daemon iterations* (the slower loop the
    #: issue calls for: default 10 daemon ticks per arbitration round).
    epoch_ticks: int = 10
    #: per-node daemon interval, seconds (1 s in the paper).
    interval_s: float = 1.0
    #: simulator tick; the coarse batch tick is safe at daemon cadence.
    tick_s: float = 5e-3
    #: master seed; per-node fault seeds derive from it.
    seed: int = 0
    #: control-plane fault scenario: a name from ``repro.faults.
    #: TRANSPORT_SCENARIOS`` or an inline :class:`TransportScenario`
    #: (fleet experiments build rack-partition scenarios on the fly);
    #: ``None`` keeps the transport quiet — every envelope delivered,
    #: byte-identical to the PR 3 runtime.
    transport: str | TransportScenario | None = None
    #: cap-lease TTL in arbitration epochs: how long a node keeps
    #: enforcing a grant it cannot renew before stepping down, and how
    #: long the arbiter reserves a silent node's budget.
    lease_ttl_epochs: int = 3
    #: named control-plane crash scenario (``repro.faults.
    #: CRASH_SCENARIOS``): seeded arbiter crashes (journal redo) and
    #: node crash/restart windows.  ``None`` keeps every process alive.
    crash_faults: str | None = None
    #: simulation engine for every node stack (``"array"``/``"scalar"``);
    #: bit-identical by contract, so the result cache ignores it.
    engine: str = field(default_factory=default_engine)
    #: hierarchical budget-domain tree (facility → row → rack → node);
    #: ``None`` keeps the flat two-level groups arbitration.  Mutually
    #: exclusive with ``groups``.
    topology: DomainSpec | None = None
    #: diurnal traffic curve driving per-epoch node activation; needs a
    #: topology (rows phase the curve).  ``None`` keeps every node busy.
    schedule: DiurnalSchedule | None = None
    #: telemetry-corruption scenario: a name from ``repro.faults.
    #: TELEMETRY_SCENARIOS`` or an inline :class:`TelemetryScenario`.
    #: ``None`` keeps every report honest — byte-identical to the
    #: pre-trust runtime.  Faults targeting nodes this config does not
    #: declare are inert (a liar that never joins corrupts nothing).
    telemetry: str | TelemetryScenario | None = None

    def __post_init__(self) -> None:
        if self.budget_w <= 0:
            raise ConfigError("cluster budget must be positive")
        if not self.nodes:
            raise ConfigError("cluster needs at least one node")
        if self.epoch_ticks < 1:
            raise ConfigError("epoch_ticks must be at least 1")
        if self.interval_s <= 0 or self.tick_s <= 0:
            raise ConfigError("interval_s and tick_s must be positive")
        if self.seed < 0:
            raise ConfigError("seed cannot be negative")
        if self.lease_ttl_epochs < 1:
            raise ConfigError("lease_ttl_epochs must be at least 1")
        if self.engine not in ("scalar", "array"):
            raise ConfigError(
                f"unknown engine {self.engine!r}; "
                "expected 'scalar' or 'array'"
            )
        if isinstance(self.transport, str):
            get_transport_scenario(self.transport)  # validate early
        if isinstance(self.telemetry, str):
            get_telemetry_scenario(self.telemetry)  # validate early
        if self.crash_faults is not None:
            crash = get_crash_scenario(self.crash_faults)
            known_names = {node.name for node in self.nodes}
            for restart_node in crash.node_names():
                if restart_node not in known_names:
                    raise ConfigError(
                        f"crash scenario {self.crash_faults!r} restarts "
                        f"unknown node {restart_node!r}"
                    )
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate node names")
        group_names = [group.name for group in self.groups]
        if len(set(group_names)) != len(group_names):
            raise ConfigError("duplicate group names")
        if self.groups:
            known = set(group_names)
            for node in self.nodes:
                if node.group not in known:
                    raise ConfigError(
                        f"node {node.name}: unknown group "
                        f"{node.group!r}; known: {sorted(known)}"
                    )
        elif any(node.group != ROOT_GROUP for node in self.nodes):
            raise ConfigError(
                "nodes reference groups but the config declares none"
            )
        # The hierarchy invariant (sum of node caps <= budget at all
        # times) needs the all-nodes floor sum to fit: min-funding
        # floors members rather than starving them, so an over-committed
        # floor set could never be honoured.
        floor_sum = sum(node.min_cap_w for node in self.nodes)
        if floor_sum > self.budget_w:
            raise ConfigError(
                f"sum of node cap floors ({floor_sum:.1f} W) exceeds the "
                f"cluster budget ({self.budget_w:.1f} W)"
            )
        if self.topology is not None:
            if self.groups:
                raise ConfigError(
                    "topology and groups are mutually exclusive shares "
                    "trees; declare one or the other"
                )
            validate_topology(
                self.topology,
                tuple(node.name for node in self.nodes),
                {node.name: node.min_cap_w for node in self.nodes},
            )
        if self.schedule is not None and self.topology is None:
            raise ConfigError(
                "a diurnal schedule needs a topology (rows phase the "
                "traffic curve)"
            )

    @property
    def epoch_s(self) -> float:
        """Arbitration epoch length in seconds."""
        return self.epoch_ticks * self.interval_s

    def node(self, name: str) -> NodeSpec:
        # the arbiter resolves specs per member per epoch: at fleet
        # scale a linear scan here would be O(n^2) per rebalance, so
        # the index is built once and memoized on the frozen instance
        index = self.__dict__.get("_node_by_name")
        if index is None:
            index = {spec.name: spec for spec in self.nodes}
            object.__setattr__(self, "_node_by_name", index)
        try:
            return index[name]
        except KeyError:
            raise ConfigError(
                f"no node {name!r} in cluster config"
            ) from None

    def transport_scenario(self) -> TransportScenario | None:
        """Resolve the transport field (named or inline) to a scenario."""
        if isinstance(self.transport, str):
            return get_transport_scenario(self.transport)
        return self.transport

    def node_fault_seed(self, index: int, incarnation: int = 0) -> int:
        """Deterministic per-node fault seed derived from the master.

        ``incarnation`` counts reboots: a restarted node draws a
        distinct (but equally deterministic) fault schedule, like a
        machine whose post-boot entropy differs from its last life.
        """
        spec = self.nodes[index]
        if spec.fault_seed is not None:
            base = spec.fault_seed
        else:
            base = self.seed * 1000003 + index
        return base + incarnation * 7368787

    def crash_scenario(self) -> CrashScenario:
        """Resolve the configured crash scenario ("none" when unset)."""
        return get_crash_scenario(self.crash_faults or "none")

    def telemetry_scenario(self) -> TelemetryScenario | None:
        """Resolve the telemetry field (named or inline) to a scenario."""
        if isinstance(self.telemetry, str):
            return get_telemetry_scenario(self.telemetry)
        return self.telemetry

    def group_of(self, node: NodeSpec) -> str:
        return node.group if self.groups else ROOT_GROUP

    def group_shares(self) -> dict[str, float]:
        if self.groups:
            return {group.name: group.shares for group in self.groups}
        return {ROOT_GROUP: 1.0}


# -- cache serialization ---------------------------------------------------------
#
# The result cache keys cluster runs by a stable JSON form of the full
# config (mirroring what repro.experiments.cache does for single-socket
# configs); these helpers own the round trip so the cache module never
# reaches into cluster internals.


def cluster_config_to_jsonable(config: ClusterConfig) -> dict:
    raw = asdict(config)
    # the engine is deliberately NOT part of the cache identity: both
    # engines produce byte-identical results (the equivalence suite
    # enforces it), so a result computed by either must hit for both —
    # and keys stay byte-compatible with pre-engine cache entries.
    raw.pop("engine", None)
    # unset fleet fields are dropped so pre-fleet configs keep their
    # exact cache keys (asdict already expanded an inline transport
    # scenario and the topology/schedule dataclasses to plain dicts)
    if raw.get("topology") is None:
        raw.pop("topology", None)
    if raw.get("schedule") is None:
        raw.pop("schedule", None)
    # likewise pre-trust configs keep their keys when telemetry is unset
    if raw.get("telemetry") is None:
        raw.pop("telemetry", None)
    for node in raw["nodes"]:
        for app in node["apps"]:
            app["priority"] = app["priority"].name
    return raw


def cluster_config_from_jsonable(data: dict) -> ClusterConfig:
    nodes = []
    for node in data["nodes"]:
        apps = tuple(
            AppSpec(
                benchmark=a["benchmark"],
                shares=a["shares"],
                priority=Priority[a["priority"]],
                steady=a["steady"],
            )
            for a in node["apps"]
        )
        nodes.append(NodeSpec(**{**node, "apps": apps}))
    groups = tuple(GroupSpec(**group) for group in data.get("groups", ()))
    extra: dict = {}
    transport = data.get("transport")
    if isinstance(transport, dict):
        extra["transport"] = TransportScenario(
            **{
                **transport,
                "partitions": tuple(
                    LinkPartition(**p) for p in transport["partitions"]
                ),
            }
        )
    topology = data.get("topology")
    if topology is not None:
        extra["topology"] = domain_from_jsonable(topology)
    schedule = data.get("schedule")
    if schedule is not None:
        extra["schedule"] = DiurnalSchedule(**schedule)
    telemetry = data.get("telemetry")
    if isinstance(telemetry, dict):
        extra["telemetry"] = TelemetryScenario(
            **{
                **telemetry,
                "faults": tuple(
                    TelemetryFault(**f) for f in telemetry["faults"]
                ),
            }
        )
    return ClusterConfig(
        **{**data, "nodes": tuple(nodes), "groups": groups, **extra}
    )
