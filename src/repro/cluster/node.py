"""One cluster node: a full single-socket stack stepped in epochs.

:class:`ClusterNode` wraps the stack :func:`repro.config.build_stack`
produces — chip, engine, policy, hardened ``PowerDaemon``, optional
fault injection — and exposes the two operations the cluster layer
needs:

* :meth:`step_epoch` advances the node's private simulation through one
  arbitration epoch under a given power cap and condenses the daemon
  samples that landed in the window into a :class:`NodeEpochReport`;
* :meth:`set_cap` retargets the node's operator limit between epochs
  (the daemon's policy reads ``limit_w`` every iteration, so the change
  takes effect at the node's next monitoring tick; RAPL-baseline nodes
  also re-program the hardware limiter).

Each node owns an independent :class:`~repro.sim.engine.SimEngine`
clocked from its own join time, so a node admitted mid-run starts a
fresh simulation — exactly like a machine booting into a running
cluster.  All cross-node coupling flows through the cap the arbiter
sets and the report the node returns; nodes never see each other.

The report carries the *demand signals* the arbiter redistributes on:

* ``mean_power_w`` — daemon-reported package power over the epoch;
* ``throttle_pressure`` — how far below the platform maximum the node's
  apps ran (0 = unthrottled, 1 = floored/parked), the cluster analogue
  of an app saturating *low* in min-funding terms;
* ``headroom_w`` — cap the node left unused (revocable windfall);
* ``parked_cores``/``quarantined_cores`` — from the daemon's
  :class:`~repro.core.daemon.HealthRecord`: capacity the node cannot
  currently turn into work, so its claim on the budget shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterConfig, NodeSpec
from repro.config import ExperimentConfig, ExperimentStack, build_stack
from repro.errors import ConfigError

#: synthetic draw an idle node reports, as a fraction of its cap floor.
#: Below 1.0 by construction: idle demand must water-fill to the floor
#: (never above it) and stay constant so idle racks arbitrate clean.
IDLE_POWER_FRACTION = 0.6


@dataclass(frozen=True, slots=True)
class NodeEpochReport:
    """What one node tells the arbiter after one epoch.

    Slotted: the validator prescreen touches four fields of every
    report every epoch, and at fleet scale (1,024+ reports/epoch)
    dict-based attribute lookup is measurable in the arbitration
    budget."""

    name: str
    epoch: int
    #: cluster time at the end of the epoch, seconds.
    t_end_s: float
    #: the cap this epoch ran under.
    cap_w: float
    #: daemon-reported mean package power over the epoch's samples.
    mean_power_w: float
    #: mean shortfall below platform max frequency, in [0, 1].
    throttle_pressure: float
    #: cap minus mean power, clamped at zero.
    headroom_w: float
    #: parked apps at the end of the epoch (policy or fail-safe).
    parked_cores: int
    #: quarantined cores at the end of the epoch.
    quarantined_cores: int
    #: daemon iterations that landed in the window (0 under a tick
    #: storm that swallowed the whole epoch).
    samples: int
    #: daemon mode at the end of the epoch ("normal"/"safe").
    mode: str = "normal"
    #: the node died mid-epoch (detected by the arbiter next round).
    crashed: bool = False


class ClusterNode:
    """Lifecycle wrapper around one node's simulation stack."""

    def __init__(self, config: ClusterConfig, index: int):
        self.spec: NodeSpec = config.nodes[index]
        self.index = index
        self._cluster = config
        self.stack: ExperimentStack | None = None
        self._history_mark = 0
        self._crashed = False
        #: bumped on every reboot so each incarnation draws a distinct
        #: (but deterministic) fault schedule.
        self._incarnation = 0
        #: the next build must come up with the daemon's safe-mode
        #: latch held (crash-restart protocol).
        self._boot_safe = False

    # -- lifecycle ---------------------------------------------------------------

    def active_in(self, t0: float, t1: float) -> bool:
        """Whether this node steps the epoch [t0, t1).

        Joins take effect at the first epoch starting at or after
        ``joins_at_s``; an announced leave makes ``t1 > leaves_at_s``
        epochs never start; a crash keeps the node stepping into the
        epoch containing ``crashes_at_s`` (it dies partway through) and
        silent afterwards.
        """
        if self._crashed:
            return False
        spec = self.spec
        if t0 < spec.joins_at_s:
            return False
        if spec.leaves_at_s is not None and t1 > spec.leaves_at_s:
            return False
        if spec.crashes_at_s is not None and t0 >= spec.crashes_at_s:
            return False
        return True

    @property
    def crashed(self) -> bool:
        return self._crashed

    def restart(self) -> None:
        """Reboot the node: the old incarnation's state is gone.

        The next :meth:`step_epoch` builds a fresh stack — exactly like
        a machine booting into a running cluster — with the daemon's
        safe-mode latch already held, so the node comes up enforcing
        its RAPL backstop until a fresh lease grant releases it.
        """
        self.stack = None
        self._history_mark = 0
        self._crashed = False
        self._incarnation += 1
        self._boot_safe = True

    def _build(self, cap_w: float) -> ExperimentStack:
        spec = self.spec
        config = ExperimentConfig(
            platform=spec.platform,
            policy=spec.policy,
            limit_w=cap_w,
            apps=spec.apps,
            interval_s=self._cluster.interval_s,
            tick_s=self._cluster.tick_s,
            faults=spec.faults,
            fault_seed=self._cluster.node_fault_seed(
                self.index, self._incarnation
            ),
            engine=self._cluster.engine,
        )
        return build_stack(config)

    def set_cap(self, cap_w: float) -> None:
        """Retarget the node's operator limit for the next epoch."""
        if cap_w <= 0:
            raise ConfigError(f"{self.spec.name}: non-positive cap {cap_w}")
        assert self.stack is not None
        daemon = self.stack.daemon
        daemon.policy.limit_w = cap_w
        if getattr(daemon.policy, "programs_hardware_limit", False):
            self.stack.chip.set_rapl_limit(cap_w)

    # -- stepping ----------------------------------------------------------------

    def begin_epoch(
        self,
        cap_w: float,
        t0: float,
        t1: float,
        safe_mode: bool = False,
    ) -> tuple[int, bool]:
        """Prepare the stack for the epoch [t0, t1) under ``cap_w``.

        Builds the stack on first use (or after a restart), retargets
        the cap, applies the lease supervisor's safe-mode verdict, and
        returns ``(n_ticks, crashes_this_epoch)`` — how far the node's
        engine must advance (a node dying mid-epoch stops at its crash
        point) — without running anything.  Split from the run so the
        stacked stepper can gang-step many prepared nodes as one array
        batch; :meth:`step_epoch` composes the two halves.

        ``safe_mode`` is the lease supervisor's verdict that this node
        has lost the arbiter (lease expired past its TTL): the daemon's
        RAPL-backstop safe mode is latched for the epoch — the paper's
        hardware baseline as last-resort enforcement — and released the
        epoch a renewal gets through again.
        """
        if self.stack is None:
            self.stack = self._build(cap_w)
            if self._boot_safe:
                # reboot protocol: the backstop is latched before the
                # first tick runs.  The lease verdict below may release
                # the latch the same epoch (a grant already landed),
                # but the daemon's recover_after good-sample streak
                # still gates the actual exit from safe mode.
                self.stack.daemon.force_safe_mode()
                self._boot_safe = False
        else:
            self.set_cap(cap_w)
        if safe_mode:
            self.stack.daemon.force_safe_mode()
        else:
            self.stack.daemon.release_safe_mode()
        crash_at = self.spec.crashes_at_s
        run_until = t1
        crashed = False
        if crash_at is not None and t0 < crash_at <= t1:
            # the node dies partway through this epoch: its simulation
            # stops at the crash point and never resumes.
            run_until = crash_at
            crashed = True
        # identical tick rounding to SimEngine.run(duration)
        n_ticks = int(round((run_until - t0) / self.stack.chip.tick_s))
        if n_ticks < 0:
            raise ConfigError(
                f"{self.spec.name}: epoch window [{t0}, {t1}) is negative"
            )
        return n_ticks, crashed

    def finish_epoch(
        self, epoch: int, cap_w: float, t1: float, crashed: bool
    ) -> NodeEpochReport:
        """Condense the epoch's daemon samples into the demand report."""
        assert self.stack is not None
        window = self.stack.daemon.history[self._history_mark:]
        self._history_mark = len(self.stack.daemon.history)
        if crashed:
            self._crashed = True
        return self._report(epoch, cap_w, t1, window, crashed)

    def step_epoch(
        self,
        epoch: int,
        cap_w: float,
        t0: float,
        t1: float,
        safe_mode: bool = False,
    ) -> NodeEpochReport:
        """Advance through [t0, t1) under ``cap_w`` and report demand.

        See :meth:`begin_epoch` for the ``safe_mode`` semantics.
        """
        n_ticks, crashed = self.begin_epoch(cap_w, t0, t1, safe_mode)
        self.stack.engine.run_ticks(n_ticks)
        return self.finish_epoch(epoch, cap_w, t1, crashed)

    def idle_report(
        self, epoch: int, cap_w: float, t0: float, t1: float
    ) -> NodeEpochReport:
        """The epoch's report for a node the schedule left idle.

        An idle node serves no traffic, so its simulation is not
        advanced at all — the fleet-scale sparsity win: 10 daemon
        iterations of an empty machine cost one dataclass here.  It
        still reports every epoch (keeping its lease GRANTED and its
        liveness fresh) with a constant synthetic draw below its cap
        floor, so its demand claim pins to the floor and never dirties
        its rack in the arbiter's incremental scheme.  A crash window
        opening mid-epoch still kills it — death does not wait for
        traffic.
        """
        crash_at = self.spec.crashes_at_s
        crashed = crash_at is not None and t0 < crash_at <= t1
        if crashed:
            self._crashed = True
        idle_power = IDLE_POWER_FRACTION * self.spec.min_cap_w
        return NodeEpochReport(
            name=self.spec.name,
            epoch=epoch,
            t_end_s=t1,
            cap_w=cap_w,
            mean_power_w=idle_power,
            throttle_pressure=0.0,
            headroom_w=max(cap_w - idle_power, 0.0),
            parked_cores=len(self.spec.apps),
            quarantined_cores=0,
            samples=self._cluster.epoch_ticks,
            mode="normal",
            crashed=crashed,
        )

    def _report(
        self, epoch: int, cap_w: float, t_end_s: float, window, crashed: bool
    ) -> NodeEpochReport:
        assert self.stack is not None
        if not window:
            # a tick storm (or a crash right at the epoch edge) ate
            # every daemon deadline: no fresh demand this epoch
            return NodeEpochReport(
                name=self.spec.name,
                epoch=epoch,
                t_end_s=t_end_s,
                cap_w=cap_w,
                mean_power_w=0.0,
                throttle_pressure=0.0,
                headroom_w=0.0,
                parked_cores=0,
                quarantined_cores=len(self.stack.daemon.quarantined_cores),
                samples=0,
                mode=self.stack.daemon.mode.value,
                crashed=crashed,
            )
        n = len(window)
        mean_power = sum(s.package_power_w for s in window) / n
        max_mhz = self.stack.platform.max_frequency_mhz
        shortfall = 0.0
        for sample in window:
            freqs = sample.app_frequency_mhz.values()
            mean_freq = sum(freqs) / len(sample.app_frequency_mhz)
            shortfall += min(max(1.0 - mean_freq / max_mhz, 0.0), 1.0)
        last = window[-1]
        return NodeEpochReport(
            name=self.spec.name,
            epoch=epoch,
            t_end_s=t_end_s,
            cap_w=cap_w,
            mean_power_w=mean_power,
            throttle_pressure=shortfall / n,
            headroom_w=max(cap_w - mean_power, 0.0),
            parked_cores=sum(
                1 for parked in last.app_parked.values() if parked
            ),
            quarantined_cores=len(last.health.quarantined),
            samples=n,
            mode=last.health.mode,
            crashed=crashed,
        )
