"""Cluster-level power arbitration: min-funding one level up.

The paper's daemon spreads one socket's watts across applications with
min-funding revocation; :class:`ClusterArbiter` applies the same
primitive one level up, spreading a facility budget across node caps
through a two-level shares tree (groups, then nodes — see
:mod:`repro.cluster.config`).  Each node's ``PowerDaemon`` is a leaf:
the cap the arbiter grants becomes the ``limit_w`` that daemon enforces
locally, so the hierarchy composes without any node-level changes.

Per epoch the arbiter turns each node's :class:`~repro.cluster.node.
NodeEpochReport` into a :class:`~repro.core.minfund.Claim`:

* ``lo`` is the node's configured cap floor (nodes are floored, never
  starved — the paper's no-starvation rule, one level up);
* ``hi`` is the node's *demand ceiling*: measured power, pulled toward
  the node's cap maximum by its throttle pressure (a throttled node
  would convert more watts into work), scaled down by the fraction of
  its cores that are quarantined (capacity it cannot spend), and padded
  with slack so a node capped low can still climb;
* ``shares`` come from the config.

:func:`~repro.core.minfund.refill_pool` then water-fills the budget:
group shares split the facility budget into group pools, node shares
split each pool into caps.  Saturated nodes (at ``hi``) release budget
to the others and the fill re-runs — exactly the revocation cascade the
paper runs over apps.

**Invariant** (checked, and exactly enforced by a deterministic trim of
the bisection residue): the caps granted to live nodes always sum to at
most the facility budget.  Crashed nodes keep their cap until the epoch
boundary where their report goes missing — the realistic detection lag —
but a dead node draws nothing, so the physical envelope holds through
the lag too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.config import ClusterConfig, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.core.minfund import Claim, refill_pool
from repro.errors import ConfigError

#: multiplicative slack on a node's demand ceiling: lets an unthrottled
#: node's claim grow past what it measured, so caps can climb back after
#: a quiet spell instead of ratcheting down.
DEMAND_SLACK = 1.25

#: numeric tolerance on the cap-sum invariant before trimming.
_SUM_TOLERANCE = 1e-9


@dataclass(frozen=True)
class Arbitration:
    """One epoch's grant: per-node caps plus bookkeeping."""

    epoch: int
    caps_w: dict[str, float]
    group_pools_w: dict[str, float]

    @property
    def total_w(self) -> float:
        return sum(self.caps_w.values())


class ClusterArbiter:
    """Owns the facility budget and the node membership set."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.budget_w = config.budget_w
        #: names of nodes currently granted caps.
        self._members: set[str] = set()
        #: the caps of the last arbitration round.
        self._caps: dict[str, float] = {}
        #: last usable demand report per node (held over when a tick
        #: storm produces an empty epoch).
        self._last_report: dict[str, NodeEpochReport] = {}

    # -- membership --------------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def caps(self) -> dict[str, float]:
        return dict(self._caps)

    def admit(self, names: list[str]) -> None:
        """Add joining nodes to the membership set."""
        for name in names:
            self.config.node(name)  # validates the name
            self._members.add(name)

    def retire(self, names: list[str]) -> None:
        """Remove announced leavers / detected crashers."""
        for name in names:
            self._members.discard(name)
            self._caps.pop(name, None)
            self._last_report.pop(name, None)

    # -- the epoch redistribution ------------------------------------------------

    def rebalance(
        self, epoch: int, reports: dict[str, NodeEpochReport]
    ) -> Arbitration:
        """Grant next-epoch caps from this epoch's demand reports.

        ``reports`` covers the nodes that stepped the finished epoch;
        crashed reporters are retired before their demand is considered.
        Members without a report this round (a just-admitted node, or a
        tick-stormed epoch) fall back to their last known demand or, if
        none exists, to an unconstrained claim — a new node gets to bid
        for its full share immediately.
        """
        crashed = [r.name for r in reports.values() if r.crashed]
        self.retire(crashed)
        for name, report in reports.items():
            if name in self._members and report.samples > 0:
                self._last_report[name] = report
        if not self._members:
            self._caps = {}
            return Arbitration(epoch, {}, {})

        claims_by_group: dict[str, list[Claim]] = {}
        for name in sorted(self._members):
            spec = self.config.node(name)
            claim = self._claim(spec, self._last_report.get(name))
            group = self.config.group_of(spec)
            claims_by_group.setdefault(group, []).append(claim)

        group_pools = self._split_groups(claims_by_group)
        caps: dict[str, float] = {}
        for group, claims in claims_by_group.items():
            caps.update(refill_pool(group_pools[group], claims))
        self._trim(caps)
        self._caps = caps
        return Arbitration(epoch, dict(caps), group_pools)

    def _claim(
        self, spec: NodeSpec, report: NodeEpochReport | None
    ) -> Claim:
        lo = spec.min_cap_w
        hi_cap = spec.resolved_max_cap_w()
        if report is None:
            # no demand history: an unconstrained bid, bounded only by
            # the node's configured cap range
            hi = hi_cap
        else:
            wants = report.mean_power_w + report.throttle_pressure * max(
                hi_cap - report.mean_power_w, 0.0
            )
            n_apps = len(spec.apps)
            healthy = max(n_apps - report.quarantined_cores, 0) / n_apps
            hi = min(wants * DEMAND_SLACK * healthy, hi_cap)
        hi = max(hi, lo)
        current = self._caps.get(spec.name, lo)
        return Claim(
            label=spec.name,
            shares=spec.shares,
            current=min(max(current, lo), hi),
            lo=lo,
            hi=hi,
        )

    def _split_groups(
        self, claims_by_group: dict[str, list[Claim]]
    ) -> dict[str, float]:
        """Split the facility budget across groups by group shares.

        A group's claim aggregates its members: floor = sum of member
        floors, ceiling = sum of member demand ceilings.  With one
        group the split is the whole budget and the tree is flat.
        """
        shares = self.config.group_shares()
        group_claims = [
            Claim(
                label=group,
                shares=shares[group],
                current=sum(c.current for c in claims),
                lo=sum(c.lo for c in claims),
                hi=sum(c.hi for c in claims),
            )
            for group, claims in sorted(claims_by_group.items())
        ]
        return refill_pool(self.budget_w, group_claims)

    def _trim(self, caps: dict[str, float]) -> None:
        """Shave the water-filling bisection residue so the cap sum is
        *exactly* at or under budget, largest caps first (never below a
        node's floor)."""
        excess = sum(caps.values()) - self.budget_w
        if excess <= _SUM_TOLERANCE:
            return
        for name in sorted(caps, key=lambda n: (-caps[n], n)):
            floor = self.config.node(name).min_cap_w
            give = min(excess, caps[name] - floor)
            if give > 0:
                caps[name] -= give
                excess -= give
            if excess <= 0:
                return
        if excess > _SUM_TOLERANCE:  # pragma: no cover - config validation
            raise ConfigError(
                "cap floors exceed the cluster budget; config validation "
                "should have rejected this"
            )

    def check_invariant(self) -> None:
        """Raise unless live caps sum to at most the budget."""
        total = sum(self._caps.values())
        if total > self.budget_w + _SUM_TOLERANCE:
            raise ConfigError(
                f"cap invariant violated: {total:.6f} W granted against "
                f"a {self.budget_w:.6f} W budget"
            )
