"""Cluster-level power arbitration: min-funding one level up.

The paper's daemon spreads one socket's watts across applications with
min-funding revocation; :class:`ClusterArbiter` applies the same
primitive one level up, spreading a facility budget across node caps
through a two-level shares tree (groups, then nodes — see
:mod:`repro.cluster.config`).  Each node's ``PowerDaemon`` is a leaf:
the cap the arbiter grants becomes the ``limit_w`` that daemon enforces
locally, so the hierarchy composes without any node-level changes.

Per epoch the arbiter turns each node's :class:`~repro.cluster.node.
NodeEpochReport` into a :class:`~repro.core.minfund.Claim`:

* ``lo`` is the node's configured cap floor (nodes are floored, never
  starved — the paper's no-starvation rule, one level up);
* ``hi`` is the node's *demand ceiling*: measured power, pulled toward
  the node's cap maximum by its throttle pressure (a throttled node
  would convert more watts into work), scaled down by the fraction of
  its cores that are quarantined (capacity it cannot spend), and padded
  with slack so a node capped low can still climb;
* ``shares`` come from the config.

:func:`~repro.core.minfund.refill_pool` then water-fills the budget:
group shares split the facility budget into group pools, node shares
split each pool into caps.  Saturated nodes (at ``hi``) release budget
to the others and the fill re-runs — exactly the revocation cascade the
paper runs over apps.

**Invariant** (checked, and exactly enforced by a deterministic trim of
the bisection residue): the caps granted to live nodes always sum to at
most the facility budget.  Crashed nodes keep their cap until the epoch
boundary where their report goes missing — the realistic detection lag —
but a dead node draws nothing, so the physical envelope holds through
the lag too.

With the unreliable transport (:mod:`repro.cluster.transport`), a
missing report no longer implies death: it may be a dropped packet or a
partition.  The arbiter therefore mirrors the node-side lease ladder
(:mod:`repro.cluster.lease`):

* a member silent for at most ``lease_ttl_epochs`` epochs keeps its
  budget **reserved** at the cap it was last granted — the cap it may
  legitimately still be enforcing under holdover — so the cap-sum
  invariant covers grants in flight;
* past lease expiry the reservation collapses to the node's floor,
  which is what its lease has forced it down to locally;
* held-over *demand* (a live node whose reports carry no fresh samples)
  ages toward the floor over the TTL, so a stale report cannot pin
  budget forever;
* reports are epoch-sequenced upstream (duplicates and reordered
  stragglers never reach ``rebalance``), and members arbitrated with no
  usable demand are surfaced on the grant as ``degraded`` so health
  roll-ups see every demand-blind cap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.config import ClusterConfig, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.cluster.trust import (
    BrownoutController,
    DemandValidator,
    TrustBook,
    brownout_claim_bounds,
)
from repro.core.minfund import Claim, refill_pool
from repro.errors import ConfigError

#: multiplicative slack on a node's demand ceiling: lets an unthrottled
#: node's claim grow past what it measured, so caps can climb back after
#: a quiet spell instead of ratcheting down.
DEMAND_SLACK = 1.25

#: numeric tolerance on the cap-sum invariant before trimming.
_SUM_TOLERANCE = 1e-9

#: allowed drift between the incrementally-maintained cap sum and a
#: full rescan (float addition is not associative, so the two
#: accumulate in different orders; at fleet scale the gap is ~1e-9).
_SUM_DRIFT_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Arbitration:
    """One epoch's grant: per-node caps plus bookkeeping."""

    epoch: int
    caps_w: dict[str, float]
    group_pools_w: dict[str, float]
    #: members granted without any usable demand this round: silent
    #: (leased, budget reserved) or reporting with no fresh samples and
    #: no demand history.  Surfaced so health roll-ups see every
    #: demand-blind cap instead of it passing silently.
    degraded: tuple[str, ...] = ()
    #: silent members' reservations (a subset of ``caps_w``).
    reserved_w: dict[str, float] = field(default_factory=dict)
    #: members whose demand lost the oversubscription bet this round:
    #: they asked for more than their floor but the water-fill pinned
    #: them at it (fleet arbitration; empty on the flat path).
    shed: tuple[str, ...] = ()
    #: fleet arbitration counters (racks refilled vs reused, dirty
    #: nodes); empty on the flat path.
    fleet_stats: dict[str, int] = field(default_factory=dict)
    #: members quarantined by trust decay this round: their demand
    #: ceilings were pinned at their floors (repeat misreporters).
    quarantined: tuple[str, ...] = ()
    #: facility brownout level this grant was computed under (index
    #: into :data:`repro.cluster.trust.BROWNOUT_LEVELS`; 0 = normal).
    brownout: int = 0
    #: model-validation violations this round: node -> reasons for
    #: every fresh report the validator had to clamp.
    trust_violations: dict[str, tuple[str, ...]] = field(
        default_factory=dict
    )

    @property
    def total_w(self) -> float:
        return sum(self.caps_w.values())


class ClusterArbiter:
    """Owns the facility budget and the node membership set."""

    def __init__(self, config: ClusterConfig):
        self.config = config
        self.budget_w = config.budget_w
        #: lease validity in epochs (mirrors the node-side ladder).
        self.lease_ttl = config.lease_ttl_epochs
        #: names of nodes currently granted caps.
        self._members: set[str] = set()
        #: the caps of the last arbitration round.
        self._caps: dict[str, float] = {}
        #: incrementally-maintained sum of ``_caps`` — kept in lock
        #: step with every grant/retire so :meth:`check_invariant` is
        #: O(1) instead of rescanning the fleet every epoch.
        self._cap_sum = 0.0
        #: last usable demand report per node (held over when a tick
        #: storm produces an empty epoch).
        self._last_report: dict[str, NodeEpochReport] = {}
        #: epoch of each member's last report of any kind (liveness).
        self._last_seen: dict[str, int] = {}
        #: epoch of each member's last report with fresh samples
        #: (demand-aging clock).
        self._last_fresh: dict[str, int] = {}
        #: first rebalance epoch each member took part in.
        self._admitted_at: dict[str, int] = {}
        #: model-based report validation (clamps implausible demand).
        #: ``None`` disables the telemetry-robustness layer wholesale
        #: (reports taken at face value, no trust updates) — a
        #: break-glass operational mode, and the honest "unvalidated
        #: arbitration" baseline the trust-overhead bench compares
        #: against.
        self.validator: DemandValidator | None = DemandValidator(
            config.lease_ttl_epochs
        )
        #: per-node trust scores fed by the validator's verdicts.
        self.trust = TrustBook()
        #: facility brownout ladder for sustained infeasibility.
        self.brownout = BrownoutController()
        #: static per-node platform envelopes, resolved once (the
        #: validator consults them on every fresh report).
        self._node_floor: dict[str, float] = {
            spec.name: spec.min_cap_w for spec in config.nodes
        }
        self._node_max: dict[str, float] = {
            spec.name: spec.resolved_max_cap_w() for spec in config.nodes
        }

    # -- membership --------------------------------------------------------------

    @property
    def members(self) -> tuple[str, ...]:
        return tuple(sorted(self._members))

    def caps(self) -> dict[str, float]:
        return dict(self._caps)

    def admit(self, names: list[str]) -> None:
        """Add joining nodes to the membership set."""
        for name in names:
            self.config.node(name)  # validates the name
            self._members.add(name)

    def retire(self, names: list[str]) -> None:
        """Remove announced leavers / detected crashers."""
        for name in names:
            self._members.discard(name)
            self._drop_cap(name)
            self._last_report.pop(name, None)
            self._last_seen.pop(name, None)
            self._last_fresh.pop(name, None)
            self._admitted_at.pop(name, None)
            if self.validator is not None:
                self.validator.forget(name)
            self.trust.forget(name)

    def _drop_cap(self, name: str) -> None:
        """Forget a member's cap, keeping the maintained sum honest."""
        cap = self._caps.pop(name, None)
        if cap is not None:
            self._cap_sum -= cap

    def readmit(self, name: str, epoch: int) -> None:
        """Re-admit a rebooted member without double-counting it.

        Everything remembered about the node's previous incarnation —
        cap, reservation basis, liveness clocks, demand history — is
        discarded, so the node re-enters as a *new* member: it bids
        unconstrained in this epoch's water-filling instead of keeping
        a silent-member reservation, and the budget it had reserved is
        released in the same round it is re-granted.
        """
        self.config.node(name)  # validates the name
        self.retire([name])
        self._members.add(name)
        self._admitted_at[name] = epoch

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the full arbitration state for the journal.

        Reports are kept as live :class:`NodeEpochReport` objects; the
        journal converts them to a JSON form when dumped to disk.  A
        :meth:`restore` of this snapshot reproduces byte-identical
        grants from the next ``rebalance`` on.
        """
        return {
            "members": sorted(self._members),
            "caps": dict(self._caps),
            "last_report": dict(self._last_report),
            "last_seen": dict(self._last_seen),
            "last_fresh": dict(self._last_fresh),
            "admitted_at": dict(self._admitted_at),
            "validator": (
                self.validator.snapshot()
                if self.validator is not None else {}
            ),
            "trust": self.trust.snapshot(),
            "brownout": self.brownout.snapshot(),
        }

    def restore(self, state: dict) -> None:
        self._members = set(state["members"])
        self._caps = dict(state["caps"])
        self._cap_sum = sum(self._caps.values())
        self._last_report = dict(state["last_report"])
        self._last_seen = dict(state["last_seen"])
        self._last_fresh = dict(state["last_fresh"])
        self._admitted_at = dict(state["admitted_at"])
        # pre-trust journals carry none of the three: fresh defaults
        self.validator = DemandValidator(self.lease_ttl)
        if "validator" in state:
            self.validator.restore(state["validator"])
        self.trust = TrustBook()
        if "trust" in state:
            self.trust.restore(state["trust"])
        self.brownout = BrownoutController()
        if "brownout" in state:
            self.brownout.restore(state["brownout"])

    # -- the epoch redistribution ------------------------------------------------

    def rebalance(
        self, epoch: int, reports: dict[str, NodeEpochReport]
    ) -> Arbitration:
        """Grant next-epoch caps from this epoch's demand reports.

        ``reports`` covers whichever nodes' envelopes survived the
        control plane this round; crashed reporters are retired before
        their demand is considered.  Members split three ways:

        * **reporting** members are water-filled from their demand
          (fresh, or held over and aged when the report carried no
          samples);
        * **new** members (admitted, nothing heard yet — a join's first
          rounds) bid unconstrained so a booting node can claim its
          share immediately; past one lease TTL of silence they are
          demoted to a floor reservation like any other silent node;
        * **silent** members (heard before, nothing this round) are not
          water-filled at all: their budget stays *reserved* at the
          last granted cap until the lease expires, then at the floor —
          see the module docstring for why this keeps the cap-sum
          invariant honest under partitions.
        """
        crashed = [r.name for r in reports.values() if r.crashed]
        self.retire(crashed)
        violations: dict[str, tuple[str, ...]] = {}
        validator = self.validator
        if validator is None:
            # break-glass mode: reports taken at face value, no trust
            # updates (nothing can detect a violation).  Also the
            # bench's "unvalidated arbitration" baseline.
            for name in sorted(reports):
                report = reports[name]
                if name not in self._members:
                    continue
                self._last_seen[name] = epoch
                if report.samples > 0:
                    self._last_report[name] = report
                    self._last_fresh[name] = epoch
        else:
            # fresh demand goes through the model validator, and only
            # the clamped report survives as history — a lie can never
            # outlive the epoch it arrived in.  Trust is judged here
            # and only here: silence is the lease ladder's
            # jurisdiction, so a partitioned node is never
            # double-penalized.  The validator's tier-0 settled check
            # is fused into this loop (one dict probe per report —
            # the steady majority repeats its last clean-accepted
            # reading verbatim); only the residue pays for screening
            # and per-report verdicts.
            # clean-epoch credit only matters while some node carries
            # a degraded score — with the book empty, observe_clean is
            # a no-op, so skip accumulating the fresh-name list at all
            # (scores created *this* epoch land in the residue set,
            # which observe_clean would skip anyway).
            healing = bool(self.trust.scores)
            fresh_names: list[str] = []
            suspect_names: list[str] = []
            suspect_reports: list[NodeEpochReport] = []
            clean_get = validator.clean_tuples.get
            cut = validator.fresh_cut(epoch)
            for name in sorted(reports):
                report = reports[name]
                if name not in self._members:
                    continue
                self._last_seen[name] = epoch
                if report.samples <= 0:
                    continue
                if healing:
                    fresh_names.append(name)
                t = clean_get(name)
                if (
                    t is not None
                    and report.epoch >= cut
                    and t[0] == report.mean_power_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
                    and t[1] == report.throttle_pressure
                    and t[2] == report.headroom_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
                    and t[3] == report.cap_w  # repro-lint: disable=float-equality — settled-memo bit-identity is intended
                ):
                    self._last_report[name] = report
                    self._last_fresh[name] = epoch
                    continue
                suspect_names.append(name)
                suspect_reports.append(report)
            residue_names: set[str] = set()
            if suspect_names:
                residue = validator.screen(
                    suspect_reports,
                    suspect_names,
                    epoch=epoch,
                    floors=self._node_floor,
                    maxes=self._node_max,
                    granted=self._caps,
                )
                residue_names = {suspect_names[i] for i in residue}
                for i in residue:
                    name = suspect_names[i]
                    checked, broken = validator.validate(
                        suspect_reports[i],
                        epoch=epoch,
                        floor_w=self._node_floor[name],
                        max_cap_w=self._node_max[name],
                        granted_w=self._caps.get(name),
                    )
                    self.trust.observe(name, bool(broken))
                    if broken:
                        violations[name] = broken
                    suspect_reports[i] = checked
                for i, name in enumerate(suspect_names):
                    self._last_report[name] = suspect_reports[i]
                    self._last_fresh[name] = epoch
            if fresh_names:
                self.trust.observe_clean(
                    fresh_names, skip=residue_names
                )
        if not self._members:
            self._caps = {}
            self._cap_sum = 0.0
            return Arbitration(epoch, {}, {})
        for name in self._members:
            self._admitted_at.setdefault(name, epoch)

        live, reserved, degraded, pressure = self._classify(epoch)
        reserved_sum = sum(reserved[name] for name in sorted(reserved))
        budget = self.budget_w - reserved_sum

        # the level applied to this epoch's claims is the level the
        # ladder held *entering* the epoch (journaled state), so the
        # grant stays a pure function of the snapshot
        level = self.brownout.level
        caps = dict(reserved)
        group_pools, shed, stats, live_sum = self._arbitrate(
            epoch, live, budget, caps, degraded
        )
        total = self._trim(caps, reserved_sum + live_sum)
        # committed load is measured before the reservation shave and
        # before brownout shedding (the signal must not chase its own
        # effect)
        self.brownout.observe(pressure, self.budget_w)
        self._caps = caps
        self._cap_sum = total
        return Arbitration(
            epoch,
            dict(caps),
            group_pools,
            degraded=tuple(sorted(degraded)),
            reserved_w=dict(reserved),
            shed=shed,
            fleet_stats=stats,
            quarantined=self.trust.quarantined_names(),
            brownout=level,
            trust_violations=violations,
        )

    def _arbitrate(
        self,
        epoch: int,
        live: list[str],
        budget: float,
        caps: dict[str, float],
        degraded: list[str],
    ) -> tuple[dict[str, float], tuple[str, ...], dict[str, int], float]:
        """Water-fill the bidding budget over the live members.

        Fills ``caps`` in place (on top of the reservations already
        there), appends demand-blind members to ``degraded``, and
        returns ``(pools, shed, stats, live_sum)`` — the per-group (or
        per-domain) pools, the members shed to their floors under
        contention, arbitration counters, and the float sum of the
        caps placed (so the caller can maintain the cap-sum
        incrementally).  This flat two-level implementation is the
        PR-3 arbiter; :class:`repro.fleet.arbiter.FleetArbiter`
        overrides it with the hierarchical dirty-subtree scheme.
        """
        claims_by_group: dict[str, list[Claim]] = {}
        top_shares = max(
            (self.config.node(n).shares for n in live), default=0.0
        )
        for name in live:
            spec = self.config.node(name)
            report = self._last_report.get(name)
            claim = self._claim(
                spec, report, self._age(name, epoch), top_shares
            )
            if report is None and self._admitted_at[name] != epoch:
                # demand-blind grant for an established member: a tick
                # storm ate its first samples (satellite: no silent
                # floor/blind caps — health roll-ups must see these)
                degraded.append(name)
            group = self.config.group_of(spec)
            claims_by_group.setdefault(group, []).append(claim)

        group_pools: dict[str, float] = {}
        live_sum = 0.0
        if claims_by_group:
            group_pools = self._split_groups(claims_by_group, budget)
            for group, claims in claims_by_group.items():
                fill = refill_pool(group_pools[group], claims)
                caps.update(fill)
                live_sum += sum(fill[c.label] for c in claims)
        return group_pools, (), {}, live_sum

    def _classify(
        self, epoch: int
    ) -> tuple[list[str], dict[str, float], list[str], float]:
        """Split members into live bidders and silent reservations.

        Returns ``(live, reserved, degraded, pressure_w)``.
        Reservations are shaved toward their floors (largest first) if
        live members' floors would not otherwise fit — the
        no-starvation rule outranks a silent node's stale entitlement.
        ``pressure_w`` is the committed load *before* that shave (live
        floors plus unshaved reservations): the infeasibility signal
        the brownout ladder observes, which the shave would otherwise
        mask.
        """
        live: list[str] = []
        reserved: dict[str, float] = {}
        degraded: list[str] = []
        for name in sorted(self._members):
            floor = self.config.node(name).min_cap_w
            seen = self._last_seen.get(name)
            if seen is None:
                # nothing heard since admission: grace of one TTL for
                # the join handshake, then fail-safe to the floor
                if epoch - self._admitted_at[name] <= self.lease_ttl:
                    live.append(name)
                else:
                    reserved[name] = floor
                    degraded.append(name)
            elif seen == epoch:
                live.append(name)
            else:
                silent_for = epoch - seen
                if silent_for <= self.lease_ttl:
                    # lease still valid: the node may be enforcing its
                    # held-over cap — keep those watts reserved
                    reserved[name] = max(self._caps.get(name, floor), floor)
                else:
                    # lease expired: the node has stepped itself down
                    reserved[name] = floor
                degraded.append(name)
        live_floors = sum(self.config.node(n).min_cap_w for n in live)
        pressure = sum(reserved[n] for n in sorted(reserved)) + live_floors
        excess = pressure - self.budget_w
        if excess > 0:
            for name in sorted(
                reserved, key=lambda n: (-reserved[n], n)
            ):
                floor = self.config.node(name).min_cap_w
                give = min(excess, reserved[name] - floor)
                if give > 0:
                    reserved[name] -= give
                    excess -= give
                if excess <= 0:
                    break
        return live, reserved, degraded, pressure

    def _age(self, name: str, epoch: int) -> int:
        """Epochs since this member's demand was last fresh."""
        fresh = self._last_fresh.get(name)
        if fresh is None:
            return 0
        return epoch - fresh

    def _claim(
        self,
        spec: NodeSpec,
        report: NodeEpochReport | None,
        age: int,
        top_shares: float,
    ) -> Claim:
        """One live member's claim: trust-discounted demand ceiling,
        bounds shed per the brownout level in effect."""
        lo = spec.min_cap_w
        hi_cap = spec.resolved_max_cap_w()
        if report is None:
            # no demand history: an unconstrained bid, bounded only by
            # the node's configured cap range
            hi = hi_cap
        else:
            wants = report.mean_power_w + report.throttle_pressure * max(
                hi_cap - report.mean_power_w, 0.0
            )
            n_apps = len(spec.apps)
            healthy = max(n_apps - report.quarantined_cores, 0) / n_apps
            hi = min(wants * DEMAND_SLACK * healthy, hi_cap)
            if age > 1:
                # held-over demand ages toward the floor: the first
                # stale epoch keeps the full holdover, then the ceiling
                # decays linearly over the lease TTL so a stale report
                # cannot pin budget forever
                fade = max(0.0, 1.0 - (age - 1) / self.lease_ttl)
                hi = lo + (hi - lo) * fade
        hi = self.trust.discount_hi(spec.name, lo, hi)
        lo, hi = brownout_claim_bounds(
            self.brownout.level,
            floor_w=lo,
            raw_hi_w=hi,
            shares=spec.shares,
            top_shares=top_shares,
        )
        current = self._caps.get(spec.name, lo)
        return Claim(
            label=spec.name,
            shares=spec.shares,
            current=min(max(current, lo), hi),
            lo=lo,
            hi=hi,
        )

    def _split_groups(
        self, claims_by_group: dict[str, list[Claim]], budget_w: float
    ) -> dict[str, float]:
        """Split the bidding budget across groups by group shares.

        ``budget_w`` is the facility budget net of silent members'
        reservations — reserved watts come off the top globally, not
        out of the silent node's own group.  A group's claim aggregates
        its members: floor = sum of member floors, ceiling = sum of
        member demand ceilings.  With one group the split is the whole
        bidding budget and the tree is flat.
        """
        shares = self.config.group_shares()
        group_claims = [
            Claim(
                label=group,
                shares=shares[group],
                current=sum(c.current for c in claims),
                lo=sum(c.lo for c in claims),
                hi=sum(c.hi for c in claims),
            )
            for group, claims in sorted(claims_by_group.items())
        ]
        return refill_pool(budget_w, group_claims)

    def _trim(self, caps: dict[str, float], total: float) -> float:
        """Shave the water-filling bisection residue so the cap sum is
        *exactly* at or under budget, largest caps first (never below a
        node's floor).  Returns the post-trim total."""
        excess = total - self.budget_w
        if excess <= _SUM_TOLERANCE:
            return total
        shaved = 0.0
        for name in sorted(caps, key=lambda n: (-caps[n], n)):
            floor = self.config.node(name).min_cap_w
            give = min(excess, caps[name] - floor)
            if give > 0:
                caps[name] -= give
                excess -= give
                shaved += give
            if excess <= 0:
                break
        if excess > _SUM_TOLERANCE:  # pragma: no cover - config validation
            raise ConfigError(
                "cap floors exceed the cluster budget; config validation "
                "should have rejected this"
            )
        self._caches_invalidated()
        return total - shaved

    def _caches_invalidated(self) -> None:
        """Hook: the trim mutated caps behind any incremental caches.

        The flat arbiter keeps none; the fleet arbiter drops its
        per-rack reuse caches so the next epoch re-fills from scratch.
        """

    def check_invariant(self, *, full: bool = False) -> None:
        """Raise unless live caps sum to at most the budget.

        The per-epoch check reads the incrementally-maintained sum —
        O(1), so a 1,000-node fleet pays nothing for the safety net.
        ``full=True`` additionally rescans the caps dict and verifies
        the maintained sum has not drifted from it (a debugging /
        regression-test mode; float addition order differs between the
        two, hence the drift tolerance).
        """
        total = self._cap_sum
        if full:
            rescan = sum(self._caps.values())
            if abs(rescan - total) > _SUM_DRIFT_TOLERANCE:
                raise ConfigError(
                    f"cap-sum accounting drift: maintained "
                    f"{total:.9f} W vs rescanned {rescan:.9f} W"
                )
            total = rescan
        if total > self.budget_w + _SUM_TOLERANCE:
            raise ConfigError(
                f"cap invariant violated: {total:.6f} W granted against "
                f"a {self.budget_w:.6f} W budget"
            )
