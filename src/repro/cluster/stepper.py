"""Serial and parallel node stepping with identical results.

Within one arbitration epoch the nodes are completely independent — all
coupling flows through the caps computed *before* the epoch and the
reports consumed *after* it — so node stepping parallelizes the same
way the experiment batches in :mod:`repro.experiments.parallel` do.

The parallel path uses persistent fork workers rather than a task pool:
a node's simulator state must live somewhere across epochs, and
shipping whole chips through pickles every epoch would dwarf the
stepping work.  Each worker owns a fixed subset of nodes (round-robin
by node index), builds them lazily at their join epoch, and answers
``step`` commands over a pipe with the same
:class:`~repro.cluster.node.NodeEpochReport` values the serial path
produces.  Both paths run the identical per-node code on the identical
cap sequence, and every cross-node reduction happens in the parent, so
the parallel path is **byte-identical** to the serial one — the
equivalence tests assert it.

``jobs`` semantics follow :func:`repro.experiments.parallel.
resolve_jobs`: ``None``/``0``/``1`` step serially in-process, negative
uses every core.
"""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.cluster.node import ClusterNode, NodeEpochReport
from repro.errors import SimulationError
from repro.experiments.parallel import fork_context, resolve_jobs
from repro.sim.engine import SimEngine, run_lockstep


def _step_nodes(
    nodes: list[ClusterNode],
    epoch: int,
    t0: float,
    t1: float,
    caps_w: dict[str, float],
    safe_names: frozenset[str],
    down: frozenset[str],
    restarts: frozenset[str],
    idle: frozenset[str],
) -> list[NodeEpochReport]:
    """Step one node subset — the single code path both steppers share.

    ``restarts`` names nodes rebooting at this boundary (old incarnation
    discarded, fresh stack built with the safe latch held); ``down``
    names nodes inside a crash window — their simulation does not run
    and they file no report, exactly like a dead machine.  ``idle``
    names nodes the diurnal schedule left without traffic: their
    simulation is frozen for the epoch and a synthetic idle report
    filed instead (see :meth:`ClusterNode.idle_report`).  All three
    sets are decided in the parent, so serial and fork-parallel
    stepping stay byte-identical under crash and schedule faults.
    """
    reports: list[NodeEpochReport] = []
    for node in nodes:
        name = node.spec.name
        if name in restarts:
            node.restart()
        if name in down:
            continue
        if name in caps_w and node.active_in(t0, t1):
            if name in idle:
                reports.append(
                    node.idle_report(epoch, caps_w[name], t0, t1)
                )
                continue
            reports.append(
                node.step_epoch(
                    epoch,
                    caps_w[name],
                    t0,
                    t1,
                    safe_mode=name in safe_names,
                )
            )
    return reports


class SerialNodeStepper:
    """All nodes stepped in-process, ascending node index."""

    def __init__(self, config: ClusterConfig):
        self.nodes = [
            ClusterNode(config, index) for index in range(len(config.nodes))
        ]

    def step(
        self,
        epoch: int,
        t0: float,
        t1: float,
        caps_w: dict[str, float],
        safe_names: frozenset[str] = frozenset(),
        down: frozenset[str] = frozenset(),
        restarts: frozenset[str] = frozenset(),
        idle: frozenset[str] = frozenset(),
    ) -> dict[str, NodeEpochReport]:
        reports = _step_nodes(
            self.nodes, epoch, t0, t1, caps_w, safe_names, down, restarts,
            idle,
        )
        return {report.name: report for report in reports}

    def close(self) -> None:
        pass

    def __enter__(self) -> "SerialNodeStepper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class StackedNodeStepper(SerialNodeStepper):
    """Serial semantics, stacked stepping: one array batch per epoch.

    Every live node is *prepared* first (caps, safe-mode verdicts,
    crash-shortened windows), then all engines sharing an epoch length
    are gang-stepped with :func:`repro.sim.engine.run_lockstep` — their
    chips advance as one ``(ticks, nodes x cores)`` numpy batch in this
    process — and finally each node condenses its report.  Nodes are
    independent within an epoch, so interleaving their ticks is
    byte-identical to stepping them one after another (the equivalence
    tests assert stacked == serial == fork-parallel).
    """

    def step(
        self,
        epoch: int,
        t0: float,
        t1: float,
        caps_w: dict[str, float],
        safe_names: frozenset[str] = frozenset(),
        down: frozenset[str] = frozenset(),
        restarts: frozenset[str] = frozenset(),
        idle: frozenset[str] = frozenset(),
    ) -> dict[str, NodeEpochReport]:
        idle_reports: list[NodeEpochReport] = []
        pending: list[tuple[ClusterNode, int, bool]] = []
        for node in self.nodes:
            name = node.spec.name
            if name in restarts:
                node.restart()
            if name in down:
                continue
            if name in caps_w and node.active_in(t0, t1):
                if name in idle:
                    # schedule says no traffic: skip the batch entirely
                    idle_reports.append(
                        node.idle_report(epoch, caps_w[name], t0, t1)
                    )
                    continue
                n_ticks, crashed = node.begin_epoch(
                    caps_w[name], t0, t1, safe_mode=name in safe_names
                )
                pending.append((node, n_ticks, crashed))
        # nodes crashing mid-epoch run a shorter window; gang-step each
        # distinct window length together
        gangs: dict[int, list[SimEngine]] = {}
        for node, n_ticks, _ in pending:
            assert node.stack is not None
            gangs.setdefault(n_ticks, []).append(node.stack.engine)
        for n_ticks, engines in gangs.items():
            run_lockstep(engines, n_ticks)
        reports: dict[str, NodeEpochReport] = {}
        for node, _, crashed in pending:
            report = node.finish_epoch(
                epoch, caps_w[node.spec.name], t1, crashed
            )
            reports[report.name] = report
        for report in idle_reports:
            reports[report.name] = report
        return reports


def _worker_main(config: ClusterConfig, indices: list[int], conn) -> None:
    """Worker loop: own a node subset, answer step commands."""
    nodes = [ClusterNode(config, index) for index in indices]
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                return
            (
                _, epoch, t0, t1, caps_w, safe_names, down, restarts, idle,
            ) = message
            try:
                reports = _step_nodes(
                    nodes, epoch, t0, t1, caps_w, safe_names, down, restarts,
                    idle,
                )
            # worker boundary: any failure is serialized to the parent
            # and re-raised there, so nothing is swallowed
            # repro-lint: disable=fail-safety — exception ships to parent
            except Exception as exc:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
                return
            conn.send(("reports", reports))
    except EOFError:  # pragma: no cover - parent died
        return
    finally:
        conn.close()


class ParallelNodeStepper:
    """Persistent fork workers, each owning a fixed node subset."""

    def __init__(self, config: ClusterConfig, n_workers: int):
        n_workers = min(n_workers, len(config.nodes))
        ctx = fork_context()
        self._workers = []
        for worker_id in range(n_workers):
            indices = list(range(worker_id, len(config.nodes), n_workers))
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(config, indices, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._workers.append((process, parent_conn))

    def step(
        self,
        epoch: int,
        t0: float,
        t1: float,
        caps_w: dict[str, float],
        safe_names: frozenset[str] = frozenset(),
        down: frozenset[str] = frozenset(),
        restarts: frozenset[str] = frozenset(),
        idle: frozenset[str] = frozenset(),
    ) -> dict[str, NodeEpochReport]:
        for _, conn in self._workers:
            try:
                conn.send(
                    (
                        "step", epoch, t0, t1, caps_w, safe_names, down,
                        restarts, idle,
                    )
                )
            except (BrokenPipeError, OSError) as exc:
                self.close()
                raise SimulationError(
                    f"cluster worker pipe failed during epoch {epoch}: "
                    f"{exc}"
                ) from exc
        reports: dict[str, NodeEpochReport] = {}
        for _, conn in self._workers:
            kind, payload = conn.recv()
            if kind == "error":
                self.close()
                raise SimulationError(
                    f"cluster worker failed during epoch {epoch}: {payload}"
                )
            for report in payload:
                reports[report.name] = report
        return reports

    def close(self) -> None:
        for process, conn in self._workers:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for process, _ in self._workers:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join()
        self._workers = []

    def __enter__(self) -> "ParallelNodeStepper":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def make_stepper(config: ClusterConfig, jobs: int | None):
    """Serial stepper for <=1 job, persistent fork workers otherwise.

    The in-process case upgrades to :class:`StackedNodeStepper` when the
    config runs the array engine: all nodes' chips step as one stacked
    batch per epoch, which beats forking for typical fleet sizes.
    """
    n_workers = min(resolve_jobs(jobs), len(config.nodes))
    if n_workers <= 1:
        if config.engine == "array":
            return StackedNodeStepper(config)
        return SerialNodeStepper(config)
    return ParallelNodeStepper(config, n_workers)
