"""Lease-based power caps: fail-safe when the control plane goes dark.

A cap grant over an unreliable transport cannot be a permanent
entitlement — a node cut off from the arbiter would keep burning at its
last cap while the arbiter re-budgets those watts to someone else.  So
grants are **leases with a TTL measured in epochs**, and each side of
the link fails safe on its own clock:

* the **node** (this module, driven by the :class:`~repro.cluster.
  runtime.ClusterSim` supervisor) steps down through a ladder as grant
  renewals stop arriving::

      GRANTED ──miss──▶ HOLDOVER ──ttl misses──▶ DEGRADED ──▶ SAFE

  HOLDOVER keeps enforcing the last applied cap (the lease is still
  valid); DEGRADED drops to the node's configured floor cap; SAFE
  additionally latches the daemon's PR 1 safe mode — RAPL backstop
  re-armed, cores floored — the paper's hardware baseline as the
  last-resort enforcement when the software plane is unreachable.
  A fully partitioned node reaches SAFE within ``ttl + 1`` epochs.

* the **arbiter** (:mod:`repro.cluster.arbiter`) mirrors the ladder:
  a leased-but-silent node's budget stays reserved at its last granted
  cap until the lease expires, then collapses to the floor the node is
  now known to be enforcing — so the cap-sum ≤ budget invariant holds
  with grants in flight and through the entire outage.

Recovery is symmetric: the first grant that gets through re-enters
GRANTED at the granted cap and releases the daemon's safe-mode latch,
and the first report that gets through restores the node's full claim
in the next water-filling round.
"""

from __future__ import annotations

import enum

from repro.cluster.transport import (
    ARBITER,
    GRANT,
    Envelope,
    SequenceGuard,
    TransportStats,
)
from repro.errors import ConfigError


class LeaseState(enum.Enum):
    """Where one node sits on the step-down ladder."""

    GRANTED = "granted"
    HOLDOVER = "holdover"
    DEGRADED = "degraded"
    SAFE = "safe"


#: numeric codes for trace series (monotone in severity).
LEASE_CODES: dict[LeaseState, int] = {
    LeaseState.GRANTED: 0,
    LeaseState.HOLDOVER: 1,
    LeaseState.DEGRADED: 2,
    LeaseState.SAFE: 3,
}


class NodeLease:
    """One node's view of its cap lease.

    Fed every epoch with whatever grant envelopes the transport
    delivered; duplicates and reordered stragglers are rejected through
    a :class:`~repro.cluster.transport.SequenceGuard` before they can
    wind the cap backwards.
    """

    def __init__(
        self,
        name: str,
        *,
        floor_w: float,
        ttl_epochs: int,
        stats: TransportStats | None = None,
    ):
        if ttl_epochs < 1:
            raise ConfigError("lease TTL must be at least one epoch")
        if floor_w <= 0:
            raise ConfigError("lease floor must be positive")
        self.name = name
        self.floor_w = floor_w
        self.ttl_epochs = ttl_epochs
        self._guard = SequenceGuard(stats)
        #: a node boots demand-blind at its floor until the first grant
        #: lands — fail-safe from the first epoch.
        self.state = LeaseState.DEGRADED
        self.cap_w = floor_w
        #: consecutive epochs without an accepted grant.
        self.misses = 0
        #: epoch of the newest applied grant (-1: never granted).
        self.granted_epoch = -1

    @property
    def safe(self) -> bool:
        return self.state is LeaseState.SAFE

    def observe(self, envelopes: list[Envelope], epoch: int) -> None:
        """Apply this epoch's delivered grants, or step down the ladder."""
        newest: Envelope | None = None
        for env in envelopes:
            if env.kind != "grant" or env.dst != self.name:
                continue
            if not self._guard.accept(env):
                continue
            if newest is None or env.epoch > newest.epoch:
                newest = env
        if newest is not None:
            self.state = LeaseState.GRANTED
            self.cap_w = float(newest.payload)  # type: ignore[arg-type]
            self.granted_epoch = newest.epoch
            self.misses = 0
            return
        self.misses += 1
        if self.misses < self.ttl_epochs and self.granted_epoch >= 0:
            self.state = LeaseState.HOLDOVER
        elif self.misses <= self.ttl_epochs:
            self.state = LeaseState.DEGRADED
            self.cap_w = self.floor_w
        else:
            self.state = LeaseState.SAFE
            self.cap_w = self.floor_w

    # -- crash recovery ----------------------------------------------------------

    def restart(self, *, fenced_epoch: int) -> None:
        """Reboot this lease: SAFE at the floor, pre-crash grants dead.

        A rebooted node presents its last *fenced* epoch and refuses
        anything older: the guard is primed at ``fenced_epoch`` so a
        straggler grant from before the crash — possibly for watts the
        arbiter has since re-budgeted — can never be applied.  Only a
        fresh post-restart grant walks the node back up the ladder.
        """
        self.state = LeaseState.SAFE
        self.cap_w = self.floor_w
        self.misses = self.ttl_epochs + 1
        self.granted_epoch = -1
        self._guard.prime(GRANT, ARBITER, fenced_epoch)

    def snapshot(self) -> dict:
        """Checkpoint the ladder position and guard for the journal."""
        return {
            "state": self.state.value,
            "cap_w": self.cap_w,
            "misses": self.misses,
            "granted_epoch": self.granted_epoch,
            "guard": self._guard.snapshot(),
        }

    def restore(self, state: dict) -> None:
        self.state = LeaseState(state["state"])
        self.cap_w = state["cap_w"]
        self.misses = state["misses"]
        self.granted_epoch = state["granted_epoch"]
        self._guard.restore(state["guard"])
