"""Cluster telemetry roll-up on the paper's trace machinery.

:class:`ClusterTrace` folds every epoch's per-node reports and arbiter
grants into named :class:`~repro.telemetry.trace.TraceSeries` — the same
summary machinery the single-socket figures use — so cluster runs get
box-plot-ready series for free:

* per node: ``<name>.power_w``, ``<name>.cap_w``, ``<name>.throttle``,
  ``<name>.headroom_w``, ``<name>.parked``, ``<name>.quarantined``;
* global: ``cluster.power_w`` (sum over live nodes),
  ``cluster.cap_w`` (sum of granted caps), ``cluster.budget_w``;
* control plane (when the lease supervisor runs): per node
  ``<name>.lease`` (0 granted · 1 holdover · 2 degraded · 3 safe),
  plus ``transport.sent|delivered|dropped|delayed|duplicated|stale``
  per-epoch counts, ``cluster.reserved_w`` (budget the arbiter holds
  for leased-but-silent nodes), ``cluster.degraded_grants``, the
  crash-fault counters ``cluster.restarts`` (node reboots executed at
  the epoch boundary) and ``cluster.crash_recoveries`` (arbiter
  crashes redone from the journal), and the trust counters
  ``cluster.brownout`` (ladder level in effect), ``cluster.
  trust_violations`` (nodes whose report failed validation this
  epoch), and ``cluster.quarantined`` (nodes below the trust
  threshold).

Sampling is at epoch cadence: one point per series per arbitration
round, timestamped with the epoch's end.  ``to_jsonable`` emits a
stable, fully-ordered form the determinism tests byte-compare.
"""

from __future__ import annotations

from repro.cluster.node import NodeEpochReport
from repro.telemetry.trace import Trace, TraceSeries


class ClusterTrace:
    """Per-node and cluster-wide series, sampled every epoch."""

    def __init__(self) -> None:
        self.trace = Trace()

    def record_epoch(
        self,
        t_end_s: float,
        reports: dict[str, NodeEpochReport],
        caps_w: dict[str, float],
        budget_w: float,
    ) -> None:
        """Fold one finished epoch into the series."""
        rec = self.trace.record
        for name in sorted(reports):
            report = reports[name]
            rec(f"{name}.power_w", t_end_s, report.mean_power_w)
            rec(f"{name}.cap_w", t_end_s, report.cap_w)
            rec(f"{name}.throttle", t_end_s, report.throttle_pressure)
            rec(f"{name}.headroom_w", t_end_s, report.headroom_w)
            rec(f"{name}.parked", t_end_s, float(report.parked_cores))
            rec(
                f"{name}.quarantined",
                t_end_s,
                float(report.quarantined_cores),
            )
        # sum in sorted-name order: float addition is not associative,
        # and the parallel stepper assembles ``reports`` in worker
        # order, not node order
        rec(
            "cluster.power_w",
            t_end_s,
            sum(reports[name].mean_power_w for name in sorted(reports)),
        )
        rec(
            "cluster.cap_w",
            t_end_s,
            sum(caps_w[name] for name in sorted(caps_w)),
        )
        rec("cluster.budget_w", t_end_s, budget_w)

    def record_control(
        self,
        t_end_s: float,
        *,
        transport_epoch: dict[str, int],
        lease_codes: dict[str, int],
        reserved_w: float,
        degraded_grants: int,
        restarts: int = 0,
        crash_recoveries: int = 0,
        fleet: dict[str, int] | None = None,
        brownout: int = 0,
        trust_violations: int = 0,
        quarantined: int = 0,
    ) -> None:
        """Fold one epoch's control-plane health into the series.

        ``transport_epoch`` is one :meth:`~repro.cluster.transport.
        TransportStats.take_epoch` window; ``lease_codes`` maps node
        name to its :data:`~repro.cluster.lease.LEASE_CODES` value at
        the end of the epoch; ``restarts`` counts node reboots executed
        at this epoch's boundary and ``crash_recoveries`` arbiter
        crashes redone from the journal this epoch.  ``fleet`` carries
        hierarchical-arbitration counters (racks refilled vs reused,
        shed members, idle nodes) when a topology is configured; flat
        runs pass ``None`` and their traces stay byte-identical to
        pre-fleet ones.
        """
        rec = self.trace.record
        for event in sorted(transport_epoch):
            rec(f"transport.{event}", t_end_s, float(transport_epoch[event]))
        for name in sorted(lease_codes):
            rec(f"{name}.lease", t_end_s, float(lease_codes[name]))
        rec("cluster.reserved_w", t_end_s, reserved_w)
        rec("cluster.degraded_grants", t_end_s, float(degraded_grants))
        rec("cluster.restarts", t_end_s, float(restarts))
        rec("cluster.crash_recoveries", t_end_s, float(crash_recoveries))
        rec("cluster.brownout", t_end_s, float(brownout))
        rec("cluster.trust_violations", t_end_s, float(trust_violations))
        rec("cluster.quarantined", t_end_s, float(quarantined))
        if fleet is not None:
            for key in sorted(fleet):
                rec(f"fleet.{key}", t_end_s, float(fleet[key]))

    def series(self, name: str) -> TraceSeries:
        return self.trace.series(name)

    def names(self) -> tuple[str, ...]:
        return self.trace.names()

    def __contains__(self, name: str) -> bool:
        return name in self.trace

    def node_mean_power_w(self, name: str, *, after_s: float = 0.0) -> float:
        """Mean of a node's power series, optionally post-warm-up."""
        return self.series(f"{name}.power_w").window(after_s).mean()

    def to_jsonable(self) -> dict:
        """Stable nested form: {series: {"t": [...], "v": [...]}}."""
        out: dict[str, dict[str, list[float]]] = {}
        for name in self.names():
            series = self.series(name)
            out[name] = {
                "t": list(series.times),
                "v": list(series.values),
            }
        return out
