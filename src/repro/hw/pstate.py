"""P-state tables: the discrete frequency/voltage operating points.

A :class:`PStateTable` models the per-platform DVFS grid.  Intel Skylake
exposes 100 MHz steps; AMD Ryzen exposes 25 MHz steps (paper section 2.1,
"Model-specific register").  Each grid point carries the voltage the
platform would apply at that frequency, which the power model consumes.

The table distinguishes *nominal* points from *opportunistic* (turbo/XFR)
points: turbo points are only reachable when the turbo model grants
headroom (few active cores), mirroring TurboBoost and Precision Boost/XFR.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import FrequencyError
from repro.units import quantize_down, quantize_nearest


@dataclass(frozen=True)
class PState:
    """One discrete operating point.

    Attributes:
        index: position in the table; 0 is the *lowest* frequency here.
            (ACPI numbers P0 as fastest; :meth:`PStateTable.acpi_index`
            converts.)
        frequency_mhz: core clock at this point.
        voltage_v: supply voltage applied at this point.
        turbo: True for opportunistic points above nominal max.
    """

    index: int
    frequency_mhz: float
    voltage_v: float
    turbo: bool = False


class PStateTable:
    """Ordered collection of :class:`PState` points for one platform.

    The table is built from a frequency range and step plus a voltage
    curve; it supports quantization (snapping continuous policy targets
    onto the hardware grid) and ACPI-style indexing.
    """

    def __init__(self, pstates: Sequence[PState]):
        if not pstates:
            raise FrequencyError("P-state table cannot be empty")
        ordered = sorted(pstates, key=lambda p: p.frequency_mhz)
        for expected_index, pstate in enumerate(ordered):
            if pstate.index != expected_index:
                raise FrequencyError(
                    "P-state indices must be contiguous from 0 in "
                    f"frequency order; got {pstate.index} at position "
                    f"{expected_index}"
                )
        freqs = [p.frequency_mhz for p in ordered]
        if len(set(freqs)) != len(freqs):
            raise FrequencyError("duplicate frequencies in P-state table")
        self._pstates: tuple[PState, ...] = tuple(ordered)
        self._frequencies: tuple[float, ...] = tuple(freqs)
        self._voltage_cache: dict[float, float] = {}

    def __eq__(self, other: object) -> bool:
        # value equality so PlatformSpec (a frozen dataclass holding a
        # table) compares by content; registry lookups rebuild specs
        if not isinstance(other, PStateTable):
            return NotImplemented
        return self._pstates == other._pstates

    def __hash__(self) -> int:
        return hash(self._pstates)

    @classmethod
    def from_range(
        cls,
        min_mhz: float,
        max_mhz: float,
        step_mhz: float,
        voltage_min_v: float,
        voltage_max_v: float,
        turbo_mhz: Sequence[float] = (),
        turbo_voltage_v: float | None = None,
    ) -> "PStateTable":
        """Build a table from a linear frequency grid and voltage ramp.

        Voltage interpolates linearly from ``voltage_min_v`` at ``min_mhz``
        to ``voltage_max_v`` at ``max_mhz``.  Turbo points (above
        ``max_mhz``) use ``turbo_voltage_v`` (default: a step above
        ``voltage_max_v``), which produces the distinct power jump the
        paper observes when TurboBoost/XFR engages (Figs 2 and 3).
        """
        if min_mhz <= 0 or max_mhz < min_mhz or step_mhz <= 0:
            raise FrequencyError(
                f"invalid frequency range [{min_mhz}, {max_mhz}] "
                f"step {step_mhz}"
            )
        points: list[PState] = []
        span = max_mhz - min_mhz
        freq = min_mhz
        index = 0
        while freq <= max_mhz + 1e-6:
            frac = 0.0 if span == 0 else (freq - min_mhz) / span
            voltage = voltage_min_v + frac * (voltage_max_v - voltage_min_v)
            points.append(PState(index, round(freq, 3), round(voltage, 4)))
            freq += step_mhz
            index += 1
        turbo_v = (
            turbo_voltage_v
            if turbo_voltage_v is not None
            else voltage_max_v + 0.08
        )
        for turbo_freq in sorted(turbo_mhz):
            if turbo_freq <= max_mhz:
                raise FrequencyError(
                    f"turbo frequency {turbo_freq} MHz not above nominal "
                    f"max {max_mhz} MHz"
                )
            points.append(PState(index, turbo_freq, turbo_v, turbo=True))
            index += 1
        return cls(points)

    def __len__(self) -> int:
        return len(self._pstates)

    def __iter__(self) -> Iterator[PState]:
        return iter(self._pstates)

    def __getitem__(self, index: int) -> PState:
        return self._pstates[index]

    @property
    def frequencies_mhz(self) -> tuple[float, ...]:
        """All grid frequencies ascending (turbo included)."""
        return self._frequencies

    def nominal_frequencies_mhz(self) -> tuple[float, ...]:
        """Grid frequencies excluding turbo points."""
        return tuple(p.frequency_mhz for p in self._pstates if not p.turbo)

    @property
    def min_frequency_mhz(self) -> float:
        return self._frequencies[0]

    @property
    def max_frequency_mhz(self) -> float:
        """Maximum frequency including turbo points."""
        return self._frequencies[-1]

    @property
    def max_nominal_frequency_mhz(self) -> float:
        nominal = self.nominal_frequencies_mhz()
        if not nominal:
            raise FrequencyError("table has only turbo points")
        return nominal[-1]

    def pstate_for_frequency(self, frequency_mhz: float) -> PState:
        """Exact lookup of a grid frequency; raises if off-grid."""
        pos = bisect.bisect_left(self._frequencies, frequency_mhz - 1e-6)
        if (
            pos < len(self._frequencies)
            and abs(self._frequencies[pos] - frequency_mhz) < 1e-6
        ):
            return self._pstates[pos]
        raise FrequencyError(
            f"{frequency_mhz} MHz is not a valid P-state on this platform"
        )

    def quantize(self, frequency_mhz: float, *, nearest: bool = False) -> PState:
        """Snap a continuous frequency target to a grid P-state.

        By default snaps *down* (never exceed the requested budget, the
        conservative choice for a power limiter).  ``nearest=True`` gives
        the translation-function behaviour of rounding to the closest
        point.
        """
        snap = quantize_nearest if nearest else quantize_down
        freq = snap(frequency_mhz, self._frequencies)
        return self.pstate_for_frequency(freq)

    def quantize_nominal(
        self, frequency_mhz: float, *, nearest: bool = False
    ) -> PState:
        """Quantize onto the nominal (non-turbo) part of the grid."""
        snap = quantize_nearest if nearest else quantize_down
        freq = snap(frequency_mhz, self.nominal_frequencies_mhz())
        return self.pstate_for_frequency(freq)

    def voltage_for_frequency(self, frequency_mhz: float) -> float:
        """Voltage at an arbitrary frequency (interpolating between points).

        Continuous interpolation supports the power model when policies
        reason about off-grid targets before quantization.
        """
        cached = self._voltage_cache.get(frequency_mhz)
        if cached is not None:
            return cached
        freqs = self._frequencies
        if frequency_mhz <= freqs[0]:
            voltage = self._pstates[0].voltage_v
        elif frequency_mhz >= freqs[-1]:
            voltage = self._pstates[-1].voltage_v
        else:
            pos = bisect.bisect_right(freqs, frequency_mhz)
            lo, hi = self._pstates[pos - 1], self._pstates[pos]
            frac = (frequency_mhz - lo.frequency_mhz) / (
                hi.frequency_mhz - lo.frequency_mhz
            )
            voltage = lo.voltage_v + frac * (hi.voltage_v - lo.voltage_v)
        self._voltage_cache[frequency_mhz] = voltage
        return voltage

    def acpi_index(self, pstate: PState) -> int:
        """ACPI-style index: P0 is the fastest state (paper section 2.1)."""
        return len(self._pstates) - 1 - pstate.index
