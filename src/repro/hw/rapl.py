"""RAPL: Running Average Power Limit (paper section 2.2).

Two cooperating pieces:

* :class:`RaplController` — the *telemetry* side: maintains the wrapping
  energy-status counters software reads (package on both platforms,
  per-core on Ryzen only) and converts counter deltas to average watts.
* :class:`RaplLimiter` — the *enforcement* side (Skylake only): a
  firmware feedback loop that keeps the exponentially-weighted running
  average of package power at or below the programmed limit by moving a
  single **global frequency cap**.  Cores whose requested frequency
  exceeds the cap are clamped; slower cores are untouched.

That cap-based design reproduces the paper's central observation (Fig 4):
*"RAPL only reduces the frequency of the unconstrained core"* — the
fastest cores get throttled first, regardless of which core actually
burns the power, which is precisely why RAPL cannot deliver differential
power and why the paper's policies exist.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigError, UnsupportedFeatureError
from repro.hw.platform import PlatformSpec
from repro.units import clamp, joules_to_uj


class RaplDomain(enum.Enum):
    """Power domains RAPL exposes (we model package and per-core)."""

    PACKAGE = "package"
    CORE = "core"


#: Simplified MSR_PKG_POWER_LIMIT layout: enable bit 15, limit in 1/8 W
#: units in bits [14:0].  Shared by the chip's convenience wrapper and
#: the daemon's safe-mode backstop programming, which must build the
#: raw register value itself (its MSR handle may be fault-injected).
PKG_POWER_LIMIT_ENABLE_BIT = 1 << 15
PKG_POWER_LIMIT_MASK = 0x7FFF


def encode_pkg_power_limit(limit_w: float | None) -> int:
    """Encode a package power limit into the PKG_POWER_LIMIT register."""
    if limit_w is None:
        return 0
    if limit_w < 0:
        raise ConfigError("power limit cannot be negative")
    return PKG_POWER_LIMIT_ENABLE_BIT | (
        int(round(limit_w * 8)) & PKG_POWER_LIMIT_MASK
    )


def decode_pkg_power_limit(value: int) -> float | None:
    """Inverse of :func:`encode_pkg_power_limit` (None when disabled)."""
    if not value & PKG_POWER_LIMIT_ENABLE_BIT:
        return None
    return (value & PKG_POWER_LIMIT_MASK) / 8.0


class RaplController:
    """Energy accounting for RAPL domains.

    Counters are integer micro-joules with 32-bit wraparound, like the
    hardware's ENERGY_STATUS MSRs; readers must diff modulo 2^32 (our
    turbostat does).
    """

    WRAP = 1 << 32

    def __init__(self, platform: PlatformSpec):
        self.platform = platform
        # cumulative joules as floats on the hot path; the wrapping
        # integer micro-joule view is computed on read, like hardware
        # latching a snapshot into the MSR
        self._pkg_energy_j = 0.0
        self._core_energy_j = [0.0] * platform.n_cores

    def accumulate(
        self, core_powers_w: list[float], pkg_power_w: float, dt_s: float
    ) -> None:
        """Fold one tick of power into the energy counters."""
        if len(core_powers_w) != self.platform.n_cores:
            raise ConfigError("core power vector length mismatch")
        self._pkg_energy_j += pkg_power_w * dt_s
        cores = self._core_energy_j
        for core_id, power in enumerate(core_powers_w):
            cores[core_id] += power * dt_s

    @property
    def package_energy_joules(self) -> float:
        """Total package energy since reset (unwrapped)."""
        return self._pkg_energy_j

    @property
    def package_energy_uj(self) -> int:
        return joules_to_uj(self._pkg_energy_j) % self.WRAP

    def core_energy_joules(self, core_id: int) -> float:
        return self._core_energy_j[core_id]

    def core_energy_uj(self, core_id: int) -> int:
        if not self.platform.has_per_core_energy:
            raise UnsupportedFeatureError(
                f"{self.platform.name} has no per-core energy counters"
            )
        return joules_to_uj(self._core_energy_j[core_id]) % self.WRAP


@dataclass(frozen=True)
class RaplLimiterConfig:
    """Control-loop constants for the firmware limiter.

    Real RAPL settles within tens of milliseconds with negligible
    overshoot (Zhang & Hoffman [59]); the defaults are tuned to match
    that behaviour at the simulator's 1 ms tick.
    """

    #: EWMA time constant of the running power average, seconds.
    averaging_tau_s: float = 0.010
    #: proportional gain: MHz of cap movement per watt of error per tick.
    gain_mhz_per_w: float = 4.0
    #: do not raise the cap until power is this far under the limit.
    hysteresis_w: float = 0.5


class RaplLimiter:
    """Firmware power limiter: EWMA of package power -> global freq cap."""

    def __init__(
        self,
        platform: PlatformSpec,
        config: RaplLimiterConfig | None = None,
    ):
        if not platform.has_rapl_limit:
            raise UnsupportedFeatureError(
                f"{platform.name} does not implement RAPL power limiting"
            )
        self.platform = platform
        self.config = config or RaplLimiterConfig()
        self._limit_w: float | None = None
        self._avg_power_w = 0.0
        self._cap_mhz = platform.max_frequency_mhz
        self._primed = False

    @property
    def limit_w(self) -> float | None:
        return self._limit_w

    @property
    def average_power_w(self) -> float:
        return self._avg_power_w

    @property
    def cap_mhz(self) -> float:
        """Current global frequency cap (max frequency when unlimited)."""
        return self._cap_mhz

    def set_limit(self, limit_w: float | None) -> None:
        """Program the package power limit (None disables limiting)."""
        if limit_w is None:
            self._limit_w = None
            self._cap_mhz = self.platform.max_frequency_mhz
            return
        lo, hi = self.platform.rapl_limit_range_w
        if not lo <= limit_w <= hi:
            raise ConfigError(
                f"RAPL limit {limit_w} W outside supported range "
                f"[{lo}, {hi}] W on {self.platform.name}"
            )
        self._limit_w = limit_w

    # repro-lint: disable=snapshot-completeness — _limit_w is programmed between control iterations (set_limit), never inside a batched rollback window; the pair covers exactly the intra-window recurrence state
    def control_state(self) -> tuple[float, float, bool]:
        """Snapshot of the mutable control-loop state.

        The batched array engine runs the limiter's recurrence forward
        optimistically and must be able to roll it back when a shorter
        prefix of the batch commits (see :mod:`repro.sim.soa`).
        """
        return (self._avg_power_w, self._cap_mhz, self._primed)

    def restore_control_state(
        self, state: tuple[float, float, bool]
    ) -> None:
        """Restore a snapshot taken by :meth:`control_state`."""
        self._avg_power_w, self._cap_mhz, self._primed = state

    def observe(self, pkg_power_w: float, dt_s: float) -> None:
        """Feed one tick of measured package power into the control loop."""
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        if not self._primed:
            self._avg_power_w = pkg_power_w
            self._primed = True
        else:
            alpha = clamp(dt_s / self.config.averaging_tau_s, 0.0, 1.0)
            self._avg_power_w += alpha * (pkg_power_w - self._avg_power_w)
        if self._limit_w is None:
            return
        error_w = self._avg_power_w - self._limit_w
        if error_w > 0.0:
            step = self.config.gain_mhz_per_w * error_w
        elif error_w < -self.config.hysteresis_w:
            step = self.config.gain_mhz_per_w * (error_w + self.config.hysteresis_w)
        else:
            return
        self._cap_mhz = clamp(
            self._cap_mhz - step,
            self.platform.min_frequency_mhz,
            self.platform.max_frequency_mhz,
        )

    def clip(self, requested_mhz: float) -> float:
        """Apply the global cap to one core's frequency request."""
        return min(requested_mhz, self._cap_mhz)
