"""Opportunistic frequency scaling: TurboBoost / Precision Boost + XFR.

When only a few cores are active, the remaining power/thermal headroom
lets those cores run above nominal maximum frequency (paper section 2.1,
"Opportunistic Scaling").  We model the standard stepped grant: the
fewer active cores, the higher the ceiling, down to nominal max once more
than ``turbo_max_cores_active`` cores are active.

This is the mechanism behind two of the paper's observations:

* the ~5 W package power jump at the top DVFS bins (Figs 2, 3) — turbo
  points carry a higher voltage;
* HP applications running *faster under a 40 W limit than at 85 W* when
  LP applications are starved (Fig 7) — parked LP cores free headroom.
"""

from __future__ import annotations

from repro.errors import PlatformError
from repro.hw.platform import PlatformSpec


class TurboModel:
    """Stepped turbo-ceiling table from the platform's ``turbo_bins``.

    Each bin is ``(max_active_cores, ceiling_mhz)``: the ceiling applies
    while at most that many cores are active.  Active-core counts beyond
    the last bin fall back to nominal max, so a platform whose last bin
    covers all cores (like the Xeon 4114's 2.5 GHz all-core turbo) always
    has some opportunistic headroom, while one without (none here) would
    degrade to nominal.
    """

    def __init__(self, platform: PlatformSpec):
        self.platform = platform
        self._bins = tuple(platform.turbo_bins)

    @property
    def has_turbo(self) -> bool:
        return bool(self._bins)

    def ceiling_mhz(self, active_cores: int) -> float:
        """Maximum grantable frequency with ``active_cores`` in C0."""
        if active_cores < 0:
            raise PlatformError("active core count cannot be negative")
        if active_cores == 0:
            active_cores = 1  # about-to-wake core gets the best bin
        for max_active, ceiling in self._bins:
            if active_cores <= max_active:
                return ceiling
        return self.platform.max_nominal_frequency_mhz

    def grant(self, requested_mhz: float, active_cores: int) -> float:
        """Clip a software frequency request to the turbo ceiling."""
        return min(requested_mhz, self.ceiling_mhz(active_cores))
