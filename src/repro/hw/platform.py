"""Platform descriptors for the two CPUs evaluated in the paper (Table 1).

Each :class:`PlatformSpec` captures everything the substrate and the
policies need to know about a chip:

* the DVFS grid (frequency range, step, turbo points, voltage curve),
* feature flags (per-core DVFS, RAPL limiting, per-core energy counters,
  simultaneous-P-state limit),
* AVX frequency offsets (AVX-heavy code caps the clock — paper Figs 1/2),
* power-model constants (leakage, uncore, capacitance scale, TDP).

The numbers are calibrated so the *shapes* in the paper's figures
reproduce: frequency dynamic range ~3-4x, core power range ~12-14x,
performance range ~4x (paper section 5.2), a ~5 W package-power jump when
turbo engages, and RAPL capping between 20 W and 85 W on Skylake.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, PlatformError
from repro.hw.pstate import PStateTable
from repro.units import ghz


@dataclass(frozen=True)
class PowerModelParams:
    """Constants for the analytic core/package power model.

    ``P_core = c_eff_scale * app_c_eff * V^2 * f_ghz * activity
    + leak_coeff * V`` and the package adds ``uncore_watts`` plus DRAM-ish
    base load.  ``c_eff_scale`` is tuned per platform so a mid-demand SPEC
    app at nominal max lands near the per-core powers the paper reports.
    """

    c_eff_scale: float
    leak_coeff_w_per_v: float
    uncore_watts: float
    idle_core_watts: float
    tdp_watts: float


@dataclass(frozen=True)
class PlatformSpec:
    """Static description of one evaluation platform (paper Table 1)."""

    name: str
    vendor: str
    n_cores: int
    n_threads: int
    dram_gb: int
    pstates: PStateTable
    step_mhz: float
    #: Number of distinct P-states usable simultaneously across cores.
    #: Ryzen 1700X supports only 3 (paper sections 2.1 and 5); use
    #: ``n_cores`` when unconstrained.
    simultaneous_pstates: int
    has_per_core_dvfs: bool
    has_rapl_limit: bool
    #: Per-core energy counters: present on Ryzen, absent on Skylake
    #: (which is why power shares only run on Ryzen — paper section 5.2).
    has_per_core_energy: bool
    rapl_limit_range_w: tuple[float, float]
    #: Frequency cap applied to cores executing AVX-heavy code, in MHz.
    #: The paper reports cam4 capped at ~1667 MHz vs 2360 MHz for gcc.
    avx_max_frequency_mhz: float
    #: Stepped turbo grant table: ``(max_active_cores, ceiling_mhz)``
    #: pairs sorted by active-core count.  The ceiling for an active-core
    #: count is the first entry whose key is >= that count; counts beyond
    #: the last entry fall back to nominal max.  A final entry with
    #: ``max_active_cores == n_cores`` models an *all-core turbo* bin
    #: (the Xeon 4114 sustains 2.5 GHz on all ten cores, which Fig 4 of
    #: the paper relies on).
    turbo_bins: tuple[tuple[int, float], ...]
    power: PowerModelParams
    #: Reference frequency the paper normalizes performance to
    #: (3.0 GHz Ryzen, 2.2 GHz Skylake — section 3.2).
    reference_frequency_mhz: float = 0.0
    #: Lowest frequency the paper's daemon ever programs.  On Ryzen the
    #: authors' three-P-state remapping makes P2 cover 0.8-2.1 GHz
    #: (section 3.1), so policies never request below 800 MHz even
    #: though the silicon grid reaches 400 MHz.  Equal to the hardware
    #: minimum where the paper imposes no extra floor.
    policy_floor_mhz: float = 0.0

    def __post_init__(self) -> None:
        if self.n_cores <= 0:
            raise ConfigError("platform must have at least one core")
        if self.simultaneous_pstates <= 0:
            raise ConfigError("simultaneous_pstates must be positive")
        lo, hi = self.rapl_limit_range_w
        if self.has_rapl_limit and not 0 < lo < hi:
            raise ConfigError(f"bad RAPL limit range [{lo}, {hi}]")
        # repro-lint: disable=float-equality — 0.0 is the unset-default sentinel
        if self.policy_floor_mhz == 0.0:
            object.__setattr__(
                self, "policy_floor_mhz", self.pstates.min_frequency_mhz
            )
        if self.policy_floor_mhz < self.pstates.min_frequency_mhz:
            raise ConfigError("policy floor below the hardware minimum")
        last = 0
        for max_active, ceiling in self.turbo_bins:
            if max_active <= last:
                raise ConfigError("turbo_bins must be sorted by active count")
            if ceiling < self.pstates.max_nominal_frequency_mhz:
                raise ConfigError("turbo ceiling below nominal max")
            last = max_active

    @property
    def min_frequency_mhz(self) -> float:
        return self.pstates.min_frequency_mhz

    @property
    def max_frequency_mhz(self) -> float:
        """Max frequency including opportunistic (turbo/XFR) points."""
        return self.pstates.max_frequency_mhz

    @property
    def max_nominal_frequency_mhz(self) -> float:
        return self.pstates.max_nominal_frequency_mhz

    def core_ids(self) -> range:
        return range(self.n_cores)

    def validate_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.n_cores:
            raise PlatformError(
                f"core {core_id} out of range on {self.name} "
                f"({self.n_cores} cores)"
            )

    def effective_max_frequency_mhz(self, uses_avx: bool) -> float:
        """Fastest clock an app can sustain given its instruction mix."""
        limit = self.max_frequency_mhz
        if uses_avx:
            limit = min(limit, self.avx_max_frequency_mhz)
        return limit


def skylake_xeon_4114() -> PlatformSpec:
    """Intel Xeon SP 4114 (Skylake) as characterised in paper Table 1.

    0.8-2.2 GHz nominal plus 3.0 GHz TurboBoost, 100 MHz steps, per-core
    DVFS, RAPL capping 20-85 W, package-level power telemetry only.
    """
    table = PStateTable.from_range(
        min_mhz=ghz(0.8),
        max_mhz=ghz(2.2),
        step_mhz=100.0,
        voltage_min_v=0.70,
        voltage_max_v=1.00,
        turbo_mhz=(ghz(2.3), ghz(2.4), ghz(2.5), ghz(2.6),
                   ghz(2.8), ghz(3.0)),
        turbo_voltage_v=1.12,
    )
    return PlatformSpec(
        name="skylake-xeon-4114",
        vendor="intel",
        n_cores=10,
        n_threads=20,
        dram_gb=192,
        pstates=table,
        step_mhz=100.0,
        simultaneous_pstates=10,
        has_per_core_dvfs=True,
        has_rapl_limit=True,
        has_per_core_energy=False,
        rapl_limit_range_w=(20.0, 85.0),
        avx_max_frequency_mhz=1700.0,
        turbo_bins=((1, ghz(3.0)), (2, ghz(3.0)), (3, ghz(2.8)),
                    (4, ghz(2.6)), (10, ghz(2.5))),
        power=PowerModelParams(
            c_eff_scale=2.9,
            leak_coeff_w_per_v=0.4,
            uncore_watts=7.0,
            idle_core_watts=0.12,
            tdp_watts=85.0,
        ),
        reference_frequency_mhz=ghz(2.2),
    )


def ryzen_1700x() -> PlatformSpec:
    """AMD Ryzen 1700X as characterised in paper Table 1.

    0.4-3.4 GHz plus 3.8 GHz XFR, 25 MHz steps, per-core DVFS but only 3
    simultaneous P-states, per-core energy counters, no documented RAPL
    limiting.
    """
    table = PStateTable.from_range(
        min_mhz=ghz(0.4),
        max_mhz=ghz(3.4),
        step_mhz=25.0,
        voltage_min_v=0.65,
        voltage_max_v=1.18,
        turbo_mhz=(ghz(3.5), ghz(3.8)),
        turbo_voltage_v=1.24,
    )
    return PlatformSpec(
        name="ryzen-1700x",
        vendor="amd",
        n_cores=8,
        n_threads=16,
        dram_gb=16,
        pstates=table,
        step_mhz=25.0,
        simultaneous_pstates=3,
        has_per_core_dvfs=True,
        has_rapl_limit=False,
        has_per_core_energy=True,
        rapl_limit_range_w=(0.0, 0.0),
        avx_max_frequency_mhz=ghz(3.0),
        turbo_bins=((2, ghz(3.8)), (8, ghz(3.5))),
        power=PowerModelParams(
            c_eff_scale=1.55,
            leak_coeff_w_per_v=0.4,
            uncore_watts=9.0,
            idle_core_watts=0.10,
            tdp_watts=95.0,
        ),
        reference_frequency_mhz=ghz(3.0),
        policy_floor_mhz=ghz(0.8),
    )


PLATFORM_REGISTRY = {
    "skylake": skylake_xeon_4114,
    "skylake-xeon-4114": skylake_xeon_4114,
    "ryzen": ryzen_1700x,
    "ryzen-1700x": ryzen_1700x,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by short or full name."""
    try:
        return PLATFORM_REGISTRY[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(PLATFORM_REGISTRY))
        raise ConfigError(f"unknown platform {name!r}; known: {known}") from None
