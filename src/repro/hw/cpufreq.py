"""cpufreq-style frequency control front-end (userspace governor).

The paper's daemon uses the Linux *userspace* governor to set P-states
from user level (section 2.2).  :class:`CpuFreqInterface` mirrors that
surface: per-CPU ``scaling_setspeed`` in kHz, quantized to the platform
grid, routed to the chip through the vendor's MSR encoding — the same
path a real daemon takes through sysfs into the pstate driver.

It also exposes ``scaling_cur_freq`` readback (from the P-state status
MSR) and scaling limits, so telemetry/tests can verify the request vs.
grant distinction that RAPL creates.
"""

from __future__ import annotations

from repro.errors import FrequencyError, PlatformError
from repro.hw import msr as msrdef
from repro.hw.msr import MSRFile
from repro.hw.platform import PlatformSpec
from repro.units import khz_to_mhz, mhz_to_khz


class CpuFreqInterface:
    """sysfs-like per-CPU frequency control over the MSR file."""

    def __init__(self, platform: PlatformSpec, msr: MSRFile):
        if msr.n_cpus != platform.n_cores:
            raise PlatformError("MSR file does not match platform core count")
        self.platform = platform
        self.msr = msr
        self._min_khz = mhz_to_khz(platform.min_frequency_mhz)
        self._max_khz = mhz_to_khz(platform.max_frequency_mhz)

    # -- sysfs-equivalent attributes -----------------------------------------

    @property
    def scaling_min_freq_khz(self) -> int:
        return self._min_khz

    @property
    def scaling_max_freq_khz(self) -> int:
        return self._max_khz

    def scaling_available_frequencies_khz(self) -> tuple[int, ...]:
        return tuple(
            mhz_to_khz(f) for f in self.platform.pstates.frequencies_mhz
        )

    # -- control ---------------------------------------------------------------

    def set_speed_khz(self, cpu: int, freq_khz: int) -> None:
        """``scaling_setspeed``: request a frequency in kHz."""
        self.set_speed_mhz(cpu, khz_to_mhz(freq_khz))

    def set_speed_mhz(self, cpu: int, freq_mhz: float, *, nearest: bool = True) -> None:
        """Request a frequency in MHz, snapping onto the platform grid.

        ``nearest=False`` snaps down instead (conservative under a power
        budget).  Out-of-range requests clamp to the scaling limits, as
        the cpufreq core does.
        """
        self.platform.validate_core(cpu)
        lo = self.platform.min_frequency_mhz
        hi = self.platform.max_frequency_mhz
        target = min(max(freq_mhz, lo), hi)
        pstate = self.platform.pstates.quantize(target, nearest=nearest)
        if self.platform.vendor == "intel":
            ratio = int(round(pstate.frequency_mhz / 100.0))
            if abs(ratio * 100.0 - pstate.frequency_mhz) > 1e-6:
                raise FrequencyError(
                    f"{pstate.frequency_mhz} MHz is not a multiple of the "
                    "100 MHz Intel bus clock"
                )
            self.msr.write(cpu, msrdef.IA32_PERF_CTL, ratio << 8)
        else:
            steps = int(round(pstate.frequency_mhz / 25.0))
            if abs(steps * 25.0 - pstate.frequency_mhz) > 1e-6:
                raise FrequencyError(
                    f"{pstate.frequency_mhz} MHz is not a multiple of the "
                    "25 MHz Ryzen step"
                )
            self.msr.write(cpu, msrdef.MSR_AMD_PSTATE_CTL, steps)

    def set_all_mhz(self, freq_mhz: float) -> None:
        """Set every CPU to one frequency (global-DVFS emulation)."""
        for cpu in self.platform.core_ids():
            self.set_speed_mhz(cpu, freq_mhz)

    # -- readback ----------------------------------------------------------------

    def current_freq_mhz(self, cpu: int) -> float:
        """``scaling_cur_freq``: granted (effective) frequency readback."""
        self.platform.validate_core(cpu)
        if self.platform.vendor == "intel":
            status = self.msr.read(cpu, msrdef.IA32_PERF_STATUS)
            return ((status >> 8) & 0xFF) * 100.0
        status = self.msr.read(cpu, msrdef.MSR_AMD_PSTATE_STATUS)
        return status * 25.0
