"""Model-specific register (MSR) file emulation.

A real per-application power daemon talks to the processor through
``/dev/cpu/<n>/msr`` (and sysfs).  This module provides that same register
interface over the simulated chip: 64-bit registers addressed per logical
CPU, some read-only (energy/perf counters), some writable (P-state
control, RAPL limits).  The simulator publishes counter updates into the
file; drivers (:mod:`repro.hw.cpufreq`, :mod:`repro.hw.rapl`,
:mod:`repro.telemetry.turbostat`) read and write through it.

Register addresses follow the Intel SDM and the AMD Family 17h PPR, so
the driver layer reads like real systems code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import MSRAddressError, MSRPermissionError, PlatformError

U64_MASK = 0xFFFF_FFFF_FFFF_FFFF

# --- Intel architectural / Skylake MSRs (Intel SDM vol. 4) -----------------
IA32_MPERF = 0x0E7  # TSC-rate reference cycles while in C0
IA32_APERF = 0x0E8  # actual cycles while in C0 (APERF/MPERF = avg freq)
IA32_PERF_STATUS = 0x198  # current P-state (frequency readback)
IA32_PERF_CTL = 0x199  # P-state request (frequency, in 100 MHz units)
IA32_FIXED_CTR0 = 0x309  # instructions retired
MSR_RAPL_POWER_UNIT = 0x606
MSR_PKG_POWER_LIMIT = 0x610
MSR_PKG_ENERGY_STATUS = 0x611  # package energy, micro-joules here

# --- AMD Family 17h (Ryzen) MSRs (PPR) --------------------------------------
MSR_AMD_PSTATE_CTL = 0xC001_0062  # P-state control (index write)
MSR_AMD_PSTATE_STATUS = 0xC001_0063
MSR_AMD_PSTATE_DEF0 = 0xC001_0064  # P-state definition registers (0..7)
MSR_AMD_RAPL_POWER_UNIT = 0xC001_0299
MSR_AMD_CORE_ENERGY = 0xC001_029A  # per-core energy counter
MSR_AMD_PKG_ENERGY = 0xC001_029B

#: 32-bit wraparound mask used by RAPL energy-status counters on real
#: hardware; readers must handle wrap (turbostat does; so does ours).
ENERGY_COUNTER_MASK = 0xFFFF_FFFF


@dataclass
class MSRDef:
    """Definition of one MSR: address, access policy, and scope."""

    address: int
    name: str
    writable: bool = False
    #: package-scope registers share one value across all CPUs
    package_scope: bool = False
    reset_value: int = 0
    #: optional validation/side-effect hook run on writes
    on_write: Optional[Callable[[int, int], None]] = None


class MSRFile:
    """Per-CPU 64-bit register file with package-scope aliasing.

    The file is created empty; platform bring-up (:mod:`repro.sim.chip`)
    registers the MSRs the platform supports.  Reading an unregistered
    address raises :class:`MSRAddressError` — exactly the ``EIO`` a real
    ``rdmsr`` would produce for an unimplemented MSR.
    """

    def __init__(self, n_cpus: int):
        if n_cpus <= 0:
            raise PlatformError("MSR file needs at least one CPU")
        self._n_cpus = n_cpus
        self._defs: Dict[int, MSRDef] = {}
        self._values: Dict[tuple[int, int], int] = {}

    @property
    def n_cpus(self) -> int:
        return self._n_cpus

    def register(self, msr_def: MSRDef) -> None:
        """Register an MSR definition and initialise its reset value."""
        if msr_def.address in self._defs:
            raise MSRAddressError(
                f"MSR 0x{msr_def.address:X} ({msr_def.name}) already registered"
            )
        self._defs[msr_def.address] = msr_def
        cpus = (0,) if msr_def.package_scope else range(self._n_cpus)
        for cpu in cpus:
            self._values[(cpu, msr_def.address)] = (
                msr_def.reset_value & U64_MASK
            )

    def is_registered(self, address: int) -> bool:
        return address in self._defs

    def definition(self, address: int) -> MSRDef:
        try:
            return self._defs[address]
        except KeyError:
            raise MSRAddressError(
                f"MSR 0x{address:X} is not implemented on this platform"
            ) from None

    def _slot(self, cpu: int, address: int) -> tuple[int, int]:
        msr_def = self.definition(address)
        if not 0 <= cpu < self._n_cpus:
            raise MSRAddressError(f"CPU {cpu} out of range")
        return (0 if msr_def.package_scope else cpu, address)

    def read(self, cpu: int, address: int) -> int:
        """``rdmsr``: read a 64-bit register on a CPU."""
        return self._values[self._slot(cpu, address)]

    def write(self, cpu: int, address: int, value: int) -> None:
        """``wrmsr``: write a register, enforcing the access policy."""
        msr_def = self.definition(address)
        if not msr_def.writable:
            raise MSRPermissionError(
                f"MSR 0x{address:X} ({msr_def.name}) is read-only"
            )
        if not 0 <= value <= U64_MASK:
            raise MSRPermissionError(
                f"value {value:#x} does not fit in 64 bits"
            )
        self._values[self._slot(cpu, address)] = value
        if msr_def.on_write is not None:
            msr_def.on_write(cpu, value)

    # -- simulator-side (privileged) accessors ------------------------------

    def poke(self, cpu: int, address: int, value: int) -> None:
        """Simulator-side write that bypasses the read-only policy.

        Used by the chip model to publish counter values (energy,
        APERF/MPERF, instructions retired) that are read-only to software.
        """
        self._values[self._slot(cpu, address)] = value & U64_MASK

    def advance_counter(
        self, cpu: int, address: int, delta: int, *, wrap_mask: int = U64_MASK
    ) -> None:
        """Increment a counter with hardware-accurate wraparound."""
        if delta < 0:
            raise MSRPermissionError("counters only move forward")
        slot = self._slot(cpu, address)
        self._values[slot] = (self._values[slot] + delta) & wrap_mask


def read_counter_delta(
    prev_raw: int, curr_raw: int, *, wrap_mask: int = U64_MASK
) -> int:
    """Difference between two reads of a free-running wrapping counter.

    Modular subtraction is how turbostat diffs every monotone counter
    (APERF/MPERF/FIXED_CTR0 at 64 bits, energy status at 32): a read
    taken just after the counter wraps must still yield the small
    forward movement, never a negative number.
    """
    return (curr_raw - prev_raw) & wrap_mask


def read_energy_delta(prev_raw: int, curr_raw: int) -> int:
    """Difference between two reads of a 32-bit wrapping energy counter."""
    return read_counter_delta(prev_raw, curr_raw, wrap_mask=ENERGY_COUNTER_MASK)
