"""Hardware-managed P-states (Intel HWP / ACPI CPPC — paper section 2.1).

With the Collaborative Processor Performance Control interface,
"hardware controls DVFS settings and software provides a range of
allowable performance".  Software writes per-core *hints* — minimum,
maximum, and desired performance on an abstract 0-255 scale — and the
hardware picks the operating point autonomously, exploiting what it can
observe about the workload (e.g. frequency-insensitivity from stalled
cycles).

:class:`HwpController` implements that contract over the simulated chip:

* hints are stored per core (an `IA32_HWP_REQUEST`-like register image),
* the abstract performance scale maps linearly onto the platform's
  frequency range — the paper's caveat that "the performance level used
  by CPPC is specific to the hardware implementation" applies verbatim,
* in *autonomous* mode the controller watches each core's achieved IPS
  and backs the clock off toward the highest useful frequency inside the
  hint window, which is exactly the hardware support the paper says can
  identify performance saturation (section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.chip import Chip
from repro.units import clamp

#: the abstract CPPC performance scale.
HWP_PERF_MIN = 1
HWP_PERF_MAX = 255


@dataclass
class HwpRequest:
    """Per-core hint register (subset of IA32_HWP_REQUEST fields)."""

    min_perf: int = HWP_PERF_MIN
    max_perf: int = HWP_PERF_MAX
    desired_perf: int = 0  # 0 = let hardware choose (autonomous)

    def validate(self) -> None:
        if not HWP_PERF_MIN <= self.min_perf <= HWP_PERF_MAX:
            raise ConfigError(f"min_perf {self.min_perf} out of range")
        if not HWP_PERF_MIN <= self.max_perf <= HWP_PERF_MAX:
            raise ConfigError(f"max_perf {self.max_perf} out of range")
        if self.min_perf > self.max_perf:
            raise ConfigError("min_perf above max_perf")
        if self.desired_perf and not (
            self.min_perf <= self.desired_perf <= self.max_perf
        ):
            raise ConfigError("desired_perf outside [min, max]")


class HwpController:
    """CPPC-style autonomous frequency selection within hint windows."""

    #: relative IPS gain per relative frequency gain below which the
    #: autonomous logic considers the core saturated and steps down.
    efficiency_floor = 0.35
    #: step size of autonomous moves, in abstract performance units.
    autonomous_step = 8

    def __init__(self, chip: Chip):
        self.chip = chip
        self.requests = [HwpRequest() for _ in chip.platform.core_ids()]
        self._last_ips = [0.0] * chip.platform.n_cores
        self._last_freq = [0.0] * chip.platform.n_cores
        self._last_instr = [0.0] * chip.platform.n_cores
        self._last_time = chip.time_s

    # -- hint interface (what software writes) -------------------------------

    def set_request(self, core_id: int, request: HwpRequest) -> None:
        self.chip.platform.validate_core(core_id)
        request.validate()
        self.requests[core_id] = request

    def perf_to_mhz(self, perf: int) -> float:
        """Map the abstract scale onto the platform frequency range."""
        platform = self.chip.platform
        fraction = (perf - HWP_PERF_MIN) / (HWP_PERF_MAX - HWP_PERF_MIN)
        return platform.min_frequency_mhz + fraction * (
            platform.max_frequency_mhz - platform.min_frequency_mhz
        )

    def mhz_to_perf(self, freq_mhz: float) -> int:
        platform = self.chip.platform
        span = platform.max_frequency_mhz - platform.min_frequency_mhz
        fraction = (freq_mhz - platform.min_frequency_mhz) / span
        return int(round(
            HWP_PERF_MIN + clamp(fraction, 0.0, 1.0)
            * (HWP_PERF_MAX - HWP_PERF_MIN)
        ))

    # -- autonomous selection (what "hardware" does) ---------------------------

    def update(self) -> None:
        """One autonomous-selection pass; call at control cadence.

        For each core: honour an explicit ``desired_perf``; otherwise
        probe within [min, max], stepping down when the last frequency
        change bought disproportionately little IPS (saturation) and up
        when IPS tracked frequency.
        """
        now = self.chip.time_s
        dt = now - self._last_time
        self._last_time = now
        for core in self.chip.cores:
            cpu = core.core_id
            request = self.requests[cpu]
            floor = self.perf_to_mhz(request.min_perf)
            ceiling = self.perf_to_mhz(request.max_perf)
            if request.desired_perf:
                target = self.perf_to_mhz(request.desired_perf)
                self._program(cpu, clamp(target, floor, ceiling))
                continue
            if dt <= 0:
                continue  # autonomous logic needs an observation window
            instr = core.total_instructions
            ips = (instr - self._last_instr[cpu]) / dt
            self._last_instr[cpu] = instr
            # track the *requested* frequency: past a hardware cap (AVX,
            # turbo ceiling) the effective clock stops moving, and it is
            # exactly the request-vs-IPS relation that reveals saturation
            freq = core.requested_mhz
            prev_ips = self._last_ips[cpu]
            prev_freq = self._last_freq[cpu]
            self._last_ips[cpu] = ips
            self._last_freq[cpu] = freq
            if not core.active:
                continue
            current = core.requested_mhz
            step_mhz = self.autonomous_step / (
                HWP_PERF_MAX - HWP_PERF_MIN
            ) * (
                self.chip.platform.max_frequency_mhz
                - self.chip.platform.min_frequency_mhz
            )
            if prev_freq > 0 and prev_ips > 0 and freq != prev_freq:
                freq_gain = freq / prev_freq - 1.0
                ips_gain = ips / prev_ips - 1.0
                if abs(freq_gain) > 0.01:
                    efficiency = ips_gain / freq_gain
                    if efficiency < self.efficiency_floor:
                        # saturated: frequency bought no performance
                        self._program(
                            cpu, clamp(current - step_mhz, floor, ceiling)
                        )
                        continue
            # default: climb toward the ceiling
            self._program(cpu, clamp(current + step_mhz, floor, ceiling))

    def _program(self, cpu: int, freq_mhz: float) -> None:
        pstate = self.chip.platform.pstates.quantize(freq_mhz, nearest=True)
        self.chip.set_requested_frequency(cpu, pstate.frequency_mhz)

    def attach(self, engine, period_s: float = 0.05) -> None:
        """Register the autonomous pass (hardware-fast: 50 ms default)."""
        engine.every(period_s, lambda _t: self.update())
