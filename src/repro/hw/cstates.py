"""C-state (core idle) model.

C-states trade wake-up latency for near-zero power (paper section 2.1,
"Core Idling"): C0 is active, C1 a shallow halt, C6 deep sleep at
milliwatt-level power.  The policy layer parks starved cores (priority
policy, section 5.1) which drives them to C6 and frees headroom for
turbo on the remaining cores.

The model tracks per-core residency statistics (what turbostat reports)
and charges wake-up latency by discounting the first tick of work after
a deep-sleep exit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PlatformError


class CState(enum.Enum):
    """Idle-state ladder (subset: the states turbostat reports on both
    evaluation platforms)."""

    C0 = 0  # active
    C1 = 1  # halt: clock gated, fast exit
    C6 = 6  # deep sleep: power gated, slow exit

    @property
    def is_idle(self) -> bool:
        return self is not CState.C0


#: Exit latencies in seconds (order-of-magnitude per Schöne et al. [46]).
EXIT_LATENCY_S = {
    CState.C0: 0.0,
    CState.C1: 1e-6,
    CState.C6: 133e-6,
}


@dataclass
class _Residency:
    c0_s: float = 0.0
    c1_s: float = 0.0
    c6_s: float = 0.0
    current: CState = CState.C0
    transitions: int = 0

    def seconds(self, state: CState) -> float:
        if state is CState.C0:
            return self.c0_s
        if state is CState.C1:
            return self.c1_s
        return self.c6_s

    def total(self) -> float:
        return self.c0_s + self.c1_s + self.c6_s


class CStateModel:
    """Tracks per-core C-state residency over simulated time."""

    def __init__(self, n_cores: int):
        if n_cores <= 0:
            raise PlatformError("need at least one core")
        self._cores = [_Residency() for _ in range(n_cores)]

    def observe(
        self, core_id: int, dt_s: float, busy_fraction: float, parked: bool
    ) -> float:
        """Record one tick; returns the work-efficiency factor in (0, 1].

        A parked core sits in C6.  An unparked core splits the tick
        between C0 (``busy_fraction``) and C1.  The efficiency factor
        discounts useful work by the exit latency paid when the core
        returns to C0 after deep sleep.
        """
        res = self._cores[core_id]
        previous = res.current
        if parked:
            new_state = CState.C6
            res.c6_s += dt_s
        elif busy_fraction <= 0.0:
            new_state = CState.C1
            res.c1_s += dt_s
        else:
            new_state = CState.C0
            res.c0_s += dt_s * busy_fraction
            res.c1_s += dt_s * (1.0 - busy_fraction)
        if new_state is not previous:
            res.transitions += 1
            res.current = new_state
        if previous is CState.C6 and new_state is CState.C0 and dt_s > 0:
            wake_cost = EXIT_LATENCY_S[CState.C6]
            return max(0.0, 1.0 - wake_cost / dt_s)
        return 1.0

    def residency(self, core_id: int, state: CState) -> float:
        """Total seconds core ``core_id`` has spent in ``state``."""
        return self._cores[core_id].seconds(state)

    def residency_fraction(self, core_id: int, state: CState) -> float:
        res = self._cores[core_id]
        total = res.total()
        if total <= 0:
            return 1.0 if state is CState.C0 else 0.0
        return res.seconds(state) / total

    def transitions(self, core_id: int) -> int:
        return self._cores[core_id].transitions

    def state(self, core_id: int) -> CState:
        return self._cores[core_id].current
