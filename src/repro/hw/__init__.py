"""Emulated hardware substrate: MSRs, P-states, cpufreq, RAPL, turbo, C-states.

This package stands in for the silicon the paper measures (Intel Xeon SP
4114 "Skylake" and AMD Ryzen 1700X).  The policy layer only ever talks to
these interfaces — the same boundary a real userspace daemon would have via
``/dev/cpu/*/msr`` and sysfs — so the policies are portable to real
hardware by swapping the backend.
"""

from repro.hw.platform import (
    PlatformSpec,
    ryzen_1700x,
    skylake_xeon_4114,
    get_platform,
    PLATFORM_REGISTRY,
)
from repro.hw.pstate import PState, PStateTable
from repro.hw.msr import MSRFile, MSRDef
from repro.hw.rapl import RaplDomain, RaplController, RaplLimiter
from repro.hw.turbo import TurboModel
from repro.hw.cstates import CState, CStateModel
from repro.hw.cpufreq import CpuFreqInterface
from repro.hw.hwp import HwpController, HwpRequest

__all__ = [
    "PlatformSpec",
    "ryzen_1700x",
    "skylake_xeon_4114",
    "get_platform",
    "PLATFORM_REGISTRY",
    "PState",
    "PStateTable",
    "MSRFile",
    "MSRDef",
    "RaplDomain",
    "RaplController",
    "RaplLimiter",
    "TurboModel",
    "CState",
    "CStateModel",
    "CpuFreqInterface",
    "HwpController",
    "HwpRequest",
]
