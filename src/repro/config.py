"""Experiment configuration helpers.

Small declarative layer the CLI and the benchmark harness share: build a
ready-to-run (chip, engine, daemon) stack from names — platform, policy,
workload labels, shares/priorities, and a power limit — with the same
validation everywhere.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.core.daemon import PowerDaemon, ResilienceConfig
from repro.faults import (
    FaultScenario,
    FaultyMSRFile,
    TickFaultGate,
    get_scenario,
    schedule_app_crashes,
)
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.hwp_hints import HwpHintsPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.policy import Policy
from repro.core.power_shares import PowerSharesPolicy
from repro.core.priority import PriorityPolicy
from repro.core.rapl_baseline import RaplBaselinePolicy
from repro.core.types import ManagedApp, Priority
from repro.hw.platform import PlatformSpec, get_platform
from repro.sim.chip import Chip
from repro.sim.engine import ENGINES, SimEngine
from repro.sim.perf_model import highest_useful_frequency, max_standalone_ips
from repro.sched.pinning import pin_apps
from repro.workloads.spec import spec_app

POLICY_REGISTRY: dict[str, type[Policy]] = {
    "priority": PriorityPolicy,
    "frequency-shares": FrequencySharesPolicy,
    "performance-shares": PerformanceSharesPolicy,
    "power-shares": PowerSharesPolicy,
    "rapl": RaplBaselinePolicy,
    "hwp-hints": HwpHintsPolicy,
}


def default_engine() -> str:
    """Session-default simulation engine.

    ``REPRO_SIM_ENGINE`` overrides the built-in ``"array"`` default so
    CI (and anyone bisecting an equivalence failure) can force the
    scalar reference path for a whole run without touching configs.
    """
    engine = os.environ.get("REPRO_SIM_ENGINE", "array")
    if engine not in ENGINES:
        raise ConfigError(
            f"REPRO_SIM_ENGINE={engine!r} is not one of {ENGINES}"
        )
    return engine


@dataclass(frozen=True)
class AppSpec:
    """One app in an experiment config: name, shares, priority."""

    benchmark: str
    shares: float = 1.0
    priority: Priority = Priority.HIGH
    steady: bool = True


@dataclass(frozen=True)
class ExperimentConfig:
    """Declarative experiment: platform + policy + apps + limit."""

    platform: str
    policy: str
    limit_w: float
    apps: tuple[AppSpec, ...]
    interval_s: float = 1.0
    tick_s: float = 1e-3
    #: cap each app at its highest *useful* frequency (paper section
    #: 4.4): memory-bound apps stop paying for clock they cannot use.
    useful_frequency_mode: bool = False
    #: named fault scenario (see :data:`repro.faults.SCENARIOS`) to
    #: inject into the daemon's view of the hardware; None runs clean.
    faults: str | None = None
    #: seed for the fault schedule (deterministic replay).
    fault_seed: int = 0
    #: simulation engine: ``"array"`` (vectorized, default) or
    #: ``"scalar"`` (per-tick reference).  Results are bit-identical by
    #: contract, so the experiment cache deliberately ignores this field
    #: (see :mod:`repro.experiments.cache`).
    engine: str = field(default_factory=default_engine)

    def __post_init__(self) -> None:
        if self.policy not in POLICY_REGISTRY:
            known = ", ".join(sorted(POLICY_REGISTRY))
            raise ConfigError(
                f"unknown policy {self.policy!r}; known: {known}"
            )
        if not self.apps:
            raise ConfigError("experiment needs at least one app")
        if self.engine not in ENGINES:
            raise ConfigError(
                f"unknown engine {self.engine!r}; expected one of {ENGINES}"
            )
        if self.faults is not None:
            get_scenario(self.faults)  # validate the name early

    def fault_scenario(self) -> FaultScenario | None:
        if self.faults is None:
            return None
        return get_scenario(self.faults, seed=self.fault_seed)


@dataclass
class ExperimentStack:
    """Everything a built experiment needs to run."""

    platform: PlatformSpec
    chip: Chip
    engine: SimEngine
    daemon: PowerDaemon
    labels: list[str] = field(default_factory=list)
    #: fault-injection plumbing, populated when the config names a
    #: scenario (None on clean runs).
    faults: FaultScenario | None = None
    fault_msr: FaultyMSRFile | None = None
    tick_gate: TickFaultGate | None = None


def build_stack(
    config: ExperimentConfig,
    *,
    resilience: ResilienceConfig | None = None,
) -> ExperimentStack:
    """Construct chip + engine + policy + daemon from a config."""
    platform = get_platform(config.platform)
    if len(config.apps) > platform.n_cores:
        raise ConfigError(
            f"{len(config.apps)} apps exceed {platform.n_cores} cores"
        )
    chip = Chip(platform, tick_s=config.tick_s)
    engine = SimEngine(chip, engine=config.engine)
    models = [
        spec_app(spec.benchmark, steady=spec.steady) for spec in config.apps
    ]
    placements = pin_apps(chip, models)
    managed = []
    for placement, spec, model in zip(placements, config.apps, models):
        max_freq = platform.effective_max_frequency_mhz(model.uses_avx)
        if config.useful_frequency_mode:
            max_freq = min(
                max_freq, highest_useful_frequency(platform, model)
            )
        managed.append(
            ManagedApp(
                label=placement.label,
                core_id=placement.core_id,
                shares=spec.shares,
                priority=spec.priority,
                max_frequency_mhz=max_freq,
                baseline_ips=max_standalone_ips(platform, model),
            )
        )
    policy_cls = POLICY_REGISTRY[config.policy]
    policy = policy_cls(platform, managed, config.limit_w)
    if isinstance(policy, HwpHintsPolicy):
        # the hint policy delegates P-state selection to an autonomous
        # HWP controller running at hardware cadence
        from repro.hw.hwp import HwpController

        hwp = HwpController(chip)
        policy.attach_hwp(hwp)
        hwp.attach(engine, period_s=0.05)
    scenario = config.fault_scenario()
    fault_msr = None
    tick_gate = None
    if scenario is not None:
        if scenario.faults_msrs:
            fault_msr = FaultyMSRFile(
                chip.msr, scenario, clock=lambda: chip.time_s
            )
        if scenario.faults_ticks:
            tick_gate = TickFaultGate(scenario)
    daemon = PowerDaemon(
        chip,
        policy,
        interval_s=config.interval_s,
        msr=fault_msr,
        resilience=resilience,
    )
    daemon.attach(engine, gate=tick_gate)
    if scenario is not None:
        schedule_app_crashes(
            engine, chip, scenario, [p.core_id for p in placements]
        )
    return ExperimentStack(
        platform=platform,
        chip=chip,
        engine=engine,
        daemon=daemon,
        labels=[p.label for p in placements],
        faults=scenario,
        fault_msr=fault_msr,
        tick_gate=tick_gate,
    )
