"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch one base class at the API boundary.  Hardware-emulation errors mirror
the failures a real driver would see (bad MSR address, write to a read-only
register, unsupported feature on a platform), which keeps the policy code
honest about what each platform actually provides.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """Invalid experiment, platform, or policy configuration."""


class PlatformError(ReproError):
    """A request is incompatible with the selected platform."""


class UnsupportedFeatureError(PlatformError):
    """The platform lacks a required hardware feature.

    Example: requesting the power-shares policy on Skylake, which has no
    per-core power telemetry (paper section 4.2).
    """


class MSRError(ReproError):
    """Base class for MSR register-file access errors."""


class MSRAddressError(MSRError):
    """Access to an MSR address that does not exist on this platform."""


class MSRIOError(MSRError):
    """Transient I/O failure of an ``rdmsr``/``wrmsr`` (the ``EIO`` a
    flaky msr-tools access returns).  Retrying may succeed; the fault
    injector (:mod:`repro.faults`) raises these to exercise the daemon's
    containment paths."""


class MSRPermissionError(MSRError):
    """Write to a read-only MSR, or write touching reserved bits."""


class FrequencyError(ReproError):
    """A frequency request outside the platform's valid range or grid."""


class SchedulerError(ReproError):
    """Invalid pinning or time-sharing request."""


class PolicyError(ReproError):
    """A policy was asked to do something inconsistent with its contract."""


class ShareError(PolicyError):
    """Invalid share specification (non-positive shares, empty set, ...)."""


class StarvationError(PolicyError):
    """Raised when a strict policy cannot admit an application at all and
    the caller requested admission be mandatory."""


class TelemetryError(ReproError):
    """Telemetry is unavailable or failed a plausibility check
    (negative power, frequency off the grid, impossible IPS)."""


class FaultConfigError(ConfigError):
    """Invalid fault-injection scenario (rates outside [0, 1], unknown
    scenario name, crash events pointing at missing apps, ...)."""


class SimulationError(ReproError):
    """Internal simulator inconsistency (negative time, unplaced app, ...)."""
