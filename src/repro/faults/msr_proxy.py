"""Fault-injecting proxy over the MSR register file.

:class:`FaultyMSRFile` sits between *software* (the daemon's cpufreq and
turbostat drivers) and the real :class:`~repro.hw.msr.MSRFile`.  It
duck-types the full register-file surface, so drivers cannot tell the
difference, and injects the failures a long-running userspace daemon
actually sees on real machines:

* transient ``rdmsr``/``wrmsr`` ``EIO`` (:class:`~repro.errors.MSRIOError`),
* stuck telemetry counters (a read repeats the previous value),
* garbage telemetry counters (a read returns random bits),
* energy-counter wrap storms (reads thrown near the 32-bit wrap point,
  so consecutive deltas wrap over and over).

The simulator-side accessors (``poke``/``advance_counter``) pass through
untouched — the fault model corrupts the software's *view*, never the
hardware's ground truth.  All injection decisions come from one seeded
RNG, so a scenario replays identically for a fixed seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.errors import MSRIOError
from repro.faults.scenario import FaultScenario
from repro.hw import msr as msrdef
from repro.hw.msr import ENERGY_COUNTER_MASK, MSRDef, MSRFile, U64_MASK

#: Counters eligible for stuck/garbage injection: the free-running
#: telemetry counters software diffs every interval.
TELEMETRY_COUNTERS = frozenset(
    {
        msrdef.IA32_APERF,
        msrdef.IA32_MPERF,
        msrdef.IA32_FIXED_CTR0,
        msrdef.MSR_PKG_ENERGY_STATUS,
        msrdef.MSR_AMD_PKG_ENERGY,
        msrdef.MSR_AMD_CORE_ENERGY,
    }
)

#: Counters subject to wrap storms (32-bit energy status registers).
ENERGY_COUNTERS = frozenset(
    {
        msrdef.MSR_PKG_ENERGY_STATUS,
        msrdef.MSR_AMD_PKG_ENERGY,
        msrdef.MSR_AMD_CORE_ENERGY,
    }
)

#: A wrap-storm read lands this far below the wrap point, so the next
#: honest read almost certainly wraps past it.
_WRAP_MARGIN = 1 << 8


@dataclass
class FaultStats:
    """Counts of injected faults, by kind (deterministic per seed)."""

    read_failures: int = 0
    write_failures: int = 0
    stuck_reads: int = 0
    garbage_reads: int = 0
    wrap_storms: int = 0

    def total(self) -> int:
        return (
            self.read_failures
            + self.write_failures
            + self.stuck_reads
            + self.garbage_reads
            + self.wrap_storms
        )


@dataclass
class _Injector:
    """Shared RNG + stats so several proxies can share one schedule."""

    scenario: FaultScenario
    rng: random.Random = field(init=False)
    stats: FaultStats = field(default_factory=FaultStats)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.scenario.seed)


class FaultyMSRFile:
    """Drop-in :class:`MSRFile` replacement with seeded fault injection.

    Wraps (does not copy) the inner file: registrations and values stay
    in the real file; only software-visible ``read``/``write`` traffic
    is corrupted.
    """

    def __init__(
        self,
        inner: MSRFile,
        scenario: FaultScenario,
        *,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._inner = inner
        self._scenario = scenario
        self._injector = _Injector(scenario)
        #: simulated-time source for windowed scenarios; None means the
        #: scenario is active for the whole run.
        self._clock = clock
        #: last value software successfully read per (cpu, address);
        #: what a "stuck" counter keeps reporting.
        self._last_read: dict[tuple[int, int], int] = {}

    def _active(self) -> bool:
        if self._scenario.window_s is None or self._clock is None:
            return True
        return self._scenario.active_at(self._clock())

    # -- pass-through surface -------------------------------------------------

    @property
    def inner(self) -> MSRFile:
        return self._inner

    @property
    def scenario(self) -> FaultScenario:
        return self._scenario

    @property
    def stats(self) -> FaultStats:
        return self._injector.stats

    @property
    def n_cpus(self) -> int:
        return self._inner.n_cpus

    def register(self, msr_def: MSRDef) -> None:
        self._inner.register(msr_def)

    def is_registered(self, address: int) -> bool:
        return self._inner.is_registered(address)

    def definition(self, address: int) -> MSRDef:
        return self._inner.definition(address)

    def poke(self, cpu: int, address: int, value: int) -> None:
        self._inner.poke(cpu, address, value)

    def advance_counter(
        self, cpu: int, address: int, delta: int, *, wrap_mask: int = U64_MASK
    ) -> None:
        self._inner.advance_counter(cpu, address, delta, wrap_mask=wrap_mask)

    # -- faulted software surface ---------------------------------------------

    def read(self, cpu: int, address: int) -> int:
        value = self._inner.read(cpu, address)  # honest address checks
        if not self._active():
            self._last_read[(cpu, address)] = value
            return value
        s = self._scenario
        inj = self._injector
        if s.msr_read_fail_rate and inj.rng.random() < s.msr_read_fail_rate:
            inj.stats.read_failures += 1
            raise MSRIOError(
                f"injected transient rdmsr failure (cpu {cpu}, "
                f"MSR 0x{address:X})"
            )
        if address in TELEMETRY_COUNTERS:
            roll = inj.rng.random()
            if roll < s.stuck_counter_rate:
                inj.stats.stuck_reads += 1
                return self._last_read.get((cpu, address), value)
            roll -= s.stuck_counter_rate
            if roll < s.garbage_counter_rate:
                inj.stats.garbage_reads += 1
                garbage = inj.rng.getrandbits(64)
                self._last_read[(cpu, address)] = garbage
                return garbage
            roll -= s.garbage_counter_rate
            if address in ENERGY_COUNTERS and roll < s.wrap_storm_rate:
                inj.stats.wrap_storms += 1
                stormed = (ENERGY_COUNTER_MASK - _WRAP_MARGIN + value) & (
                    ENERGY_COUNTER_MASK
                )
                self._last_read[(cpu, address)] = stormed
                return stormed
        self._last_read[(cpu, address)] = value
        return value

    def write(self, cpu: int, address: int, value: int) -> None:
        if not self._active():
            self._inner.write(cpu, address, value)
            return
        s = self._scenario
        inj = self._injector
        if s.msr_write_fail_rate and inj.rng.random() < s.msr_write_fail_rate:
            inj.stats.write_failures += 1
            raise MSRIOError(
                f"injected transient wrmsr failure (cpu {cpu}, "
                f"MSR 0x{address:X})"
            )
        self._inner.write(cpu, address, value)
