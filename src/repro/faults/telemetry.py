"""Telemetry-corruption fault family: nodes that report *wrong* data.

Every earlier fault family models data that goes *missing* — dropped
envelopes, dead processes, skipped ticks.  This one models data that
arrives on time, well-formed, and **false**: a stuck RAPL sensor
replaying yesterday's reading, a miscalibrated node whose gain drifts a
few percent per epoch, a greedy tenant inflating its demand to siphon
the facility budget, a flapping estimator, and NaN/garbage bursts.

A :class:`TelemetryScenario` is the declarative, seeded schedule
(mirroring :class:`~repro.faults.scenario.TransportScenario`); the
:class:`TelemetryCorruptor` applies it to the report stream inside the
cluster runtime's parent process, so serial, stacked, and fork-parallel
steppers corrupt identically and a run replays byte-for-byte.  The
defense lives on the other side of the wire in
:mod:`repro.cluster.trust`: the corruptor only ever touches what nodes
*say*, never what they *do* — ground truth (the simulated power draw)
is untouched, which is exactly what lets the chaos tests measure how
much a liar can steal.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.errors import FaultConfigError
from repro.units import is_zero

if TYPE_CHECKING:
    from repro.cluster.node import NodeEpochReport

#: seed salt so the corruption schedule is independent of the transport
#: and node fault schedules drawn from the same cluster seed.
_SEED_SALT = 0x7E1E3E7A

#: recognized per-node corruption kinds.
TELEMETRY_KINDS = ("stuck", "drift", "inflate", "flap", "garbage")

#: the absurd reading injected by non-NaN garbage, watts.
GARBAGE_POWER_W = 1.0e9


@dataclass(frozen=True)
class TelemetryFault:
    """One node's sensor or estimator lying for a window of epochs.

    ``magnitude`` is kind-specific: the per-epoch gain increment for
    ``drift`` (0.08 = +8 %/epoch), the demand multiplier for
    ``inflate``, and the peak/trough ratio for ``flap``.  ``stuck`` and
    ``garbage`` ignore it.
    """

    node: str
    kind: str
    start_epoch: int = 0
    #: first epoch the telemetry is honest again (exclusive end);
    #: None lies until the end of the run.
    end_epoch: int | None = None
    magnitude: float = 2.0

    def __post_init__(self) -> None:
        if not self.node:
            raise FaultConfigError("telemetry fault needs a node name")
        if self.kind not in TELEMETRY_KINDS:
            known = ", ".join(TELEMETRY_KINDS)
            raise FaultConfigError(
                f"unknown telemetry fault kind {self.kind!r}; "
                f"known: {known}"
            )
        if self.start_epoch < 0:
            raise FaultConfigError("fault start epoch cannot be negative")
        if self.end_epoch is not None and self.end_epoch <= self.start_epoch:
            raise FaultConfigError(
                f"telemetry window [{self.start_epoch}, {self.end_epoch}) "
                "is not a valid epoch range"
            )
        if self.magnitude <= 0:
            raise FaultConfigError("fault magnitude must be positive")

    def active_at(self, epoch: int) -> bool:
        """Whether this fault corrupts reports sent at this epoch."""
        if epoch < self.start_epoch:
            return False
        return self.end_epoch is None or epoch < self.end_epoch


@dataclass(frozen=True)
class TelemetryScenario:
    """Seeded description of one telemetry-corruption schedule.

    ``faults`` target named nodes deterministically; ``garbage_rate``
    is a per-report background probability that *any* node's reading is
    replaced by NaN or an absurd value (a fleet-wide sensor-quality
    floor, rolled from the one seeded RNG in sorted-node order).
    """

    name: str = "custom"
    seed: int = 0
    faults: tuple[TelemetryFault, ...] = ()
    garbage_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultConfigError("seed cannot be negative")
        if not 0.0 <= self.garbage_rate <= 1.0:
            raise FaultConfigError(
                f"garbage_rate must be in [0, 1], got {self.garbage_rate}"
            )

    @property
    def quiet(self) -> bool:
        """No corruption configured: every report is honest."""
        return not self.faults and is_zero(self.garbage_rate)

    def with_seed(self, seed: int) -> "TelemetryScenario":
        """The same schedule shape replayed from a different seed."""
        return dataclasses.replace(self, seed=seed)

    def node_names(self) -> tuple[str, ...]:
        """Nodes with targeted faults (the scenario's named liars)."""
        return tuple(sorted({f.node for f in self.faults}))

    def faults_for(self, node: str, epoch: int) -> tuple[TelemetryFault, ...]:
        """Active targeted faults for one node at one epoch."""
        return tuple(
            f for f in self.faults
            if f.node == node and f.active_at(epoch)
        )


#: Named telemetry scenarios, mild to severe.  All reference
#: ``node0``/``node1`` — the first nodes of every CLI-built and curated
#: cluster — and epoch numbers assume the 14-epoch evaluation runs.
#: ``liar-storm`` is the acceptance scenario: two simultaneous liars
#: plus background garbage, under which honest nodes' grants must stay
#: within 5 % of the corruption-free run.
TELEMETRY_SCENARIOS: dict[str, TelemetryScenario] = {
    "none": TelemetryScenario(name="none"),
    # the whole report freezes (epoch field included), so the arbiter
    # sees a payload that stops aging even though envelopes keep
    # arriving — the classic stuck-RAPL signature.
    "stuck-sensor": TelemetryScenario(
        name="stuck-sensor",
        faults=(TelemetryFault("node0", "stuck", start_epoch=3),),
    ),
    # a greedy tenant triples its reported draw and feigns throttling
    # to claim the whole budget; trust decay must starve it instead.
    "greedy-node": TelemetryScenario(
        name="greedy-node",
        faults=(
            TelemetryFault("node0", "inflate", start_epoch=2,
                           magnitude=3.0),
        ),
    ),
    # gain miscalibration compounding +8 %/epoch: plausible at first,
    # caught by internal consistency once power and headroom disagree.
    "drifting-gain": TelemetryScenario(
        name="drifting-gain",
        faults=(
            TelemetryFault("node0", "drift", start_epoch=2,
                           magnitude=0.08),
        ),
    ),
    # demand alternating 2x/0.5x every epoch: each report is
    # self-consistent but the swing violates rate-of-change limits.
    "flapping-demand": TelemetryScenario(
        name="flapping-demand",
        faults=(
            TelemetryFault("node0", "flap", start_epoch=2,
                           magnitude=2.0),
        ),
    ),
    # a bounded NaN burst: the validator must never let a NaN reach
    # the water-filling, and the node must recover trust after epoch 8.
    "nan-burst": TelemetryScenario(
        name="nan-burst",
        faults=(
            TelemetryFault("node0", "garbage", start_epoch=4,
                           end_epoch=8),
        ),
    ),
    # everything at once: a greedy inflator, a stuck sensor, and
    # fleet-wide background garbage.  The acceptance scenario.
    "liar-storm": TelemetryScenario(
        name="liar-storm",
        faults=(
            TelemetryFault("node0", "inflate", start_epoch=2,
                           magnitude=3.0),
            TelemetryFault("node1", "stuck", start_epoch=3),
        ),
        garbage_rate=0.02,
    ),
}


def get_telemetry_scenario(
    name: str, *, seed: int | None = None
) -> TelemetryScenario:
    """Resolve a named telemetry scenario, optionally re-seeded."""
    try:
        scenario = TELEMETRY_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(TELEMETRY_SCENARIOS))
        raise FaultConfigError(
            f"unknown telemetry scenario {name!r}; known: {known}"
        ) from None
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario


class TelemetryCorruptor:
    """Applies one scenario to the outgoing report stream.

    Runs in the cluster parent between report generation and transport
    send, so every stepper corrupts identically.  All RNG draws (the
    ``garbage_rate`` rolls) happen in sorted-node order; targeted
    faults consume no randomness at all.  State is the RNG plus the
    frozen first-seen reports of stuck sensors, both of which
    checkpoint into the journal fence via :meth:`snapshot`.
    """

    def __init__(
        self, scenario: TelemetryScenario, *, seed: int | None = None
    ):
        if seed is not None:
            scenario = scenario.with_seed(seed)
        self.scenario = scenario
        self._rng = random.Random(scenario.seed ^ _SEED_SALT)
        #: node -> the report its stuck sensor latched onto.
        self._stuck: dict[str, "NodeEpochReport"] = {}

    def corrupt(
        self, epoch: int, reports: dict[str, "NodeEpochReport"]
    ) -> dict[str, "NodeEpochReport"]:
        """The scenario's view of one epoch's honest reports.

        Returns a new dict (same key order); the inputs are never
        mutated — the runtime keeps the honest reports as ground truth
        for traces and results.
        """
        if self.scenario.quiet:
            return dict(reports)
        corrupted: dict[str, "NodeEpochReport"] = {}
        for name in sorted(reports):
            corrupted[name] = self._corrupt_one(epoch, reports[name])
        return {name: corrupted[name] for name in reports}

    def _corrupt_one(
        self, epoch: int, report: "NodeEpochReport"
    ) -> "NodeEpochReport":
        for fault in self.scenario.faults_for(report.name, epoch):
            report = self._apply(fault, epoch, report)
        if self.scenario.garbage_rate > 0:
            if self._rng.random() < self.scenario.garbage_rate:
                value = (
                    float("nan")
                    if self._rng.random() < 0.5
                    else GARBAGE_POWER_W
                )
                report = dataclasses.replace(
                    report, mean_power_w=value, headroom_w=value
                )
        return report

    def _apply(
        self, fault: TelemetryFault, epoch: int, report: "NodeEpochReport"
    ) -> "NodeEpochReport":
        if fault.kind == "stuck":
            # latch the first report seen in the window and replay it
            # verbatim (epoch field included) forever after.
            if report.name not in self._stuck:
                self._stuck[report.name] = report
            return self._stuck[report.name]
        if fault.kind == "drift":
            # compounding gain error on the power channel only; the
            # stale headroom makes the report internally inconsistent.
            gain = (1.0 + fault.magnitude) ** (
                epoch - fault.start_epoch + 1
            )
            return dataclasses.replace(
                report, mean_power_w=report.mean_power_w * gain
            )
        if fault.kind == "inflate":
            # a greedy node: inflated draw, feigned throttling, zero
            # headroom — the maximal plausible-looking demand claim.
            return dataclasses.replace(
                report,
                mean_power_w=report.mean_power_w * fault.magnitude,
                throttle_pressure=1.0,
                headroom_w=0.0,
            )
        if fault.kind == "flap":
            # alternate peak/trough by epoch parity; each report stays
            # self-consistent, but the swing trips rate-of-change.
            factor = (
                fault.magnitude
                if (epoch - fault.start_epoch) % 2 == 0
                else 1.0 / fault.magnitude
            )
            power = report.mean_power_w * factor
            return dataclasses.replace(
                report,
                mean_power_w=power,
                headroom_w=max(report.cap_w - power, 0.0),
            )
        # "garbage": a NaN burst on the targeted node.
        return dataclasses.replace(
            report,
            mean_power_w=float("nan"),
            headroom_w=float("nan"),
        )

    # -- checkpointing -----------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Checkpoint RNG and stuck-sensor latches (journal fence).

        Stuck reports are kept as live frozen dataclasses; the journal
        converts them to JSON form when dumped to disk.
        """
        return {
            "rng": self._rng.getstate(),
            "stuck": {
                name: self._stuck[name] for name in sorted(self._stuck)
            },
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore a fence checkpoint into this (same-scenario) corruptor."""
        self._rng.setstate(state["rng"])
        self._stuck = dict(state["stuck"])
