"""Deterministic fault scenarios.

A :class:`FaultScenario` is a declarative, seeded description of what
goes wrong during a run: transient MSR read/write failures, stuck or
garbage counter reads, energy-counter wrap storms, dropped or jittered
daemon ticks, and application crashes.  Everything derives from the one
seed, so a scenario replays identically — the chaos tests rely on that
to assert the daemon's health records bit-for-bit.

Named scenarios live in :data:`SCENARIOS`; the CLI's ``--faults`` flag
and :class:`~repro.config.ExperimentConfig` resolve them through
:func:`get_scenario`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import FaultConfigError
from repro.units import is_zero


@dataclass(frozen=True)
class AppCrash:
    """One application exiting (or crashing) mid-run.

    ``app_index`` refers to the position in the experiment's app list;
    the harness resolves it to a pinned core when the stack is built.
    """

    time_s: float
    app_index: int

    def __post_init__(self) -> None:
        if self.time_s <= 0:
            raise FaultConfigError("crash time must be positive")
        if self.app_index < 0:
            raise FaultConfigError("crash app index cannot be negative")


_RATE_FIELDS = (
    "msr_read_fail_rate",
    "msr_write_fail_rate",
    "stuck_counter_rate",
    "garbage_counter_rate",
    "wrap_storm_rate",
    "tick_drop_rate",
    "tick_jitter_rate",
)


@dataclass(frozen=True)
class FaultScenario:
    """Seeded description of one fault-injection schedule.

    All rates are per-opportunity probabilities in [0, 1]: the MSR rates
    per ``rdmsr``/``wrmsr`` issued by *software* (the simulator's own
    counter publishing is never faulted), the tick rates per daemon
    deadline.
    """

    name: str = "custom"
    seed: int = 0
    #: probability a software ``rdmsr`` raises a transient ``EIO``.
    msr_read_fail_rate: float = 0.0
    #: probability a software ``wrmsr`` raises a transient ``EIO``.
    msr_write_fail_rate: float = 0.0
    #: probability a telemetry-counter read returns the previous value.
    stuck_counter_rate: float = 0.0
    #: probability a telemetry-counter read returns random garbage.
    garbage_counter_rate: float = 0.0
    #: probability an energy-counter read is thrown near its 32-bit
    #: wrap point, so consecutive deltas wrap repeatedly.
    wrap_storm_rate: float = 0.0
    #: probability a daemon deadline is missed outright (no iteration).
    tick_drop_rate: float = 0.0
    #: probability a daemon deadline slips by scheduler jitter.
    tick_jitter_rate: float = 0.0
    #: maximum jitter per slipped deadline, seconds.
    tick_max_jitter_s: float = 0.0
    #: applications that exit mid-run.
    app_crashes: tuple[AppCrash, ...] = ()
    #: restrict MSR/tick faults to ``[start_s, end_s)`` of simulated
    #: time; None keeps them active for the whole run.  A bounded storm
    #: is how the chaos tests prove the daemon *recovers* (safe mode
    #: exits, quarantines lift) once the hardware calms down.
    window_s: tuple[float, float] | None = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultConfigError("seed cannot be negative")
        for field_name in _RATE_FIELDS:
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(
                    f"{field_name} must be in [0, 1], got {rate}"
                )
        if self.tick_max_jitter_s < 0:
            raise FaultConfigError("tick_max_jitter_s cannot be negative")
        # repro-lint: disable=float-equality — 0 is the untouched-config sentinel
        if self.tick_jitter_rate > 0 and self.tick_max_jitter_s == 0:
            raise FaultConfigError(
                "tick_jitter_rate needs a positive tick_max_jitter_s"
            )
        if self.window_s is not None:
            start, end = self.window_s
            if start < 0 or end <= start:
                raise FaultConfigError(
                    f"fault window [{start}, {end}) is not a valid "
                    "time range"
                )

    def active_at(self, time_s: float) -> bool:
        """Whether injected faults are live at this simulated time."""
        if self.window_s is None:
            return True
        start, end = self.window_s
        return start <= time_s < end

    @property
    def faults_msrs(self) -> bool:
        return any(
            getattr(self, f) > 0.0
            for f in _RATE_FIELDS
            if not f.startswith("tick_")
        )

    @property
    def faults_ticks(self) -> bool:
        return self.tick_drop_rate > 0.0 or self.tick_jitter_rate > 0.0

    def with_seed(self, seed: int) -> "FaultScenario":
        """The same schedule shape replayed from a different seed."""
        return dataclasses.replace(self, seed=seed)


#: Named scenarios, mild to severe.  ``full-storm`` is the acceptance
#: scenario: every fault class at once, at or above the 5 % floor the
#: chaos invariant is stated for.
SCENARIOS: dict[str, FaultScenario] = {
    "none": FaultScenario(name="none"),
    "flaky-msr": FaultScenario(
        name="flaky-msr",
        msr_read_fail_rate=0.05,
        msr_write_fail_rate=0.05,
    ),
    "garbage-telemetry": FaultScenario(
        name="garbage-telemetry",
        stuck_counter_rate=0.05,
        garbage_counter_rate=0.04,
    ),
    "wrap-storm": FaultScenario(
        name="wrap-storm",
        wrap_storm_rate=0.25,
    ),
    "tick-storm": FaultScenario(
        name="tick-storm",
        tick_drop_rate=0.20,
        tick_jitter_rate=0.30,
        tick_max_jitter_s=0.5,
    ),
    "app-crash": FaultScenario(
        name="app-crash",
        app_crashes=(AppCrash(time_s=15.0, app_index=0),),
    ),
    "full-storm": FaultScenario(
        name="full-storm",
        msr_read_fail_rate=0.06,
        msr_write_fail_rate=0.06,
        stuck_counter_rate=0.05,
        garbage_counter_rate=0.03,
        wrap_storm_rate=0.10,
        tick_drop_rate=0.08,
        tick_jitter_rate=0.15,
        tick_max_jitter_s=0.4,
        app_crashes=(AppCrash(time_s=25.0, app_index=0),),
    ),
    # full-storm intensity, but bounded in time: the daemon must
    # degrade during the storm and *recover* — exit safe mode, lift
    # quarantines, resume policy control — once it passes.
    "transient-storm": FaultScenario(
        name="transient-storm",
        msr_read_fail_rate=0.06,
        msr_write_fail_rate=0.06,
        stuck_counter_rate=0.05,
        garbage_counter_rate=0.03,
        wrap_storm_rate=0.10,
        tick_drop_rate=0.08,
        tick_jitter_rate=0.15,
        tick_max_jitter_s=0.4,
        window_s=(15.0, 45.0),
    ),
}


def get_scenario(name: str, *, seed: int | None = None) -> FaultScenario:
    """Resolve a named scenario, optionally re-seeded."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise FaultConfigError(
            f"unknown fault scenario {name!r}; known: {known}"
        ) from None
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario


# -- control-plane transport scenarios -------------------------------------------
#
# The scenarios above corrupt what one node's daemon sees; these corrupt
# what the *cluster* sees — the epoch-sequenced DemandReport / CapGrant
# envelopes between nodes and the arbiter
# (:mod:`repro.cluster.transport`).  All rates are per-envelope
# probabilities; delays and partitions are measured in arbitration
# epochs, the control plane's native clock, so a scenario replays
# identically at any epoch length.


@dataclass(frozen=True)
class LinkPartition:
    """One node↔arbiter link severed for a window of epochs.

    ``node=None`` severs *every* link — the arbiter itself dropping off
    the network.  Both directions die: reports out and grants in.
    """

    start_epoch: int
    #: first epoch the link is back (exclusive end).
    end_epoch: int
    node: str | None = None

    def __post_init__(self) -> None:
        if self.start_epoch < 0:
            raise FaultConfigError("partition start epoch is negative")
        if self.end_epoch <= self.start_epoch:
            raise FaultConfigError(
                f"partition [{self.start_epoch}, {self.end_epoch}) is "
                "not a valid epoch range"
            )

    def severs(self, node: str, epoch: int) -> bool:
        if self.node is not None and self.node != node:
            return False
        return self.start_epoch <= epoch < self.end_epoch


_TRANSPORT_RATE_FIELDS = (
    "drop_rate",
    "dup_rate",
    "delay_rate",
    "reorder_rate",
)


@dataclass(frozen=True)
class TransportScenario:
    """Seeded description of one control-plane fault schedule."""

    name: str = "custom"
    seed: int = 0
    #: probability an envelope is lost in flight.
    drop_rate: float = 0.0
    #: probability an envelope is delivered twice.
    dup_rate: float = 0.0
    #: probability an envelope is delayed by 1..max_delay_epochs epochs.
    delay_rate: float = 0.0
    max_delay_epochs: int = 0
    #: probability one endpoint's per-epoch delivery batch arrives
    #: shuffled instead of in send order.
    reorder_rate: float = 0.0
    #: named node↔arbiter partitions (epoch windows, both directions).
    partitions: tuple[LinkPartition, ...] = ()

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise FaultConfigError("seed cannot be negative")
        for field_name in _TRANSPORT_RATE_FIELDS:
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise FaultConfigError(
                    f"{field_name} must be in [0, 1], got {rate}"
                )
        if self.max_delay_epochs < 0:
            raise FaultConfigError("max_delay_epochs cannot be negative")
        if self.delay_rate > 0 and self.max_delay_epochs == 0:
            raise FaultConfigError(
                "delay_rate needs a positive max_delay_epochs"
            )

    @property
    def quiet(self) -> bool:
        """No faults configured: the transport is a perfect wire."""
        return (
            all(is_zero(getattr(self, f)) for f in _TRANSPORT_RATE_FIELDS)
            and not self.partitions
        )

    def partitioned(self, node: str, epoch: int) -> bool:
        """Whether this node's link to the arbiter is severed now."""
        return any(p.severs(node, epoch) for p in self.partitions)

    def with_seed(self, seed: int) -> "TransportScenario":
        """The same schedule shape replayed from a different seed."""
        return dataclasses.replace(self, seed=seed)


#: Named control-plane scenarios, mild to severe.  Partition windows
#: reference ``node0`` — the first node of every CLI-built and curated
#: cluster — and are bounded so recovery is exercised, not just decay.
TRANSPORT_SCENARIOS: dict[str, TransportScenario] = {
    "none": TransportScenario(name="none"),
    "lossy-links": TransportScenario(
        name="lossy-links",
        drop_rate=0.15,
        dup_rate=0.05,
    ),
    "slow-links": TransportScenario(
        name="slow-links",
        delay_rate=0.35,
        max_delay_epochs=2,
        reorder_rate=0.25,
    ),
    "flaky-links": TransportScenario(
        name="flaky-links",
        drop_rate=0.10,
        dup_rate=0.05,
        delay_rate=0.20,
        max_delay_epochs=2,
        reorder_rate=0.20,
    ),
    # one node cut off for five epochs: long enough to walk the whole
    # lease ladder (holdover → degraded → safe) at the default TTL,
    # bounded so re-admission after the heal is exercised too.
    "node0-partition": TransportScenario(
        name="node0-partition",
        partitions=(LinkPartition(4, 9, "node0"),),
    ),
    # the arbiter drops off the network: every node must ride its lease
    # down to the local RAPL backstop and climb back after the heal.
    "arbiter-partition": TransportScenario(
        name="arbiter-partition",
        partitions=(LinkPartition(5, 8, None),),
    ),
    # everything at once: lossy, slow, reordered links plus a bounded
    # partition of node0.  The acceptance scenario for the cap-sum
    # invariant under control-plane chaos.
    "transport-storm": TransportScenario(
        name="transport-storm",
        drop_rate=0.12,
        dup_rate=0.06,
        delay_rate=0.15,
        max_delay_epochs=2,
        reorder_rate=0.20,
        partitions=(LinkPartition(6, 10, "node0"),),
    ),
}


def get_transport_scenario(
    name: str, *, seed: int | None = None
) -> TransportScenario:
    """Resolve a named transport scenario, optionally re-seeded."""
    try:
        scenario = TRANSPORT_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSPORT_SCENARIOS))
        raise FaultConfigError(
            f"unknown transport scenario {name!r}; known: {known}"
        ) from None
    if seed is not None:
        scenario = scenario.with_seed(seed)
    return scenario


# -- control-plane crash scenarios ------------------------------------------------
#
# The transport scenarios above corrupt messages in flight; these kill
# the *processes* at either end of the link.  Crashes are scheduled at
# epoch granularity (the control plane's native clock) and every
# recovery decision rolls in the ClusterSim parent, so a crashed run
# replays byte-identically — including across the write-ahead journal
# (:mod:`repro.cluster.journal`) the recoveries redo from.


@dataclass(frozen=True)
class NodeRestart:
    """One node crashing at an epoch boundary and rebooting later.

    The node is down for epochs ``[crash_epoch, restart_epoch)``: it is
    not stepped, sends nothing, and receives nothing.  At
    ``restart_epoch`` it boots into SAFE with its RAPL backstop
    latched, presents its last fenced epoch, and re-enters through the
    lease ladder.
    """

    node: str
    crash_epoch: int
    restart_epoch: int

    def __post_init__(self) -> None:
        if not self.node:
            raise FaultConfigError("node restart needs a node name")
        if self.crash_epoch < 0:
            raise FaultConfigError("crash epoch cannot be negative")
        if self.restart_epoch <= self.crash_epoch:
            raise FaultConfigError(
                f"restart epoch {self.restart_epoch} is not after crash "
                f"epoch {self.crash_epoch}"
            )

    def down_in(self, epoch: int) -> bool:
        return self.crash_epoch <= epoch < self.restart_epoch


@dataclass(frozen=True)
class CrashScenario:
    """Declarative schedule of control-plane process crashes.

    ``arbiter_crash_epochs`` kill the arbiter mid-epoch — after its
    decision hits the journal, before any grant leaves — forcing a
    write-ahead redo.  ``node_restarts`` take nodes down for whole
    epochs.  ``transport`` optionally names a companion transport
    scenario so a crash-during-partition drill is self-contained (it
    applies only when the cluster config sets no transport of its own).
    """

    name: str = "custom"
    description: str = ""
    arbiter_crash_epochs: tuple[int, ...] = ()
    node_restarts: tuple[NodeRestart, ...] = ()
    transport: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise FaultConfigError("crash scenario needs a name")
        for epoch in self.arbiter_crash_epochs:
            if epoch < 0:
                raise FaultConfigError(
                    "arbiter crash epoch cannot be negative"
                )
        if len(set(self.arbiter_crash_epochs)) != len(
            self.arbiter_crash_epochs
        ):
            raise FaultConfigError("duplicate arbiter crash epochs")
        windows: dict[str, list[NodeRestart]] = {}
        for restart in self.node_restarts:
            windows.setdefault(restart.node, []).append(restart)
        for node, restarts in windows.items():
            restarts.sort(key=lambda r: r.crash_epoch)
            for earlier, later in zip(restarts, restarts[1:]):
                if later.crash_epoch < earlier.restart_epoch:
                    raise FaultConfigError(
                        f"node {node}: overlapping restart windows "
                        f"[{earlier.crash_epoch}, {earlier.restart_epoch}) "
                        f"and [{later.crash_epoch}, {later.restart_epoch})"
                    )
        if self.transport is not None:
            get_transport_scenario(self.transport)  # validate early

    @property
    def quiet(self) -> bool:
        """No crashes scheduled: the control plane never dies."""
        return not self.arbiter_crash_epochs and not self.node_restarts

    def node_names(self) -> tuple[str, ...]:
        return tuple(sorted({r.node for r in self.node_restarts}))


#: Named crash scenarios.  Epoch numbers assume the curated 14-epoch
#: evaluation runs (140 s at the default 10 s epoch); all reference
#: ``node0``/``node1``, the first nodes of every CLI-built cluster.
CRASH_SCENARIOS: dict[str, CrashScenario] = {
    "none": CrashScenario(
        name="none",
        description="clean control plane: no process crashes injected",
    ),
    # the write-ahead property: the decision was journaled before the
    # crash, so the redo resends the identical grants and the run is
    # byte-identical to one that never crashed.
    "arbiter-crash": CrashScenario(
        name="arbiter-crash",
        description="arbiter dies mid-epoch 5 after journaling its "
                    "decision and redoes the epoch from the journal",
        arbiter_crash_epochs=(5,),
    ),
    "node-restart": CrashScenario(
        name="node-restart",
        description="node0 is down epochs 4-6 and reboots at 7: boots "
                    "SAFE, re-admitted through the lease ladder",
        node_restarts=(NodeRestart("node0", 4, 7),),
    ),
    # the reboot lands *inside* the partition window [4, 9): the node
    # must sit at its RAPL backstop until the heal, then re-enter.
    "crash-in-partition": CrashScenario(
        name="crash-in-partition",
        description="node0 crashes at 5 and reboots at 7 inside its "
                    "partition (epochs 4-9): SAFE until the heal",
        node_restarts=(NodeRestart("node0", 5, 7),),
        transport="node0-partition",
    ),
    "restart-storm": CrashScenario(
        name="restart-storm",
        description="arbiter redo at epochs 4 and 8 plus staggered "
                    "node0/node1 reboots: every recovery path at once",
        arbiter_crash_epochs=(4, 8),
        node_restarts=(
            NodeRestart("node0", 3, 5),
            NodeRestart("node1", 6, 8),
        ),
    ),
}


def get_crash_scenario(name: str) -> CrashScenario:
    """Resolve a named crash scenario."""
    try:
        return CRASH_SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(CRASH_SCENARIOS))
        raise FaultConfigError(
            f"unknown crash scenario {name!r}; known: {known}"
        ) from None
