"""Deterministic fault injection for the power-delivery substrate.

The daemon the paper builds is a long-running control loop; this package
makes its failure modes first-class so the chaos suite can prove the
invariant that matters — package power stays at or below the operator
limit under *any* injected fault schedule:

* :mod:`repro.faults.scenario` — seeded, declarative fault schedules
  (node-local and control-plane transport alike),
* :mod:`repro.faults.telemetry` — telemetry corruption (stuck sensors,
  drift, demand inflation, flapping, NaN bursts) on the report stream,
* :mod:`repro.faults.msr_proxy` — MSR read/write fault injection,
* :mod:`repro.faults.ticks` — dropped/jittered daemon deadlines,
* :mod:`repro.faults.harness` — stack wiring + health reporting.
"""

from repro.faults.harness import health_summary, schedule_app_crashes
from repro.faults.msr_proxy import FaultStats, FaultyMSRFile
from repro.faults.scenario import (
    CRASH_SCENARIOS,
    SCENARIOS,
    TRANSPORT_SCENARIOS,
    AppCrash,
    CrashScenario,
    FaultScenario,
    LinkPartition,
    NodeRestart,
    TransportScenario,
    get_crash_scenario,
    get_scenario,
    get_transport_scenario,
)
from repro.faults.telemetry import (
    TELEMETRY_SCENARIOS,
    TelemetryCorruptor,
    TelemetryFault,
    TelemetryScenario,
    get_telemetry_scenario,
)
from repro.faults.ticks import TickFaultGate, TickFaultStats

__all__ = [
    "AppCrash",
    "CRASH_SCENARIOS",
    "CrashScenario",
    "FaultScenario",
    "FaultStats",
    "FaultyMSRFile",
    "LinkPartition",
    "NodeRestart",
    "SCENARIOS",
    "TELEMETRY_SCENARIOS",
    "TRANSPORT_SCENARIOS",
    "TelemetryCorruptor",
    "TelemetryFault",
    "TelemetryScenario",
    "TickFaultGate",
    "TickFaultStats",
    "TransportScenario",
    "get_crash_scenario",
    "get_scenario",
    "get_telemetry_scenario",
    "get_transport_scenario",
    "health_summary",
    "schedule_app_crashes",
]
