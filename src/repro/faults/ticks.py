"""Scheduling faults for the daemon's monitoring loop.

A real daemon's 1 Hz loop misses deadlines: the process gets preempted,
the machine stalls in firmware (SMIs), ``sleep(1)`` oversleeps.
:class:`TickFaultGate` plugs into :meth:`repro.sim.engine.SimEngine.every`
as the ``gate`` hook and converts a seeded schedule into the engine's
gate protocol — fire, drop, or defer by jitter seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.faults.scenario import FaultScenario
from repro.sim.engine import GateResult


@dataclass
class TickFaultStats:
    """Counts of scheduling faults injected (deterministic per seed)."""

    fired: int = 0
    dropped: int = 0
    jittered: int = 0


class TickFaultGate:
    """Seeded drop/jitter gate for one periodic callback."""

    #: seed salt so the tick schedule is independent of the MSR fault
    #: stream drawn from the same scenario seed.
    _SEED_SALT = 0x5EED71C5

    def __init__(self, scenario: FaultScenario):
        self.scenario = scenario
        self._rng = random.Random(scenario.seed ^ self._SEED_SALT)
        self.stats = TickFaultStats()

    def __call__(self, now_s: float) -> GateResult:
        s = self.scenario
        if not s.active_at(now_s):
            self.stats.fired += 1
            return "fire"
        roll = self._rng.random()
        if roll < s.tick_drop_rate:
            self.stats.dropped += 1
            return "drop"
        roll -= s.tick_drop_rate
        if roll < s.tick_jitter_rate:
            self.stats.jittered += 1
            return self._rng.uniform(0.0, s.tick_max_jitter_s)
        self.stats.fired += 1
        return "fire"
