"""Wiring fault scenarios into a built experiment stack.

The stack builder (:func:`repro.config.build_stack`) threads a
:class:`~repro.faults.scenario.FaultScenario` through three insertion
points:

* the daemon's MSR handle is replaced by a
  :class:`~repro.faults.msr_proxy.FaultyMSRFile`,
* the daemon's periodic registration gets a
  :class:`~repro.faults.ticks.TickFaultGate`, and
* application crashes become one-shot engine events that drop the
  victim core to the idle load (:func:`schedule_app_crashes`).

:func:`health_summary` condenses a chaos run's health records into the
flat dict the CLI and the smoke script report.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import FaultConfigError
from repro.faults.scenario import FaultScenario
from repro.sim.chip import Chip
from repro.sim.core import IdleLoad
from repro.sim.engine import SimEngine

if TYPE_CHECKING:  # circular-import guard (daemon imports nothing from us)
    from repro.core.daemon import DaemonSample


def schedule_app_crashes(
    engine: SimEngine,
    chip: Chip,
    scenario: FaultScenario,
    core_of_app: Sequence[int],
) -> None:
    """Register the scenario's app crashes as one-shot engine events.

    ``core_of_app`` maps app index (scenario order = experiment app
    order) to the pinned core.  A crash replaces the core's load with
    the idle load — the process exited; the daemon keeps managing the
    now-idle app, which is exactly what a real daemon would see.
    """
    for crash in scenario.app_crashes:
        if crash.app_index >= len(core_of_app):
            raise FaultConfigError(
                f"crash at {crash.time_s}s targets app index "
                f"{crash.app_index}, but only {len(core_of_app)} apps run"
            )
        core_id = core_of_app[crash.app_index]

        def _crash(now_s: float, cid: int = core_id) -> None:
            chip.assign_load(cid, IdleLoad())

        engine.at(crash.time_s, _crash)


def health_summary(history: Iterable["DaemonSample"]) -> dict[str, object]:
    """Aggregate per-iteration health records over a run."""
    iterations = 0
    telemetry_failures = 0
    holdovers = 0
    retries = 0
    failed_writes = 0
    safe_iterations = 0
    max_consecutive_failures = 0
    quarantined: set[int] = set()
    final = None
    for sample in history:
        health = sample.health
        iterations += 1
        telemetry_failures += 0 if health.telemetry_ok else 1
        holdovers += 1 if health.holdover else 0
        retries += health.retries
        failed_writes += health.failed_writes
        safe_iterations += 1 if health.mode == "safe" else 0
        max_consecutive_failures = max(
            max_consecutive_failures, health.consecutive_failures
        )
        quarantined.update(health.quarantined)
        final = health
    return {
        "iterations": iterations,
        "telemetry_failures": telemetry_failures,
        "holdovers": holdovers,
        "write_retries": retries,
        "failed_writes": failed_writes,
        "safe_iterations": safe_iterations,
        "safe_mode_entries": final.safe_mode_entries if final else 0,
        "contained_errors": final.contained_errors if final else 0,
        "max_consecutive_failures": max_consecutive_failures,
        "cores_ever_quarantined": tuple(sorted(quarantined)),
        "final_mode": final.mode if final else "normal",
    }
