"""Min-funding revocation distribution (paper section 5.2).

When the daemon has excess (or deficit) of a resource to spread across
applications, it distributes proportionally to shares but respects each
application's saturation bounds: an app already at its maximum cannot
usefully absorb more, one at its minimum cannot give up more.  Following
Waldspurger's min-funding revocation [54], saturated apps are removed
from the mix and the distribution re-runs over the remaining resource
and remaining apps until everything is placed or everyone saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ShareError


@dataclass(frozen=True)
class Claim:
    """One app's stake in a distribution round.

    ``current`` is its present allocation of the resource; ``lo``/``hi``
    bound what the allocation may become.
    """

    label: str
    shares: float
    current: float
    lo: float
    hi: float

    def __post_init__(self) -> None:
        if self.shares <= 0:
            raise ShareError(f"{self.label}: shares must be positive")
        if self.lo > self.hi:
            raise ShareError(
                f"{self.label}: empty allocation range [{self.lo}, {self.hi}]"
            )


def distribute_min_funding(
    delta: float, claims: list[Claim], *, tolerance: float = 1e-9
) -> dict[str, float]:
    """Spread ``delta`` (positive or negative) across claims by shares.

    Returns the new allocation per label.  Guarantees:

    * every allocation stays within its ``[lo, hi]`` bounds,
    * the total distributed equals ``delta`` unless every claim
      saturates, in which case as much as possible is placed,
    * allocation is share-proportional among claims that never saturate.

    The loop terminates because each round either places the full
    remainder or permanently saturates at least one claim.
    """
    allocations = {c.label: c.current for c in claims}
    if not claims:
        return allocations
    remaining = delta
    open_claims = list(claims)
    while abs(remaining) > tolerance and open_claims:
        total_shares = sum(c.shares for c in open_claims)
        placed = 0.0
        still_open: list[Claim] = []
        for claim in open_claims:
            want = remaining * claim.shares / total_shares
            target = allocations[claim.label] + want
            clipped = min(max(target, claim.lo), claim.hi)
            placed += clipped - allocations[claim.label]
            allocations[claim.label] = clipped
            saturated = (
                (remaining > 0 and clipped >= claim.hi - tolerance)
                or (remaining < 0 and clipped <= claim.lo + tolerance)
            )
            if not saturated:
                still_open.append(claim)
        remaining -= placed
        if not still_open:
            break
        # If nothing moved this round (everyone clipped to where they
        # already were) we cannot make progress.
        if abs(placed) <= tolerance and len(still_open) == len(open_claims):
            break
        open_claims = still_open
    return allocations


def proportional_targets(
    total: float, claims: list[Claim]
) -> dict[str, float]:
    """Share-proportional split of an absolute ``total`` with bounds.

    Exact water-filling: find the common *funding level* L such that
    every claim gets ``clamp(L * shares, lo, hi)`` and the clamped
    allocations sum to ``total``.  All claims strictly inside their
    bounds therefore sit at the same allocation-per-share — the
    proportional-fairness invariant.  (A naive iterative "split the
    remainder over open claims" breaks it: a claim raised to its floor
    in one round would also share later rounds' remainders.)

    Infeasible totals degrade gracefully: below the sum of floors every
    claim gets its floor (the paper's no-starvation rule over-commits
    rather than starving); above the sum of ceilings everyone gets hi.
    """
    if not claims:
        return {}
    floor_sum = sum(c.lo for c in claims)
    ceil_sum = sum(c.hi for c in claims)
    if total <= floor_sum:
        return {c.label: c.lo for c in claims}
    if total >= ceil_sum:
        return {c.label: c.hi for c in claims}

    def placed(level: float) -> float:
        return sum(
            min(max(level * c.shares, c.lo), c.hi) for c in claims
        )

    lo_level = 0.0
    hi_level = max(c.hi / c.shares for c in claims)
    for _ in range(80):  # ~1e-24 relative precision, overkill but cheap
        mid = (lo_level + hi_level) / 2
        if placed(mid) < total:
            lo_level = mid
        else:
            hi_level = mid
    level = (lo_level + hi_level) / 2
    return {
        c.label: min(max(level * c.shares, c.lo), c.hi) for c in claims
    }


def pool_bounds(claims: list[Claim]) -> tuple[float, float]:
    """Feasible range of the allocation pool: sum of floors to sum of
    ceilings."""
    return (sum(c.lo for c in claims), sum(c.hi for c in claims))


def refill_pool(pool_total: float, claims: list[Claim]) -> dict[str, float]:
    """Redistribution step: re-split an explicit ``pool_total``
    share-proportionally within bounds.

    This is the revocation direction done right: when the pool shrinks,
    allocations above their share-proportional entitlement (windfalls an
    app received because others were saturated) are revoked *first*;
    when it grows, under-entitled apps catch up first.  A plain
    "spread the delta by shares" would instead take the most from the
    highest-share app — the exact inversion of what proportional
    fairness wants under contraction.

    The caller owns the pool level (``pool += delta`` each iteration)
    rather than re-deriving it from the clamped allocations: floors can
    hold Σ(allocations) above the pool, and summing clamped values back
    would deadlock the controller above the power limit.
    """
    return proportional_targets(pool_total, claims)
