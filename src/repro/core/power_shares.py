"""Power shares (paper sections 4.2 and 5.2).

Applications draw power proportionally to their shares.  Conceptually the
simplest — the managed resource *is* the limited resource — but it needs
per-application power feedback, which only the Ryzen platform provides
(its per-core energy MSRs), so the paper runs this policy on Ryzen only.
We enforce the same restriction through the platform feature flag.

Control loop:

* the *initial distribution* splits the core power budget (limit minus
  the uncore estimate) by share ratio into per-app power limits,
* the *redistribution function* spreads the difference between measured
  total power and the limit over non-saturated apps (min-funding
  revocation), updating the per-app power limits,
* the *translation function* uses a simple linear power->frequency model
  for the first guess and thereafter corrects each core's frequency from
  its measured power error — "since we dynamically adjust the values
  later, modeling errors do not affect steady state behavior".

The paper's key negative result — power shares give the worst
performance isolation (Fig 10) — emerges naturally: equal power to a
high-demand and a low-demand app yields very different frequencies and
hence very different performance.
"""

from __future__ import annotations

from repro.core.minfund import Claim, pool_bounds, proportional_targets, refill_pool
from repro.core.policy import Policy, PolicyConfig
from repro.core.types import ManagedApp, PolicyDecision, PolicyInputs
from repro.hw.platform import PlatformSpec
from repro.units import clamp


class PowerSharesPolicy(Policy):
    """Proportional shares of per-application power draw."""

    name = "power-shares"
    requires_per_core_energy = True

    #: bounds of the linear power model per core, watts.  Crude by
    #: design (see module docstring); feedback corrects the error.
    model_min_w = 0.5
    model_max_w = 12.0
    #: translation gain: MHz of frequency correction per watt of
    #: per-core power error per iteration.
    gain_mhz_per_w = 220.0

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
    ):
        super().__init__(platform, apps, limit_w, config)
        self._power_limits: dict[str, float] = {}
        self._freq_targets: dict[str, float] = {}
        self._pool_w = 0.0

    # -- helpers ---------------------------------------------------------------

    @property
    def core_budget_w(self) -> float:
        """Power available to cores after the uncore estimate."""
        return max(self.limit_w - self.config.uncore_estimate_w, 1.0)

    def _power_claims(self) -> list[Claim]:
        return [
            Claim(
                label=app.label,
                shares=app.shares,
                current=self._power_limits.get(app.label, 0.0),
                lo=self.model_min_w,
                hi=self.model_max_w,
            )
            for app in self.apps
        ]

    def _linear_model_freq(self, power_w: float) -> float:
        """First-guess linear conversion of a power level to frequency."""
        span_w = self.model_max_w - self.model_min_w
        fraction = (power_w - self.model_min_w) / span_w
        span_f = self.platform.max_frequency_mhz - self.min_frequency
        return self.min_frequency + clamp(fraction, 0.0, 1.0) * span_f

    # -- the three functions -----------------------------------------------------

    def initial_distribution(self) -> PolicyDecision:
        self._power_limits = proportional_targets(
            self.core_budget_w, self._power_claims()
        )
        self._pool_w = sum(self._power_limits.values())
        targets = {}
        for app in self.apps:
            freq = self._linear_model_freq(self._power_limits[app.label])
            targets[app.label] = clamp(
                freq, self.min_frequency, self.achievable_max_frequency(app)
            )
        self._freq_targets = dict(targets)
        return PolicyDecision(targets=targets)

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        # global step: keep the sum of per-app limits tracking the budget
        error_w = self.scaled_step(inputs.power_error_w)
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        if error_w != 0.0:
            claims = self._power_claims()
            lo, hi = pool_bounds(claims)
            self._pool_w = min(max(self._pool_w + error_w, lo), hi)
            self._power_limits = refill_pool(self._pool_w, claims)
        # local step: steer each core's frequency toward its power limit
        targets = {}
        for app in self.apps:
            telemetry = inputs.telemetry(app.label)
            measured_w = telemetry.power_w
            assert measured_w is not None  # guaranteed by feature check
            local_error = self._power_limits[app.label] - measured_w
            freq = self._freq_targets[app.label] + (
                self.gain_mhz_per_w * local_error
            )
            targets[app.label] = clamp(
                freq, self.min_frequency, self.achievable_max_frequency(app)
            )
        self._freq_targets = dict(targets)
        return PolicyDecision(targets=targets)
