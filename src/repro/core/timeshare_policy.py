"""Single-core sharing policy (paper section 4.3).

When applications time share one core, DVFS alone cannot differentiate
them — the core has a single frequency — so the policy plans *both* the
core frequency and the per-app CPU shares.  The paper enumerates three
cases by the apps' demands, shares, and priorities; :func:`plan_single_core`
implements that case analysis and returns a :class:`SingleCorePlan` that
the caller applies to a :class:`~repro.sched.timeshare.TimeSharedCoreLoad`
and the core's frequency.

Case summary (quoting the paper's structure):

1. *Equal demands* — power is similar whichever app runs; set the core
   to the highest P-state that keeps either app within the power limit.
2. *Mixed demands, equal shares, same priorities* — a power limit forces
   a frequency that throttles the low-demand app unnecessarily; CPU
   shares are adjusted to give the low-demand app more runtime as
   compensation.
3. *Mixed demands, mixed shares, mixed priorities* — run the
   high-priority app at the highest level possible within the limit.
   An HDHP app drags the LDLP app to its (slower) frequency; an LDHP
   app runs at maximum frequency and an HDLP app that would exceed the
   limit is not scheduled at all.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.core.types import Priority
from repro.hw.platform import PlatformSpec
from repro.units import clamp


@dataclass(frozen=True)
class SingleCoreApp:
    """One time-shared app as the planner sees it."""

    label: str
    #: relative power demand at a fixed frequency (the HD/LD axis);
    #: comparable to :attr:`repro.workloads.app.AppModel.c_eff`.
    demand: float
    shares: float
    priority: Priority
    #: estimated core power at maximum frequency, watts.
    power_at_max_w: float

    def __post_init__(self) -> None:
        if self.demand <= 0 or self.shares <= 0 or self.power_at_max_w <= 0:
            raise ConfigError(f"{self.label}: bad single-core app spec")


@dataclass(frozen=True)
class SingleCorePlan:
    """Planned core frequency and CPU-share split."""

    frequency_mhz: float
    cpu_shares: dict[str, float]
    #: labels excluded from the core entirely (case 3: HDLP app that
    #: would exceed the limit while an LDHP app needs max frequency).
    excluded: tuple[str, ...] = ()
    case: str = ""


def _freq_for_power(
    platform: PlatformSpec, power_at_max_w: float, budget_w: float
) -> float:
    """Invert the quadratic-ish power curve for one core.

    Planning estimate only (feedback corrects at runtime): assumes
    ``P ∝ f^2`` over the DVFS range, which sits between the linear and
    cubic extremes of real scaling.
    """
    f_max = platform.max_frequency_mhz
    if budget_w >= power_at_max_w:
        return f_max
    fraction = max(budget_w / power_at_max_w, 0.0) ** 0.5
    return clamp(fraction * f_max, platform.min_frequency_mhz, f_max)


def plan_single_core(
    platform: PlatformSpec,
    apps: list[SingleCoreApp],
    core_power_budget_w: float,
    *,
    demand_spread_threshold: float = 1.25,
) -> SingleCorePlan:
    """Plan frequency + CPU shares for apps time sharing one core."""
    if len(apps) < 2:
        raise ConfigError("single-core sharing needs at least two apps")
    if core_power_budget_w <= 0:
        raise ConfigError("power budget must be positive")
    demands = [a.demand for a in apps]
    mixed_demand = max(demands) / min(demands) >= demand_spread_threshold
    equal_shares = len({a.shares for a in apps}) == 1
    priorities = {a.priority for a in apps}
    mixed_priority = len(priorities) > 1

    quantize = platform.pstates.quantize

    if not mixed_demand:
        # Case 1: power is similar for all apps; highest P-state that
        # keeps the hungriest app inside the limit.
        budget_freq = min(
            _freq_for_power(platform, a.power_at_max_w, core_power_budget_w)
            for a in apps
        )
        return SingleCorePlan(
            frequency_mhz=quantize(budget_freq).frequency_mhz,
            cpu_shares={a.label: a.shares for a in apps},
            case="equal-demand",
        )

    if not mixed_priority:
        # Case 2: mixed demand, same priority.  Frequency set for the
        # high-demand app; low-demand apps get extra runtime shares to
        # compensate for throttling they did not cause.
        hungriest = max(apps, key=lambda a: a.demand)
        freq = _freq_for_power(
            platform, hungriest.power_at_max_w, core_power_budget_w
        )
        freq_q = quantize(freq).frequency_mhz
        throttle = freq_q / platform.max_frequency_mhz
        shares = {}
        for app in apps:
            if equal_shares and app is not hungriest:
                # boost runtime in proportion to the throttling depth
                shares[app.label] = app.shares / max(throttle, 1e-3)
            else:
                shares[app.label] = app.shares
        return SingleCorePlan(
            frequency_mhz=freq_q,
            cpu_shares=shares,
            case="mixed-demand-equal-priority",
        )

    # Case 3: mixed demand, mixed priority.
    hp_apps = [a for a in apps if a.priority is Priority.HIGH]
    lp_apps = [a for a in apps if a.priority is Priority.LOW]
    hp_hungriest = max(hp_apps, key=lambda a: a.demand)
    hp_freq = _freq_for_power(
        platform, hp_hungriest.power_at_max_w, core_power_budget_w
    )
    hp_freq_q = quantize(hp_freq).frequency_mhz
    excluded: list[str] = []
    if hp_freq_q >= platform.max_nominal_frequency_mhz - 1e-6:
        # LDHP scenario: the core runs flat out for the HP app; any
        # HDLP app whose draw at that frequency would bust the budget
        # does not run at all.
        for app in lp_apps:
            if app.power_at_max_w > core_power_budget_w:
                excluded.append(app.label)
    shares = {
        a.label: a.shares for a in apps if a.label not in excluded
    }
    return SingleCorePlan(
        frequency_mhz=hp_freq_q,
        cpu_shares=shares,
        excluded=tuple(excluded),
        case="mixed-demand-mixed-priority",
    )
