"""Strict two-level priority policy (paper sections 4.1 and 5.1).

High-priority (HP) applications run at the maximum P-state sustainable
under the power limit; low-priority (LP) applications are started at the
slowest P-state only if that leaves HP performance intact, then soak up
residual power.  When there is not enough residual power to start *all*
LP applications at the minimum P-state, they starve: the paper's
implementation parks them (deep C-state), which can hand the freed
thermal/power headroom to HP cores as opportunistic turbo — the effect
behind Fig 7's "HP faster at 40 W than at 85 W" result.

The loop is a small state machine:

* ``HP_CONVERGE`` — LP parked; a shared HP frequency level climbs (or
  falls) via the alpha model until package power settles at the limit.
* ``TRIAL`` — LP admitted at minimum frequency, HP pinned at its
  converged level; a couple of iterations measure the true cost.
* ``ADMITTED`` — trial fit under the limit: LP stay, and redistribution
  gives them residual power (taking it back from LP *first* when over).
* ``STARVED`` — trial exceeded the limit: LP parked again.  The paper
  makes exactly this choice ("in our implementation we starve the LP
  applications") rather than dragging HP down to fit LP in.  Retries
  happen periodically and whenever the active-app set changes.

Frequencies that triggered a limit violation are temporarily blacklisted
so the controller does not dither across the turbo voltage cliff (one
P-state bin can be worth ~10 W across all cores).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.minfund import Claim, distribute_min_funding
from repro.core.policy import Policy, PolicyConfig
from repro.core.types import (
    ManagedApp,
    PolicyDecision,
    PolicyInputs,
    Priority,
)
from repro.hw.platform import PlatformSpec
from repro.units import clamp


class _State(enum.Enum):
    HP_CONVERGE = "hp-converge"
    TRIAL = "trial"
    ADMITTED = "admitted"
    STARVED = "starved"


@dataclass(frozen=True)
class PriorityConfig:
    """Tunables specific to the priority state machine."""

    #: iterations of in-deadband power before HP is considered converged.
    stable_iterations: int = 2
    #: iterations a trial runs before the admit/starve verdict.
    trial_iterations: int = 2
    #: tolerance above the limit still counted as fitting, watts.
    trial_tolerance_w: float = 0.5
    #: iterations between starvation retries.
    retry_interval: int = 25
    #: iterations a violating frequency stays blacklisted.
    blacklist_iterations: int = 20
    #: the alternative admission order of paper section 4.1: "first
    #: allocate the minimum required power to all cores to execute
    #: before allocating additional power for high-priority application
    #: to run at maximum performance".  LP apps are admitted at the
    #: minimum P-state from the start and never starved; HP apps take
    #: whatever the residual allows — trading the opportunistic HP boost
    #: for LP liveness.
    floor_first: bool = False


class PriorityPolicy(Policy):
    """Strict priorities: HP first, LP from residual power, else starved."""

    name = "priority"

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
        priority_config: PriorityConfig | None = None,
    ):
        super().__init__(platform, apps, limit_w, config)
        self.pconfig = priority_config or PriorityConfig()
        hp = [a for a in apps if a.priority is Priority.HIGH]
        lp = [a for a in apps if a.priority is Priority.LOW]
        if not hp:
            # equal-priority devolves to equal shares (paper section 4.1);
            # treat everyone as high priority.
            hp, lp = lp, []
        self.hp_apps = hp
        self.lp_apps = lp
        self._state = _State.HP_CONVERGE
        self._hp_level = self.platform.max_frequency_mhz
        self._hp_converged_level: float | None = None
        self._lp_targets: dict[str, float] = {}
        self._stable_count = 0
        self._trial_count = 0
        self._trial_power: list[float] = []
        self._retry_at = 0
        self._blacklist: dict[float, int] = {}
        self._active_labels: frozenset[str] = frozenset()

    # -- observability -----------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state-machine state (for tests and reports)."""
        return self._state.value

    @property
    def lp_running(self) -> bool:
        return self._state is _State.ADMITTED

    # -- helpers -------------------------------------------------------------------

    def _hp_max(self) -> float:
        return max(self.app_max_frequency(a) for a in self.hp_apps)

    def _decision(self) -> PolicyDecision:
        targets = {}
        parked: set[str] = set()
        for app in self.hp_apps:
            targets[app.label] = clamp(
                self._hp_level, self.min_frequency, self.app_max_frequency(app)
            )
        lp_running = self._state in (_State.TRIAL, _State.ADMITTED)
        for app in self.lp_apps:
            if lp_running:
                targets[app.label] = self._lp_targets.get(
                    app.label, self.min_frequency
                )
            else:
                targets[app.label] = self.min_frequency
                parked.add(app.label)
        return PolicyDecision(targets=targets, parked=parked)

    def _granted_hp_level(self, inputs: PolicyInputs) -> float:
        """Highest active frequency among HP cores last interval."""
        freqs = [
            inputs.telemetry(a.label).active_frequency_mhz
            for a in self.hp_apps
        ]
        freqs = [f for f in freqs if f > 0]
        return max(freqs) if freqs else self._hp_level

    def _blacklisted_ceiling(self, iteration: int) -> float | None:
        """Lowest currently blacklisted frequency, if any."""
        live = [
            freq
            for freq, until in self._blacklist.items()
            if until > iteration
        ]
        return min(live) if live else None

    def _expire_blacklist(self, iteration: int) -> None:
        self._blacklist = {
            freq: until
            for freq, until in self._blacklist.items()
            if until > iteration
        }

    def _cap_below_blacklist(self, freq: float, iteration: int) -> float:
        ceiling = self._blacklisted_ceiling(iteration)
        if ceiling is None or freq < ceiling:
            return freq
        # back off to the grid point strictly below the blacklisted bin
        lower = self.platform.pstates.quantize(
            max(ceiling - 1.0, self.min_frequency)
        )
        return lower.frequency_mhz

    def _step_hp(self, inputs: PolicyInputs) -> None:
        """Adjust the shared HP level from the power error (alpha model).

        The level counts as *stable* when the loop has nothing left to
        do: the error sits inside the deadband, or the desired upward
        move is blocked (by the app/table maximum or by a blacklisted
        bin just above).  Stability is what gates the LP admission trial.
        """
        error_w = self.scaled_step(inputs.power_error_w)
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        if error_w == 0.0:
            self._stable_count += 1
            return
        base = min(self._hp_level, self._granted_hp_level(inputs))
        delta = self.alpha(error_w) * self.platform.max_frequency_mhz
        if error_w < 0:
            # over the limit: blacklist the level that violated
            violating = self.platform.pstates.quantize(
                clamp(base, self.min_frequency, self._hp_max()),
                nearest=True,
            ).frequency_mhz
            self._blacklist[violating] = (
                inputs.iteration + self.pconfig.blacklist_iterations
            )
        level = clamp(base + delta, self.min_frequency, self._hp_max())
        if error_w > 0:
            level = self._cap_below_blacklist(level, inputs.iteration)
        if error_w > 0 and level <= self._hp_level + 1.0:
            # wanted to climb but could not: converged at a ceiling
            self._stable_count += 1
        else:
            self._stable_count = 0
        self._hp_level = level

    def _lp_claims(self) -> list[Claim]:
        return [
            Claim(
                label=app.label,
                shares=app.shares,
                current=self._lp_targets.get(app.label, self.min_frequency),
                lo=self.min_frequency,
                hi=self.app_max_frequency(app),
            )
            for app in self.lp_apps
        ]

    def _step_lp(self, inputs: PolicyInputs) -> bool:
        """Give LP residual power / take it back.  Returns True if the
        over-limit condition was fully absorbed by LP."""
        error_w = self.scaled_step(inputs.power_error_w)
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        if error_w == 0.0:
            return True
        delta = (
            self.alpha(error_w)
            * self.platform.max_frequency_mhz
            * max(len(self.lp_apps), 1)
        )
        before = dict(self._lp_targets)
        self._lp_targets = distribute_min_funding(delta, self._lp_claims())
        if error_w >= 0:
            return True
        # did LP absorb the whole reduction, or are they pinned at min?
        absorbed = sum(before.get(k, self.min_frequency) - v
                       for k, v in self._lp_targets.items())
        return absorbed > abs(delta) * 0.5

    def _app_set(self, inputs: PolicyInputs) -> frozenset[str]:
        return frozenset(
            t.label for t in inputs.apps if t.busy_fraction > 0 or t.parked
        )

    # -- the three functions ---------------------------------------------------------

    def initial_distribution(self) -> PolicyDecision:
        """HP at the top P-state; LP parked until proven affordable
        (default) or admitted at the floor immediately (floor-first)."""
        self._hp_level = self._hp_max()
        self._lp_targets = {
            a.label: self.min_frequency for a in self.lp_apps
        }
        if self.pconfig.floor_first and self.lp_apps:
            # everyone runs from the start; HP convergence happens with
            # the LP floor already paid for
            self._state = _State.ADMITTED
        else:
            self._state = _State.HP_CONVERGE
        return self._decision()

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        self._expire_blacklist(inputs.iteration)
        active = self._app_set(inputs)
        set_changed = active != self._active_labels and bool(
            self._active_labels
        )
        self._active_labels = active

        if self._state is _State.HP_CONVERGE:
            self._step_hp(inputs)
            # Converged: nothing more to give HP (stable at a ceiling or
            # inside the deadband) and not meaningfully over the limit.
            converged = (
                self._stable_count >= self.pconfig.stable_iterations
                and inputs.power_error_w >= -self.pconfig.trial_tolerance_w
            )
            if converged and self.lp_apps:
                self._hp_converged_level = min(
                    self._hp_level, self._granted_hp_level(inputs)
                )
                self._hp_level = self._hp_converged_level
                self._lp_targets = {
                    a.label: self.min_frequency for a in self.lp_apps
                }
                self._state = _State.TRIAL
                self._trial_count = 0
                self._trial_power = []
            return self._decision()

        if self._state is _State.TRIAL:
            self._trial_power.append(inputs.package_power_w)
            self._trial_count += 1
            if self._trial_count >= self.pconfig.trial_iterations:
                mean_power = sum(self._trial_power) / len(self._trial_power)
                if mean_power <= self.limit_w + self.pconfig.trial_tolerance_w:
                    self._state = _State.ADMITTED
                else:
                    self._state = _State.STARVED
                    self._retry_at = (
                        inputs.iteration + self.pconfig.retry_interval
                    )
            return self._decision()

        if self._state is _State.ADMITTED:
            lp_absorbed = self._step_lp(inputs)
            if not lp_absorbed:
                # LP pinned at minimum and still over: HP must give
                self._step_hp(inputs)
            if set_changed and not self.pconfig.floor_first:
                self._restart(inputs)
            return self._decision()

        # STARVED: HP keeps fine-adjusting; retry admission periodically
        self._step_hp(inputs)
        if set_changed:
            self._restart(inputs)
        elif inputs.iteration >= self._retry_at:
            # re-trial at the current HP level without a reconvergence
            # spike; the set is unchanged so the level is still right
            self._hp_converged_level = min(
                self._hp_level, self._granted_hp_level(inputs)
            )
            self._state = _State.TRIAL
            self._trial_count = 0
            self._trial_power = []
        return self._decision()

    def _restart(self, inputs: PolicyInputs) -> None:
        """Return to HP convergence (the active app set changed)."""
        self._state = _State.HP_CONVERGE
        self._stable_count = 0
        self._hp_level = self._hp_max()
