"""RAPL baseline "policy" (paper sections 2.2, 3.2, 6).

This is what the paper compares against: let every core request maximum
frequency and hand enforcement to the hardware RAPL limiter, which knows
nothing about priorities or shares.  The limiter's global frequency cap
throttles the fastest cores first, producing the unfair interference of
Figs 1 and 5.

As a :class:`~repro.core.policy.Policy` it is trivial — its decisions
never change — but wrapping it keeps the experiment harness uniform: the
daemon programs the hardware limit once and then merely observes.
"""

from __future__ import annotations

from repro.core.policy import Policy
from repro.core.types import PolicyDecision, PolicyInputs


class RaplBaselinePolicy(Policy):
    """All cores at max request; the hardware RAPL limiter enforces."""

    name = "rapl"
    requires_rapl_limit = True

    #: the daemon reads this to program the PKG_POWER_LIMIT MSR.
    programs_hardware_limit = True

    def _decision(self) -> PolicyDecision:
        return PolicyDecision(
            targets={
                app.label: self.app_max_frequency(app) for app in self.apps
            }
        )

    def initial_distribution(self) -> PolicyDecision:
        return self._decision()

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        return self._decision()
