"""HWP-hints policy: shares expressed as CPPC hint windows.

The paper notes (section 2.1) that with CPPC/HWP "hardware controls
DVFS settings and software provides a range of allowable performance",
and (section 5.2) that HWP's abstract performance metric "may be a
better choice" than IPS for workloads where instruction counts mislead.

This policy explores that design point: instead of programming explicit
P-states each second, the daemon derives per-app **hint windows** from
the shares — ``max_perf`` proportional to the share split, ``min_perf``
at the daemon floor — and lets the autonomous HWP controller pick actual
operating points inside them at hardware cadence.  Package-power
feedback scales the whole hint envelope up or down, so the power limit
is still enforced by software while fine-grained selection (e.g. backing
off frequency-insensitive apps) happens "in hardware".

Trade-off demonstrated by the ablation benches: HWP hints inherit the
abstract scale's machine-specificity — the same hint window yields
different frequencies on different platforms — exactly the tuning burden
the paper warns about.
"""

from __future__ import annotations

from repro.core.minfund import Claim, pool_bounds, refill_pool
from repro.core.policy import Policy, PolicyConfig
from repro.core.types import ManagedApp, PolicyDecision, PolicyInputs
from repro.errors import ConfigError
from repro.hw.hwp import HwpController, HwpRequest
from repro.hw.platform import PlatformSpec
from repro.units import clamp


class HwpHintsPolicy(Policy):
    """Proportional shares delivered as HWP hint ceilings.

    The decision targets this policy emits are the *hint ceilings* in
    MHz; the daemon must run an :class:`~repro.hw.hwp.HwpController`
    (see :func:`attach_hwp`) which owns the actual P-state requests.
    """

    name = "hwp-hints"
    programs_frequencies = False

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
    ):
        super().__init__(platform, apps, limit_w, config)
        self._ceilings: dict[str, float] = {}
        self._pool_mhz = 0.0
        self._hwp: HwpController | None = None

    # -- wiring ----------------------------------------------------------------

    def attach_hwp(self, hwp: HwpController) -> None:
        """Give the policy the HWP controller whose hints it manages."""
        self._hwp = hwp

    def _push_hints(self) -> None:
        if self._hwp is None:
            raise ConfigError(
                "hwp-hints policy needs an attached HwpController"
            )
        for app in self.apps:
            ceiling = self._ceilings[app.label]
            self._hwp.set_request(
                app.core_id,
                HwpRequest(
                    min_perf=self._hwp.mhz_to_perf(self.min_frequency),
                    max_perf=max(
                        self._hwp.mhz_to_perf(ceiling),
                        self._hwp.mhz_to_perf(self.min_frequency),
                    ),
                ),
            )

    # -- the three functions -----------------------------------------------------

    def _claims(self) -> list[Claim]:
        return [
            Claim(
                label=app.label,
                shares=app.shares,
                current=self._ceilings.get(app.label, self.min_frequency),
                lo=self.min_frequency,
                hi=self.achievable_max_frequency(app),
            )
            for app in self.apps
        ]

    def initial_distribution(self) -> PolicyDecision:
        top = max(app.shares for app in self.apps)
        for app in self.apps:
            fraction = app.shares / top
            self._ceilings[app.label] = clamp(
                fraction * self.achievable_max_frequency(app),
                self.min_frequency,
                self.achievable_max_frequency(app),
            )
        self._pool_mhz = sum(self._ceilings.values())
        self._push_hints()
        return PolicyDecision(targets=dict(self._ceilings))

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        error_w = self.scaled_step(inputs.power_error_w)
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        if error_w != 0.0:
            delta = (
                self.alpha(error_w)
                * self.platform.max_frequency_mhz
                * len(self.apps)
            )
            claims = self._claims()
            lo, hi = pool_bounds(claims)
            self._pool_mhz = min(max(self._pool_mhz + delta, lo), hi)
            self._ceilings = refill_pool(self._pool_mhz, claims)
            self._push_hints()
        return PolicyDecision(targets=dict(self._ceilings))
