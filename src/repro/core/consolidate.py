"""LP consolidation: the paper's alternative to starvation (section 4.4).

When the priority policy cannot afford to run *all* low-priority
applications at the minimum P-state, the simple implementation starves
them all.  The paper notes the alternative: "the policy should disable
cores (put them in a sleep state) and let the OS scheduler time-slice
applications on the remaining cores" — run a *subset* of cores at the
minimum P-state and multiplex every LP app across them.

:func:`plan_lp_consolidation` computes that plan from the residual power
budget and an estimated minimum-P-state per-core cost, assigning LP apps
round-robin to the affordable cores; the scheduler substrate
(:class:`repro.sched.timeshare.TimeSharedCoreLoad`) executes it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class ConsolidationPlan:
    """How to pack starved LP apps onto a reduced set of cores."""

    #: cores (by index into the LP core list) that stay awake.
    active_core_count: int
    #: app labels per active core, round-robin packed.
    assignments: tuple[tuple[str, ...], ...]
    #: labels that still cannot run (budget below one core's cost).
    starved: tuple[str, ...]

    @property
    def runnable(self) -> tuple[str, ...]:
        return tuple(
            label for group in self.assignments for label in group
        )


def plan_lp_consolidation(
    lp_labels: list[str],
    residual_power_w: float,
    min_pstate_core_power_w: float,
) -> ConsolidationPlan:
    """Plan time-slicing of LP apps onto the affordable number of cores.

    ``residual_power_w`` is the headroom left after the HP apps;
    ``min_pstate_core_power_w`` the estimated draw of one core running
    at the minimum P-state.  With ``k`` affordable cores (capped at the
    number of LP apps), the apps are packed round-robin; ``k == 0``
    degenerates to the strict-starvation behaviour.
    """
    if not lp_labels:
        raise ConfigError("no LP applications to consolidate")
    if len(set(lp_labels)) != len(lp_labels):
        raise ConfigError("duplicate LP labels")
    if min_pstate_core_power_w <= 0:
        raise ConfigError("per-core power estimate must be positive")
    affordable = int(max(residual_power_w, 0.0) // min_pstate_core_power_w)
    k = min(affordable, len(lp_labels))
    if k == 0:
        return ConsolidationPlan(
            active_core_count=0,
            assignments=(),
            starved=tuple(lp_labels),
        )
    groups: list[list[str]] = [[] for _ in range(k)]
    for index, label in enumerate(lp_labels):
        groups[index % k].append(label)
    return ConsolidationPlan(
        active_core_count=k,
        assignments=tuple(tuple(g) for g in groups),
        starved=(),
    )
