"""Ryzen three-P-state selection utility (paper section 5, "Ryzen details").

The Ryzen 1700X can hold only three distinct voltage/frequency pairs
across its cores at once, although the pairs themselves are configurable
in 25 MHz steps.  The paper built "an additional selection utility that
dynamically reduces the target frequencies to three valid P-states";
this module is that utility.

Reduction is a small 1-D k-means (k = number of simultaneous P-states):
cluster the requested per-core frequencies, snap each cluster centroid
onto the platform grid, and map every core to its cluster's level.  This
is the optimization problem the paper alludes to — "determining which
three frequencies are optimal for a set of workloads" — solved with the
natural squared-error objective.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.hw.platform import PlatformSpec


def _kmeans_1d(
    values: list[float], k: int, *, iterations: int = 32
) -> list[float]:
    """Plain 1-D k-means with deterministic quantile seeding."""
    ordered = sorted(values)
    n = len(ordered)
    # seed centroids at spread quantiles
    centroids = [
        ordered[min(n - 1, int(round(i * (n - 1) / max(k - 1, 1))))]
        for i in range(k)
    ]
    for _ in range(iterations):
        buckets: list[list[float]] = [[] for _ in range(k)]
        for value in values:
            best = min(range(k), key=lambda i: abs(value - centroids[i]))
            buckets[best].append(value)
        moved = False
        for i, bucket in enumerate(buckets):
            if not bucket:
                continue
            new = sum(bucket) / len(bucket)
            if abs(new - centroids[i]) > 1e-9:
                centroids[i] = new
                moved = True
        if not moved:
            break
    return centroids


def select_pstate_levels(
    platform: PlatformSpec, targets: dict[str, float]
) -> dict[str, float]:
    """Reduce per-app frequency targets to the platform's level budget.

    Returns new targets where at most ``platform.simultaneous_pstates``
    distinct frequencies occur, each snapped onto the platform grid.
    Platforms without the restriction (Skylake) pass through unchanged
    apart from grid quantization.
    """
    if not targets:
        raise ConfigError("no targets to select levels for")
    quantize = platform.pstates.quantize
    k = platform.simultaneous_pstates
    values = list(targets.values())
    distinct = sorted({quantize(v, nearest=True).frequency_mhz for v in values})
    if len(distinct) <= k:
        return {
            label: quantize(value, nearest=True).frequency_mhz
            for label, value in targets.items()
        }
    centroids = _kmeans_1d(values, k)
    levels = sorted(
        {quantize(c, nearest=True).frequency_mhz for c in centroids}
    )
    return {
        label: min(levels, key=lambda level: abs(level - value))
        for label, value in targets.items()
    }
