"""The paper's contribution: differential power-delivery policies.

Two policy classes (paper section 4):

* :class:`~repro.core.priority.PriorityPolicy` — strict two-level
  priorities: high-priority apps first, low-priority apps get residual
  power and may starve.
* Proportional shares of three resources:
  :class:`~repro.core.power_shares.PowerSharesPolicy`,
  :class:`~repro.core.frequency_shares.FrequencySharesPolicy`, and
  :class:`~repro.core.performance_shares.PerformanceSharesPolicy`.

Plus the :class:`~repro.core.rapl_baseline.RaplBaselinePolicy` the paper
compares against, and the :class:`~repro.core.daemon.PowerDaemon` that
runs any of them in a 1 Hz monitoring loop (section 5).
"""

from repro.core.types import (
    Priority,
    ManagedApp,
    AppTelemetry,
    PolicyInputs,
    PolicyDecision,
)
from repro.core.policy import Policy, PolicyConfig
from repro.core.minfund import distribute_min_funding, Claim
from repro.core.priority import PriorityPolicy, PriorityConfig
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.power_shares import PowerSharesPolicy
from repro.core.rapl_baseline import RaplBaselinePolicy
from repro.core.pstate_select import select_pstate_levels
from repro.core.daemon import PowerDaemon
from repro.core.timeshare_policy import plan_single_core, SingleCorePlan
from repro.core.consolidate import ConsolidationPlan, plan_lp_consolidation
from repro.core.thermal_daemon import ThermalDaemon, ThermalDaemonConfig

__all__ = [
    "Priority",
    "ManagedApp",
    "AppTelemetry",
    "PolicyInputs",
    "PolicyDecision",
    "Policy",
    "PolicyConfig",
    "distribute_min_funding",
    "Claim",
    "PriorityPolicy",
    "PriorityConfig",
    "FrequencySharesPolicy",
    "PerformanceSharesPolicy",
    "PowerSharesPolicy",
    "RaplBaselinePolicy",
    "select_pstate_levels",
    "PowerDaemon",
    "plan_single_core",
    "SingleCorePlan",
    "ConsolidationPlan",
    "plan_lp_consolidation",
    "ThermalDaemon",
    "ThermalDaemonConfig",
]
