"""Frequency shares (paper sections 4.2 and 5.2).

Applications run at frequencies proportional to their shares.  Needs
only package power telemetry plus per-core DVFS, so it works on both
platforms, and — the paper's headline result — it isolates performance
about as well as the more complex performance shares while being more
stable.

Control loop (verbatim from the paper):

* the *translation function* converts a power delta into a frequency
  budget through the naive model::

      alpha          = PowerDelta / MaxPower
      FrequencyDelta = alpha * MaxFrequency * NumAvailableCores

* the *initial distribution* puts the highest-share application at
  maximum frequency and the rest at their proportions of it,
* the *redistribution function* spreads FrequencyDelta over
  non-saturated applications with min-funding revocation.

One stabilisation beyond the paper's sketch: the steady-state operating
point often sits *between* two quantized P-states — the turbo voltage
cliff can be worth several watts across the socket — so a naive loop
dithers: creep up a bin, violate the limit, fall back, repeat forever.
After an upward move that ends in violation the policy rolls the pool
back and backs off further probes with geometrically growing holds, so
the dither decays instead of cycling.
"""

from __future__ import annotations

from repro.core.minfund import Claim, pool_bounds, refill_pool
from repro.core.policy import Policy, PolicyConfig
from repro.core.types import ManagedApp, PolicyDecision, PolicyInputs
from repro.hw.platform import PlatformSpec


class FrequencySharesPolicy(Policy):
    """Proportional shares of core frequency."""

    name = "frequency-shares"

    #: initial upward-probe hold after an overshoot, iterations; doubles
    #: on every consecutive overshoot up to the maximum.
    probe_hold_initial = 8
    probe_hold_max = 256

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
    ):
        super().__init__(platform, apps, limit_w, config)
        self._targets: dict[str, float] = {}
        self._pool_mhz = 0.0
        # probe-backoff state (see module docstring)
        self._last_move_up = False
        self._pool_before_move = 0.0
        self._hold_until = 0
        self._hold_length = self.probe_hold_initial

    def initial_distribution(self) -> PolicyDecision:
        top_shares = max(app.shares for app in self.apps)
        targets: dict[str, float] = {}
        for app in self.apps:
            fraction = app.shares / top_shares
            freq = fraction * self.achievable_max_frequency(app)
            targets[app.label] = max(freq, self.min_frequency)
        self._targets = dict(targets)
        self._pool_mhz = sum(targets.values())
        return PolicyDecision(targets=targets)

    def _claims(self) -> list[Claim]:
        """Claims over frequency with saturation bounds.

        An app saturates *up* at its (AVX-capped, all-active-turbo)
        maximum and *down* at the daemon floor — the paper never starves
        share-holders (section 5.2), so the floor is the lowest P-state,
        not zero.
        """
        claims = []
        for app in self.apps:
            claims.append(
                Claim(
                    label=app.label,
                    shares=app.shares,
                    current=self._targets[app.label],
                    lo=self.min_frequency,
                    hi=self.achievable_max_frequency(app),
                )
            )
        return claims

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        error_w = self.scaled_step(inputs.power_error_w)
        claims = self._claims()
        lo, hi = pool_bounds(claims)

        if error_w < 0.0 and self._last_move_up:
            # the upward move we just made overshot the limit
            step = self._pool_mhz - self._pool_before_move
            dither_step = 1.5 * self.platform.step_mhz * len(self.apps)
            if step > dither_step:
                # a genuine climb that went too far: halve it (binary
                # convergence) rather than discarding the progress —
                # otherwise a mis-calibrated alpha model could loop
                # probe/rollback forever far below the limit
                self._pool_mhz = min(
                    max(self._pool_before_move + step / 2, lo), hi
                )
                self._pool_before_move = min(
                    max(self._pool_before_move, lo), hi
                )
                # stay in "probing" mode so a repeat violation halves
                # again
                self._targets = refill_pool(self._pool_mhz, claims)
                return PolicyDecision(targets=dict(self._targets))
            # sub-bin dither at the quantization edge: roll back fully
            # and hold off, doubling the hold on repeats
            self._pool_mhz = min(max(self._pool_before_move, lo), hi)
            self._hold_until = inputs.iteration + self._hold_length
            self._hold_length = min(
                self._hold_length * 2, self.probe_hold_max
            )
            self._last_move_up = False
            self._targets = refill_pool(self._pool_mhz, claims)
            return PolicyDecision(targets=dict(self._targets))

        if error_w > 0.0:
            if inputs.iteration < self._hold_until:
                # probing is on hold after a recent overshoot
                return PolicyDecision(targets=dict(self._targets))
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        elif error_w == 0.0:
            self._last_move_up = False
            return PolicyDecision(targets=dict(self._targets))
        else:
            # genuine over-limit not caused by our own probe: respond
            # immediately and forget the backoff (workload changed)
            self._hold_length = self.probe_hold_initial

        frequency_delta = (
            self.alpha(error_w)
            * self.platform.max_frequency_mhz
            * len(self.apps)
        )
        self._pool_before_move = self._pool_mhz
        self._last_move_up = error_w > 0.0
        self._pool_mhz = min(max(self._pool_mhz + frequency_delta, lo), hi)
        new = refill_pool(self._pool_mhz, claims)
        self._targets = new
        return PolicyDecision(targets=dict(new))
