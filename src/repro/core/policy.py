"""Policy interface (paper section 5.2).

Every share mechanism is implemented with three functions:

* **initial distribution** — allocations when applications start,
* **redistribution** — the per-iteration control step, applying
  min-funding revocation to excesses/shortages and handling saturation,
* **translation** — converting managed-resource units into frequencies
  programmable into the CPU.

:class:`Policy` captures that contract.  Policies receive telemetry and
return continuous frequency targets; the daemon owns quantization onto
the platform grid and the Ryzen three-P-state reduction, since those are
platform concerns shared by every policy.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import ConfigError, UnsupportedFeatureError
from repro.core.types import ManagedApp, PolicyDecision, PolicyInputs
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class PolicyConfig:
    """Constants shared by the redistribution control loops.

    ``max_power_w`` anchors the paper's naive conversion factor
    ``alpha = PowerDelta / MaxPower`` (section 5.2); the TDP is the
    natural choice.  ``uncore_estimate_w`` is the daemon's guess of
    non-core package draw — deliberately an estimate, since a userspace
    daemon cannot measure it.  ``deadband_w`` stops the loop from
    chasing noise when power is already near the limit.
    """

    max_power_w: float
    uncore_estimate_w: float = 7.0
    deadband_w: float = 0.75
    #: fraction of the computed positive (upward) step actually applied;
    #: raising frequency risks overshooting past the turbo voltage cliff,
    #: so the loop climbs slower than it backs off.
    upward_gain: float = 0.5

    def __post_init__(self) -> None:
        if self.max_power_w <= 0:
            raise ConfigError("max_power_w must be positive")
        if not 0 < self.upward_gain <= 1.0:
            raise ConfigError("upward_gain must be in (0, 1]")


class Policy(abc.ABC):
    """Base class for all power-delivery policies."""

    #: human-readable policy name used in reports.
    name: str = "abstract"
    #: platform features the policy needs (checked at construction).
    requires_per_core_energy: bool = False
    requires_rapl_limit: bool = False
    #: False when another agent (hardware RAPL, an HWP controller) owns
    #: the actual P-state requests and the daemon must not program
    #: frequencies from the decision targets.
    programs_frequencies: bool = True

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
    ):
        if not apps:
            raise ConfigError("policy needs at least one managed app")
        labels = [a.label for a in apps]
        if len(set(labels)) != len(labels):
            raise ConfigError("duplicate app labels")
        cores = [a.core_id for a in apps]
        if len(set(cores)) != len(cores):
            raise ConfigError("two managed apps pinned to the same core")
        if limit_w <= 0:
            raise ConfigError("power limit must be positive")
        if self.requires_per_core_energy and not platform.has_per_core_energy:
            raise UnsupportedFeatureError(
                f"{self.name} needs per-core power telemetry, which "
                f"{platform.name} does not provide (paper section 4.2)"
            )
        if self.requires_rapl_limit and not platform.has_rapl_limit:
            raise UnsupportedFeatureError(
                f"{self.name} needs hardware RAPL limiting, which "
                f"{platform.name} does not provide"
            )
        self.platform = platform
        self.apps = list(apps)
        self.limit_w = limit_w
        self.config = config or PolicyConfig(
            max_power_w=platform.power.tdp_watts
        )

    # -- shared helpers --------------------------------------------------------

    def app_max_frequency(self, app: ManagedApp) -> float:
        if app.max_frequency_mhz is not None:
            return app.max_frequency_mhz
        return self.platform.max_frequency_mhz

    def achievable_max_frequency(self, app: ManagedApp) -> float:
        """App maximum clipped to the turbo ceiling with *all* managed
        apps active.

        Share policies keep every application running, so the few-core
        turbo bins (XFR/top TurboBoost) are never grantable; claiming up
        to them would skew the proportional split toward saturated apps.
        The priority policy deliberately does NOT use this — parking LP
        apps is exactly how it unlocks those bins."""
        from repro.hw.turbo import TurboModel

        ceiling = TurboModel(self.platform).ceiling_mhz(len(self.apps))
        return min(self.app_max_frequency(app), ceiling)

    @property
    def min_frequency(self) -> float:
        """Lowest frequency policies program (the daemon floor, which on
        Ryzen is 800 MHz per the paper's P-state remapping)."""
        return self.platform.policy_floor_mhz

    def alpha(self, power_delta_w: float) -> float:
        """The paper's conversion factor: PowerDelta / MaxPower."""
        return power_delta_w / self.config.max_power_w

    def scaled_step(self, power_error_w: float) -> float:
        """Apply deadband and asymmetric gain to a raw power error."""
        if abs(power_error_w) <= self.config.deadband_w:
            return 0.0
        if power_error_w > 0:
            return power_error_w * self.config.upward_gain
        return power_error_w

    # -- the three functions of section 5.2 -------------------------------------

    @abc.abstractmethod
    def initial_distribution(self) -> PolicyDecision:
        """Allocations used when starting the applications."""

    @abc.abstractmethod
    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        """One control-loop step from measured telemetry."""
