"""The userspace power daemon (paper section 5), hardened.

``PowerDaemon`` is the component the paper actually built: it "takes a
list of programs as input with their priority and shares", pins them,
"then runs a monitoring loop.  In every loop iteration (1 second in our
implementation), it reads processor statistics, including power
(per-core or per-package), performance (retired instruction count), and
actual frequency" and re-programs P-states through the policy's
redistribution function.

The daemon owns the platform-level plumbing every policy shares:

* telemetry via the turbostat sampler,
* quantization of policy targets onto the DVFS grid,
* the Ryzen three-simultaneous-P-state reduction
  (:func:`repro.core.pstate_select.select_pstate_levels`),
* core parking for starved applications,
* programming frequencies through the cpufreq/MSR interface, and the
  hardware RAPL limit for the baseline policy.

A daemon that must keep a socket under its power limit for weeks cannot
die on the first flaky ``rdmsr``.  Every iteration is therefore
contained:

* telemetry reads that fail or flunk plausibility checks fall back to
  the last good sample (*holdover*) and never reach the policy,
* MSR writes get a bounded retry; a write abandoned after retries
  fail-safe **parks** the core (a core we cannot program must not keep
  burning at its stale frequency), and a core whose programming fails
  repeatedly is **quarantined** — parked and re-probed with exponential
  backoff,
* after ``safe_mode_after`` consecutive bad iterations the daemon
  escalates to **safe mode**: it re-arms the hardware RAPL backstop at
  the operator limit (where the platform has one), floors every core it
  can still program, and parks policy control until telemetry delivers
  ``recover_after`` consecutive good samples.

Each :class:`DaemonSample` carries a :class:`HealthRecord` so
experiments, the CLI, and the chaos suite can audit every retry,
holdover, quarantine, and mode transition.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError, MSRError, ReproError
from repro.core.policy import Policy
from repro.core.pstate_select import select_pstate_levels
from repro.core.types import AppTelemetry, PolicyDecision, PolicyInputs
from repro.hw import msr as msrdef
from repro.hw.cpufreq import CpuFreqInterface
from repro.hw.msr import MSRFile
from repro.hw.rapl import encode_pkg_power_limit
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine, TickGate
from repro.telemetry.turbostat import Turbostat, TurbostatSample


class DaemonMode(enum.Enum):
    """Control-loop operating mode."""

    NORMAL = "normal"
    SAFE = "safe"


@dataclass(frozen=True)
class ResilienceConfig:
    """Error-containment constants for the monitoring loop."""

    #: extra attempts after a failed MSR write (bounded retry).
    max_write_retries: int = 2
    #: consecutive bad iterations before escalating to safe mode.
    safe_mode_after: int = 5
    #: consecutive good (fresh, valid) samples required to leave safe mode.
    recover_after: int = 3
    #: consecutive abandoned writes on one core before quarantining it.
    quarantine_after: int = 3
    #: iterations between re-probes of a quarantined core (doubles on
    #: every failed probe, capped at 8x).
    quarantine_probe_every: int = 8
    #: plausibility: package/core power at most this multiple of TDP.
    max_plausible_power_factor: float = 3.0
    #: plausibility: per-core IPS at most ``ipc * max_frequency``.
    max_plausible_ipc: float = 8.0
    #: plausibility: frequency at most this multiple of the grid max.
    frequency_slack: float = 1.05
    #: plausibility: package power at least this multiple of the uncore
    #: floor (the uncore always draws; a 0 W package means a stuck
    #: energy counter, not an idle socket).
    min_power_uncore_factor: float = 0.5

    def __post_init__(self) -> None:
        if self.max_write_retries < 0:
            raise ConfigError("max_write_retries cannot be negative")
        for name in ("safe_mode_after", "recover_after", "quarantine_after",
                     "quarantine_probe_every"):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be at least 1")
        if self.frequency_slack < 1.0:
            raise ConfigError("frequency_slack must be >= 1")
        if self.max_plausible_power_factor <= 0:
            raise ConfigError("max_plausible_power_factor must be positive")


@dataclass(frozen=True)
class HealthRecord:
    """Degradation bookkeeping for one monitoring-loop iteration."""

    mode: str = DaemonMode.NORMAL.value
    #: this iteration's telemetry was fresh and passed validation.
    telemetry_ok: bool = True
    #: the policy/record ran on the last good sample instead.
    holdover: bool = False
    consecutive_failures: int = 0
    #: MSR write retries performed this iteration.
    retries: int = 0
    #: MSR writes abandoned after retries this iteration.
    failed_writes: int = 0
    #: cores currently quarantined.
    quarantined: tuple[int, ...] = ()
    #: cumulative safe-mode entries since start.
    safe_mode_entries: int = 0
    #: cumulative errors contained (never propagated) since start.
    contained_errors: int = 0


@dataclass(frozen=True)
class DaemonSample:
    """One monitoring-loop iteration, for experiment post-processing."""

    iteration: int
    time_s: float
    package_power_w: float
    app_frequency_mhz: dict[str, float]
    app_ips: dict[str, float]
    app_power_w: dict[str, float | None]
    app_parked: dict[str, bool]
    targets_mhz: dict[str, float]
    health: HealthRecord = field(default_factory=HealthRecord)


@dataclass
class _QuarantineEntry:
    """Backoff state for one quarantined core."""

    countdown: int
    interval: int


class PowerDaemon:
    """Monitoring loop driving one policy over one chip."""

    def __init__(
        self,
        chip: Chip,
        policy: Policy,
        *,
        interval_s: float = 1.0,
        msr: MSRFile | None = None,
        resilience: ResilienceConfig | None = None,
    ):
        if interval_s <= 0:
            raise ConfigError("daemon interval must be positive")
        if policy.platform is not chip.platform:
            raise ConfigError("policy and chip platform specs differ")
        self.chip = chip
        self.policy = policy
        self.interval_s = interval_s
        self.resilience = resilience or ResilienceConfig()
        #: the daemon's register-file handle.  Defaults to the chip's;
        #: fault injection substitutes a proxy here so *only* the
        #: daemon's view is corrupted, never the simulator's.
        self.msr = msr if msr is not None else chip.msr
        self.cpufreq = CpuFreqInterface(chip.platform, self.msr)
        self.turbostat = Turbostat(chip.platform, self.msr)
        self._core_of = {app.label: app.core_id for app in policy.apps}
        self._label_of = {core: label for label, core in self._core_of.items()}
        self._iteration = 0
        self._targets: dict[str, float] = {}
        self._policy_parked: set[str] = set()
        self.history: list[DaemonSample] = []
        self._started = False
        # -- resilience state -------------------------------------------------
        self._mode = DaemonMode.NORMAL
        self._last_good: TurbostatSample | None = None
        self._consecutive_failures = 0
        self._consecutive_good = 0
        self._safe_mode_entries = 0
        #: an external supervisor (the cluster lease layer) pinned us in
        #: safe mode; telemetry recovery alone cannot exit while set.
        self._safe_latched = False
        self._contained_errors = 0
        self._core_fail_streak: dict[int, int] = {}
        self._quarantine: dict[int, _QuarantineEntry] = {}
        #: cores parked because programming them failed (fail-safe).
        self._fault_parked: set[int] = set()
        # per-iteration write accounting (reset each iteration)
        self._iter_retries = 0
        self._iter_failed_writes = 0

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Apply the policy's initial distribution and arm telemetry."""
        if self._started:
            raise ConfigError("daemon already started")
        if getattr(self.policy, "programs_hardware_limit", False):
            self.chip.set_rapl_limit(self.policy.limit_w)
        elif self.chip.rapl is not None:
            # software policies run with the hardware limiter at TDP, the
            # configuration the paper's daemon experiments use: the
            # policy enforces the operator limit, RAPL only backstops.
            self.chip.set_rapl_limit(self.chip.platform.power.tdp_watts)
        decision = self.policy.initial_distribution()
        self._apply(decision)
        try:
            self.turbostat.prime(self.chip.time_s)
        except ReproError:
            # a failed prime is the first telemetry fault: the first
            # iteration will re-prime (or hold over) instead of dying.
            self._contained_errors += 1
        self._started = True

    def attach(self, engine: SimEngine, *, gate: TickGate | None = None) -> None:
        """Register the monitoring loop with a simulation engine.

        ``gate`` forwards to :meth:`SimEngine.every` — the fault
        injector uses it to drop or jitter iterations.
        """
        if not self._started:
            self.start()
        engine.every(self.interval_s, self.iteration, gate=gate)

    # -- introspection -----------------------------------------------------------

    @property
    def mode(self) -> DaemonMode:
        return self._mode

    @property
    def safe_latched(self) -> bool:
        """Whether a supervisor latch is pinning the daemon in safe mode."""
        return self._safe_latched

    @property
    def quarantined_cores(self) -> tuple[int, ...]:
        return tuple(sorted(self._quarantine))

    @property
    def _parked(self) -> set[str]:
        """All parked labels: policy decisions plus fail-safe parking."""
        return self._policy_parked | {
            self._label_of[c]
            for c in (self._fault_parked | set(self._quarantine))
        }

    # -- one loop iteration ------------------------------------------------------

    def iteration(self, now_s: float) -> DaemonSample:
        """Read statistics, run the policy, program the hardware.

        Never raises :class:`~repro.errors.ReproError`: telemetry,
        policy, and programming failures are contained, counted, and —
        past the escalation threshold — answered with safe mode.
        """
        self._iteration += 1
        self._iter_retries = 0
        self._iter_failed_writes = 0
        sample, fresh, holdover = self._acquire_sample(now_s)
        iteration_ok = fresh

        if self._mode is DaemonMode.NORMAL:
            if fresh and sample is not None:
                try:
                    decision = self.policy.redistribute(
                        self._build_inputs(sample)
                    )
                    self._apply(decision)
                except ReproError:
                    self._contained_errors += 1
                    iteration_ok = False
            # stale telemetry: hold the last programmed targets — a
            # policy step on frozen inputs would integrate the same
            # error every iteration and wind the targets away.
            if self._iter_failed_writes:
                iteration_ok = False
            if iteration_ok:
                self._consecutive_failures = 0
            else:
                self._consecutive_failures += 1
                if (
                    self._consecutive_failures
                    >= self.resilience.safe_mode_after
                ):
                    self._enter_safe_mode()
        else:  # SAFE: keep the backstop armed, wait for telemetry
            self._arm_backstop()
            if fresh:
                self._consecutive_good += 1
                if (
                    self._consecutive_good >= self.resilience.recover_after
                    and not self._safe_latched
                ):
                    self._exit_safe_mode()
            else:
                self._consecutive_good = 0
                self._consecutive_failures += 1

        self._tick_quarantine()
        record = self._record(now_s, sample, fresh, holdover)
        self.history.append(record)
        return record

    # -- telemetry acquisition and validation --------------------------------------

    def _acquire_sample(
        self, now_s: float
    ) -> tuple[TurbostatSample | None, bool, bool]:
        """Sample telemetry with validation and last-good holdover.

        Returns ``(sample, fresh, holdover)``: ``fresh`` means this
        iteration produced a valid new sample; ``holdover`` means the
        returned sample is the stale last-good one.
        """
        sample: TurbostatSample | None = None
        try:
            if self.turbostat.primed:
                sample = self.turbostat.sample(now_s)
            else:
                # prime failed earlier (start-time fault); re-prime so
                # the *next* iteration has an interval to report.
                self.turbostat.prime(now_s)
        except ReproError:
            self._contained_errors += 1
        if sample is not None:
            if self._validate(sample):
                self._last_good = sample
                return sample, True, False
            self._contained_errors += 1
        if self._last_good is not None:
            return self._last_good, False, True
        return None, False, False

    def _validate(self, sample: TurbostatSample) -> bool:
        """Reject physically implausible samples (garbage counters)."""
        cfg = self.resilience
        power = self.chip.platform.power
        if sample.interval_s <= 0:
            return False
        max_power = cfg.max_plausible_power_factor * power.tdp_watts
        min_power = cfg.min_power_uncore_factor * power.uncore_watts
        if not min_power <= sample.package_power_w <= max_power:
            return False
        max_freq = self.chip.platform.max_frequency_mhz * cfg.frequency_slack
        max_ips = (
            cfg.max_plausible_ipc
            * self.chip.platform.max_frequency_mhz
            * 1e6
        )
        for stats in sample.cores:
            if not 0.0 <= stats.active_frequency_mhz <= max_freq:
                return False
            if not 0.0 <= stats.busy_fraction <= 1.0:
                return False
            if not 0.0 <= stats.ips <= max_ips:
                return False
            if stats.power_w is not None and not (
                0.0 <= stats.power_w <= max_power
            ):
                return False
        return True

    # -- safe mode ------------------------------------------------------------------

    def _enter_safe_mode(self) -> None:
        self._mode = DaemonMode.SAFE
        self._safe_mode_entries += 1
        self._consecutive_good = 0
        self._arm_backstop()

    def _arm_backstop(self) -> None:
        """Bound package power without trusting telemetry.

        Re-arms the hardware RAPL limiter at the *operator* limit where
        the platform has one, and floors every core we can still
        program — together they hold power below the limit even if
        counters keep lying.
        """
        if self.chip.rapl is not None:
            # the hardware limiter only accepts its supported range: an
            # operator limit below it (a cluster floor cap) arms the
            # closest programmable backstop instead of failing the write
            lo, hi = self.chip.platform.rapl_limit_range_w
            backstop_w = min(max(self.policy.limit_w, lo), hi)
            self._write_with_retry(
                0,
                msrdef.MSR_PKG_POWER_LIMIT,
                encode_pkg_power_limit(backstop_w),
            )
        floor = self.chip.platform.policy_floor_mhz
        for label, core_id in self._core_of.items():
            if core_id in self._quarantine:
                continue
            if self._program_core(core_id, floor):
                # a floored core is not parked: the app keeps running,
                # just at the minimum the policy would ever grant.
                if label not in self._policy_parked:
                    self._unpark_if_fault_parked(core_id)

    def force_safe_mode(self) -> None:
        """Latch safe mode on a supervisor's order.

        The cluster lease layer calls this when the node's cap lease
        has expired past its TTL: the control plane is unreachable, so
        the RAPL backstop becomes the enforcement of record.  The latch
        holds through telemetry recovery — only
        :meth:`release_safe_mode` (a renewed lease) lets the daemon
        resume policy control.
        """
        self._safe_latched = True
        if self._mode is not DaemonMode.SAFE:
            self._enter_safe_mode()

    def release_safe_mode(self) -> None:
        """Drop the supervisor latch; telemetry recovery resumes.

        The normal ``recover_after`` streak of good samples still gates
        the exit, so a renewed lease on a still-sick node keeps the
        backstop armed.  A node whose streak is *already* satisfied —
        it proved health while the latch held — exits immediately:
        making it start the streak over would punish it for having been
        latched, and a single stale sample between release and the next
        good one would otherwise zero the proven streak.
        """
        self._safe_latched = False
        if (
            self._mode is DaemonMode.SAFE
            and self._consecutive_good >= self.resilience.recover_after
        ):
            self._exit_safe_mode()

    def _exit_safe_mode(self) -> None:
        self._mode = DaemonMode.NORMAL
        self._consecutive_failures = 0
        self._consecutive_good = 0
        if self.chip.rapl is not None and not getattr(
            self.policy, "programs_hardware_limit", False
        ):
            # restore the TDP backstop the software policies run under
            self._write_with_retry(
                0,
                msrdef.MSR_PKG_POWER_LIMIT,
                encode_pkg_power_limit(self.chip.platform.power.tdp_watts),
            )
        try:
            self._apply(self.policy.initial_distribution())
        except ReproError:
            self._contained_errors += 1

    # -- programming with containment -------------------------------------------------

    def _apply(self, decision: PolicyDecision) -> None:
        decision.validate(set(self._core_of))
        programs = getattr(self.policy, "programs_frequencies", True)
        running_targets = {
            label: freq
            for label, freq in decision.targets.items()
            if label not in decision.parked
            and self._core_of[label] not in self._quarantine
        }
        if running_targets and programs:
            quantized = select_pstate_levels(
                self.chip.platform, running_targets
            )
        else:
            quantized = {}
        for label, core_id in self._core_of.items():
            if core_id in self._quarantine:
                continue  # quarantined cores stay parked until probed
            if label in decision.parked:
                self.chip.park(core_id, True)
                continue
            if programs:
                if self._program_core(core_id, quantized[label]):
                    self._unpark_if_fault_parked(core_id)
                    self.chip.park(core_id, False)
            else:
                self.chip.park(core_id, False)
        self._targets = dict(decision.targets)
        self._policy_parked = set(decision.parked)

    def _program_core(self, core_id: int, freq_mhz: float) -> bool:
        """Program one core with bounded retry; fail-safe park on defeat.

        A core we cannot program would keep running at whatever stale
        frequency it last got — unbounded power the policy no longer
        accounts for — so an abandoned write parks it until a later
        write lands.  Repeated defeats quarantine the core.
        """
        cfg = self.resilience
        for attempt in range(cfg.max_write_retries + 1):
            if attempt:
                self._iter_retries += 1
            try:
                self.cpufreq.set_speed_mhz(core_id, freq_mhz)
                self._core_fail_streak[core_id] = 0
                return True
            except MSRError:
                self._contained_errors += 1
        self._iter_failed_writes += 1
        self.chip.park(core_id, True)
        self._fault_parked.add(core_id)
        streak = self._core_fail_streak.get(core_id, 0) + 1
        self._core_fail_streak[core_id] = streak
        if streak >= cfg.quarantine_after:
            base = cfg.quarantine_probe_every
            self._quarantine[core_id] = _QuarantineEntry(base, base)
        return False

    def _unpark_if_fault_parked(self, core_id: int) -> None:
        if core_id in self._fault_parked:
            self._fault_parked.discard(core_id)
            if self._label_of[core_id] not in self._policy_parked:
                self.chip.park(core_id, False)

    def _tick_quarantine(self) -> None:
        """Count down quarantine probes; release cores that respond."""
        cfg = self.resilience
        for core_id in list(self._quarantine):
            entry = self._quarantine[core_id]
            entry.countdown -= 1
            if entry.countdown > 0:
                continue
            try:
                # single probe write, no retries: backoff discipline
                self.cpufreq.set_speed_mhz(
                    core_id, self.chip.platform.policy_floor_mhz
                )
            except MSRError:
                self._contained_errors += 1
                entry.interval = min(
                    entry.interval * 2, cfg.quarantine_probe_every * 8
                )
                entry.countdown = entry.interval
                continue
            del self._quarantine[core_id]
            self._core_fail_streak[core_id] = 0
            self._unpark_if_fault_parked(core_id)

    def _write_with_retry(self, cpu: int, address: int, value: int) -> bool:
        """Raw MSR write with the same bounded retry as core programming."""
        for attempt in range(self.resilience.max_write_retries + 1):
            if attempt:
                self._iter_retries += 1
            try:
                self.msr.write(cpu, address, value)
                return True
            except MSRError:
                self._contained_errors += 1
        self._iter_failed_writes += 1
        return False

    # -- record building --------------------------------------------------------------

    def _build_inputs(self, sample: TurbostatSample) -> PolicyInputs:
        telemetry = []
        for app in self.policy.apps:
            stats = sample.core(app.core_id)
            telemetry.append(
                AppTelemetry(
                    label=app.label,
                    active_frequency_mhz=stats.active_frequency_mhz,
                    ips=stats.ips,
                    busy_fraction=stats.busy_fraction,
                    power_w=stats.power_w,
                    parked=app.label in self._parked,
                )
            )
        return PolicyInputs(
            iteration=self._iteration,
            limit_w=self.policy.limit_w,
            package_power_w=sample.package_power_w,
            apps=tuple(telemetry),
            current_targets=dict(self._targets),
        )

    def _health(self, fresh: bool, holdover: bool) -> HealthRecord:
        return HealthRecord(
            mode=self._mode.value,
            telemetry_ok=fresh,
            holdover=holdover,
            consecutive_failures=self._consecutive_failures,
            retries=self._iter_retries,
            failed_writes=self._iter_failed_writes,
            quarantined=self.quarantined_cores,
            safe_mode_entries=self._safe_mode_entries,
            contained_errors=self._contained_errors,
        )

    def _record(
        self,
        now_s: float,
        sample: TurbostatSample | None,
        fresh: bool,
        holdover: bool,
    ) -> DaemonSample:
        if sample is not None:
            freq = {
                label: sample.core(core).active_frequency_mhz
                for label, core in self._core_of.items()
            }
            ips = {
                label: sample.core(core).ips
                for label, core in self._core_of.items()
            }
            core_power = {
                label: sample.core(core).power_w
                for label, core in self._core_of.items()
            }
            pkg_power = sample.package_power_w
        else:  # no telemetry at all yet: record a blind iteration
            freq = {label: 0.0 for label in self._core_of}
            ips = {label: 0.0 for label in self._core_of}
            core_power = {label: None for label in self._core_of}
            pkg_power = 0.0
        return DaemonSample(
            iteration=self._iteration,
            time_s=now_s,
            package_power_w=pkg_power,
            app_frequency_mhz=freq,
            app_ips=ips,
            app_power_w=core_power,
            app_parked={
                label: label in self._parked for label in self._core_of
            },
            targets_mhz=dict(self._targets),
            health=self._health(fresh, holdover),
        )
