"""The userspace power daemon (paper section 5).

``PowerDaemon`` is the component the paper actually built: it "takes a
list of programs as input with their priority and shares", pins them,
"then runs a monitoring loop.  In every loop iteration (1 second in our
implementation), it reads processor statistics, including power
(per-core or per-package), performance (retired instruction count), and
actual frequency" and re-programs P-states through the policy's
redistribution function.

The daemon owns the platform-level plumbing every policy shares:

* telemetry via the turbostat sampler,
* quantization of policy targets onto the DVFS grid,
* the Ryzen three-simultaneous-P-state reduction
  (:func:`repro.core.pstate_select.select_pstate_levels`),
* core parking for starved applications,
* programming frequencies through the cpufreq/MSR interface, and the
  hardware RAPL limit for the baseline policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.core.policy import Policy
from repro.core.pstate_select import select_pstate_levels
from repro.core.types import AppTelemetry, PolicyDecision, PolicyInputs
from repro.hw.cpufreq import CpuFreqInterface
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.telemetry.turbostat import Turbostat, TurbostatSample


@dataclass(frozen=True)
class DaemonSample:
    """One monitoring-loop iteration, for experiment post-processing."""

    iteration: int
    time_s: float
    package_power_w: float
    app_frequency_mhz: dict[str, float]
    app_ips: dict[str, float]
    app_power_w: dict[str, float | None]
    app_parked: dict[str, bool]
    targets_mhz: dict[str, float]


class PowerDaemon:
    """Monitoring loop driving one policy over one chip."""

    def __init__(
        self,
        chip: Chip,
        policy: Policy,
        *,
        interval_s: float = 1.0,
    ):
        if interval_s <= 0:
            raise ConfigError("daemon interval must be positive")
        if policy.platform is not chip.platform:
            raise ConfigError("policy and chip platform specs differ")
        self.chip = chip
        self.policy = policy
        self.interval_s = interval_s
        self.cpufreq = CpuFreqInterface(chip.platform, chip.msr)
        self.turbostat = Turbostat(chip.platform, chip.msr)
        self._core_of = {app.label: app.core_id for app in policy.apps}
        self._iteration = 0
        self._targets: dict[str, float] = {}
        self._parked: set[str] = set()
        self.history: list[DaemonSample] = []
        self._started = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Apply the policy's initial distribution and arm telemetry."""
        if self._started:
            raise ConfigError("daemon already started")
        if getattr(self.policy, "programs_hardware_limit", False):
            self.chip.set_rapl_limit(self.policy.limit_w)
        elif self.chip.rapl is not None:
            # software policies run with the hardware limiter at TDP, the
            # configuration the paper's daemon experiments use: the
            # policy enforces the operator limit, RAPL only backstops.
            self.chip.set_rapl_limit(self.chip.platform.power.tdp_watts)
        decision = self.policy.initial_distribution()
        self._apply(decision)
        self.turbostat.prime(self.chip.time_s)
        self._started = True

    def attach(self, engine: SimEngine) -> None:
        """Register the monitoring loop with a simulation engine."""
        if not self._started:
            self.start()
        engine.every(self.interval_s, self.iteration)

    # -- one loop iteration ---------------------------------------------------------

    def iteration(self, now_s: float) -> DaemonSample:
        """Read statistics, run the policy, program the hardware."""
        sample = self.turbostat.sample(now_s)
        inputs = self._build_inputs(sample)
        decision = self.policy.redistribute(inputs)
        self._apply(decision)
        self._iteration += 1
        record = DaemonSample(
            iteration=self._iteration,
            time_s=now_s,
            package_power_w=sample.package_power_w,
            app_frequency_mhz={
                label: sample.core(core).active_frequency_mhz
                for label, core in self._core_of.items()
            },
            app_ips={
                label: sample.core(core).ips
                for label, core in self._core_of.items()
            },
            app_power_w={
                label: sample.core(core).power_w
                for label, core in self._core_of.items()
            },
            app_parked={
                label: label in self._parked for label in self._core_of
            },
            targets_mhz=dict(self._targets),
        )
        self.history.append(record)
        return record

    def _build_inputs(self, sample: TurbostatSample) -> PolicyInputs:
        telemetry = []
        for app in self.policy.apps:
            stats = sample.core(app.core_id)
            telemetry.append(
                AppTelemetry(
                    label=app.label,
                    active_frequency_mhz=stats.active_frequency_mhz,
                    ips=stats.ips,
                    busy_fraction=stats.busy_fraction,
                    power_w=stats.power_w,
                    parked=app.label in self._parked,
                )
            )
        return PolicyInputs(
            iteration=self._iteration,
            limit_w=self.policy.limit_w,
            package_power_w=sample.package_power_w,
            apps=tuple(telemetry),
            current_targets=dict(self._targets),
        )

    def _apply(self, decision: PolicyDecision) -> None:
        decision.validate(set(self._core_of))
        programs = getattr(self.policy, "programs_frequencies", True)
        running_targets = {
            label: freq
            for label, freq in decision.targets.items()
            if label not in decision.parked
        }
        if running_targets and programs:
            quantized = select_pstate_levels(
                self.chip.platform, running_targets
            )
        else:
            quantized = {}
        for label, core_id in self._core_of.items():
            if label in decision.parked:
                self.chip.park(core_id, True)
                continue
            self.chip.park(core_id, False)
            if programs:
                self.cpufreq.set_speed_mhz(core_id, quantized[label])
        self._targets = dict(decision.targets)
        self._parked = set(decision.parked)
