"""Shared types for the policy layer.

A :class:`ManagedApp` is the daemon's view of one pinned application:
its core, its operator-assigned shares or priority, and (for performance
shares) the offline-measured baseline IPS the paper normalizes against.

Policies are pure functions of :class:`PolicyInputs` (the last monitoring
interval's telemetry) to :class:`PolicyDecision` (new per-app frequency
targets plus which apps to park), which keeps them testable without a
simulator in the loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigError, ShareError


class Priority(enum.Enum):
    """Two-level priority model (paper section 4.1)."""

    HIGH = "high"
    LOW = "low"


@dataclass(frozen=True)
class ManagedApp:
    """One application under the daemon's control."""

    label: str
    core_id: int
    shares: float = 1.0
    priority: Priority = Priority.HIGH
    #: max frequency this app can sustain (AVX cap applies), MHz.
    max_frequency_mhz: float | None = None
    #: offline standalone IPS at maximum frequency; required by the
    #: performance-shares policy (paper section 5.2).
    baseline_ips: float | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ConfigError("managed app needs a label")
        if self.shares <= 0:
            raise ShareError(f"{self.label}: shares must be positive")
        if self.baseline_ips is not None and self.baseline_ips <= 0:
            raise ConfigError(f"{self.label}: baseline IPS must be positive")


@dataclass(frozen=True)
class AppTelemetry:
    """Per-app measurements for one monitoring interval."""

    label: str
    active_frequency_mhz: float
    ips: float
    busy_fraction: float
    #: per-core power; None on platforms without per-core energy (Skylake).
    power_w: float | None
    parked: bool


@dataclass(frozen=True)
class PolicyInputs:
    """Everything a policy may look at in one iteration."""

    iteration: int
    limit_w: float
    package_power_w: float
    apps: tuple[AppTelemetry, ...]
    #: the targets the policy set last iteration (label -> MHz).
    current_targets: dict[str, float]

    def telemetry(self, label: str) -> AppTelemetry:
        for app in self.apps:
            if app.label == label:
                return app
        raise ConfigError(f"no telemetry for app {label!r}")

    @property
    def power_error_w(self) -> float:
        """Positive when there is headroom, negative when over limit."""
        return self.limit_w - self.package_power_w


@dataclass
class PolicyDecision:
    """New frequency targets (continuous MHz, pre-quantization) and the
    set of apps to park (deep idle; starvation)."""

    targets: dict[str, float] = field(default_factory=dict)
    parked: set[str] = field(default_factory=set)

    def validate(self, labels: set[str]) -> None:
        unknown = (set(self.targets) | self.parked) - labels
        if unknown:
            raise ConfigError(f"decision references unknown apps: {unknown}")
        for label, freq in self.targets.items():
            if label not in self.parked and freq <= 0:
                raise ConfigError(
                    f"{label}: non-positive frequency target {freq}"
                )
