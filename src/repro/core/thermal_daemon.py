"""thermald-like thermal management daemon (paper section 2.2).

Linux's *thermald* lets an operator set thermal limits; when triggered
it uses P-states, RAPL, C-states or clock gating to reduce power, and —
as the paper notes — "depending on the mechanisms enabled ... it can
have differing effects on application performance".

:class:`ThermalDaemon` closes the loop over the lumped
:class:`~repro.sim.thermal.ThermalModel`: it watches package temperature
and, when the trip point nears, lowers a package power target that it
enforces through either the hardware RAPL limiter (global, unfair) or a
supplied per-application policy (differential) — demonstrating the
paper's point that thermal pressure can be delivered per-application
just like power limits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.chip import Chip
from repro.sim.thermal import ThermalModel
from repro.units import clamp


@dataclass(frozen=True)
class ThermalDaemonConfig:
    """Trip points and controller constants."""

    #: temperature at which power reduction begins, Celsius.
    trip_c: float = 80.0
    #: proportional gain: watts of target reduction per degree over trip.
    gain_w_per_c: float = 2.0
    #: bounds for the derived power target.
    min_target_w: float = 20.0
    max_target_w: float = 85.0

    def __post_init__(self) -> None:
        if self.gain_w_per_c <= 0:
            raise ConfigError("gain must be positive")
        if not self.min_target_w < self.max_target_w:
            raise ConfigError("bad target bounds")


class ThermalDaemon:
    """Thermal-limit governor over the chip's thermal model.

    Call :meth:`step` every simulator tick (it is cheap); it advances
    the thermal model and derives the current power target.  The caller
    applies the target — through the RAPL limiter or as the limit input
    of a per-application policy — at its own control cadence via
    :attr:`power_target_w`.
    """

    def __init__(
        self,
        chip: Chip,
        thermal: ThermalModel,
        config: ThermalDaemonConfig | None = None,
    ):
        self.chip = chip
        self.thermal = thermal
        self.config = config or ThermalDaemonConfig()
        self.power_target_w = self.config.max_target_w
        self.trips = 0
        self._over_trip = False

    @property
    def temperature_c(self) -> float:
        return self.thermal.temperature_c

    def step(self) -> None:
        """Advance the thermal model one tick and update the target."""
        self.thermal.step(self.chip.last_package_power_w, self.chip.tick_s)
        over_c = self.thermal.temperature_c - self.config.trip_c
        if over_c > 0:
            if not self._over_trip:
                self.trips += 1
                self._over_trip = True
            target = self.config.max_target_w - over_c * (
                self.config.gain_w_per_c
            )
        else:
            self._over_trip = False
            target = self.config.max_target_w
        self.power_target_w = clamp(
            target, self.config.min_target_w, self.config.max_target_w
        )

    def attach(self, engine) -> None:
        """Register with a sim engine at tick granularity."""
        engine.every(self.chip.tick_s, lambda _t: self.step())

    def enforce_with_rapl(self) -> None:
        """Program the current target into the hardware RAPL limiter
        (the global, priority-oblivious enforcement path)."""
        if self.chip.rapl is None:
            raise ConfigError("platform has no RAPL limiter")
        lo, hi = self.chip.platform.rapl_limit_range_w
        self.chip.set_rapl_limit(clamp(self.power_target_w, lo, hi))
