"""Performance shares (paper sections 4.2 and 5.2).

Applications' *performance*, normalized to their standalone performance
at maximum frequency (measured offline), is kept proportional to shares.
The paper uses instructions-per-second as the performance proxy for its
single-threaded workloads and notes the policy's weakness: IPS moves
with program phases, so the control loop keeps rebalancing — the
under/over-shoot visible in Fig 10.

Control loop:

* the power limit converts to a performance budget through the naive
  model ``PerformanceDelta = alpha * MaxPerformance * NumAvailableCores``
  where MaxPerformance is 1.0 (normalized) per core,
* the *initial distribution* splits the performance budget by share
  ratio into per-app normalized performance limits,
* the *redistribution function* converts the power error to performance
  and spreads it over non-saturated apps (min-funding revocation),
* the *translation function* converts per-app performance targets to
  frequencies with a proportional correction from measured performance:
  ``f_new = f_cur * target / measured``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.core.minfund import Claim, pool_bounds, proportional_targets, refill_pool
from repro.core.policy import Policy, PolicyConfig
from repro.core.types import ManagedApp, PolicyDecision, PolicyInputs
from repro.hw.platform import PlatformSpec
from repro.units import clamp

#: normalized performance of one core running flat-out (the baseline).
_MAX_PERFORMANCE = 1.0
#: floor for the normalized performance target; keeps the translation
#: well-defined and mirrors the paper's no-starvation rule for shares.
_MIN_PERFORMANCE = 0.02


class PerformanceSharesPolicy(Policy):
    """Proportional shares of normalized application performance."""

    name = "performance-shares"

    #: per-iteration bounds on the multiplicative frequency correction;
    #: keeps one noisy IPS sample from slamming the operating point.
    max_step_up = 1.25
    max_step_down = 0.85
    #: iterations an app detected as frequency-insensitive is exempt
    #: from further cuts before the policy probes again.
    insensitive_hold_iterations = 10

    def __init__(
        self,
        platform: PlatformSpec,
        apps: list[ManagedApp],
        limit_w: float,
        config: PolicyConfig | None = None,
    ):
        super().__init__(platform, apps, limit_w, config)
        for app in apps:
            if app.baseline_ips is None:
                raise ConfigError(
                    f"{app.label}: performance shares require an offline "
                    "baseline IPS (run the app alone at max frequency)"
                )
        self._perf_targets: dict[str, float] = {}
        self._freq_targets: dict[str, float] = {}
        self._pool_perf = 0.0
        # sensitivity tracking: last (granted frequency, measured perf)
        # per app, plus an iteration until which cuts are frozen
        self._last_observation: dict[str, tuple[float, float]] = {}
        self._insensitive_until: dict[str, int] = {}

    # -- helpers ---------------------------------------------------------------

    def _baseline(self, label: str) -> float:
        for app in self.apps:
            if app.label == label:
                assert app.baseline_ips is not None
                return app.baseline_ips
        raise ConfigError(f"unknown app {label!r}")

    def measured_performance(self, inputs: PolicyInputs, label: str) -> float:
        """IPS normalized to the offline standalone baseline."""
        telemetry = inputs.telemetry(label)
        return telemetry.ips / self._baseline(label)

    def _perf_claims(self) -> list[Claim]:
        return [
            Claim(
                label=app.label,
                shares=app.shares,
                current=self._perf_targets.get(app.label, 0.0),
                lo=_MIN_PERFORMANCE,
                hi=_MAX_PERFORMANCE,
            )
            for app in self.apps
        ]

    def _update_sensitivity(
        self, label: str, granted_mhz: float, measured_perf: float,
        iteration: int,
    ) -> None:
        """Detect frequency-insensitive apps and freeze cuts on them.

        IPS is a poor proxy for apps whose throughput is load-determined
        rather than frequency-determined (the closed-loop websearch
        service, or heavily memory-bound code).  If a frequency cut of
        more than ~3% produced less than a third of the proportional
        performance drop, cutting further only hurts latency without
        reclaiming "performance" — the highest-*useful*-frequency
        consideration of paper section 4.4 — so the app is treated as
        saturated-at-minimum for a hold period.
        """
        previous = self._last_observation.get(label)
        self._last_observation[label] = (granted_mhz, measured_perf)
        if previous is None or granted_mhz <= 0:
            return
        prev_freq, prev_perf = previous
        if prev_freq <= 0 or prev_perf <= 1e-9:
            return
        freq_drop = 1.0 - granted_mhz / prev_freq
        if freq_drop < 0.03:
            return
        perf_drop = 1.0 - measured_perf / prev_perf
        if perf_drop < freq_drop / 3.0:
            self._insensitive_until[label] = (
                iteration + self.insensitive_hold_iterations
            )

    def _translate(
        self,
        label: str,
        measured_perf: float,
        iteration: int,
        over_limit: bool,
    ) -> float:
        """Performance target -> frequency via proportional correction."""
        target = self._perf_targets[label]
        current_freq = self._freq_targets[label]
        if measured_perf <= 1e-6:
            # no signal yet (app just started); linear first guess
            freq = target * self.platform.max_frequency_mhz
        else:
            ratio = clamp(
                target / measured_perf, self.max_step_down, self.max_step_up
            )
            if (
                ratio < 1.0
                and not over_limit
                and iteration < self._insensitive_until.get(label, 0)
            ):
                # frozen: cuts buy no performance back — but the freeze
                # never overrides limit enforcement
                ratio = 1.0
            freq = current_freq * ratio
        app = next(a for a in self.apps if a.label == label)
        return clamp(
            freq, self.min_frequency, self.achievable_max_frequency(app)
        )

    # -- the three functions -----------------------------------------------------

    def initial_distribution(self) -> PolicyDecision:
        performance_budget = (
            self.alpha(self.limit_w) * _MAX_PERFORMANCE * len(self.apps)
        )
        self._perf_targets = proportional_targets(
            performance_budget, self._perf_claims()
        )
        self._pool_perf = sum(self._perf_targets.values())
        targets = {}
        for app in self.apps:
            freq = self._perf_targets[app.label] * self.platform.max_frequency_mhz
            targets[app.label] = clamp(
                freq, self.min_frequency, self.achievable_max_frequency(app)
            )
        self._freq_targets = dict(targets)
        return PolicyDecision(targets=targets)

    def redistribute(self, inputs: PolicyInputs) -> PolicyDecision:
        error_w = self.scaled_step(inputs.power_error_w)
        # repro-lint: disable=float-equality — scaled_step deadband returns literal 0.0
        if error_w != 0.0:
            performance_delta = (
                self.alpha(error_w) * _MAX_PERFORMANCE * len(self.apps)
            )
            claims = self._perf_claims()
            lo, hi = pool_bounds(claims)
            self._pool_perf = min(
                max(self._pool_perf + performance_delta, lo), hi
            )
            self._perf_targets = refill_pool(self._pool_perf, claims)
        targets = {}
        for app in self.apps:
            measured = self.measured_performance(inputs, app.label)
            telemetry = inputs.telemetry(app.label)
            self._update_sensitivity(
                app.label,
                telemetry.active_frequency_mhz,
                measured,
                inputs.iteration,
            )
            targets[app.label] = self._translate(
                app.label,
                measured,
                inputs.iteration,
                over_limit=inputs.power_error_w < -self.config.deadband_w,
            )
        self._freq_targets = dict(targets)
        return PolicyDecision(targets=targets)
