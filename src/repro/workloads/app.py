"""Analytic application model.

Each application is described by a small set of parameters that determine
how it responds to frequency — the only properties the paper's policies
can observe or exploit:

* ``mem_fraction`` — fraction of runtime (at the reference frequency)
  spent stalled on memory.  Memory time does not scale with frequency
  (paper section 2.1, "Limitations of P-States"), so a high value makes
  the app insensitive to DVFS.
* ``c_eff`` — relative effective switching capacitance: the app's *power
  demand* at a given frequency.  The paper classifies apps as high demand
  (HD) or low demand (LD) on exactly this axis.
* ``uses_avx`` — AVX-heavy apps draw extra power and are frequency-capped
  by the platform (paper Figs 1 and 2: cam4, lbm, imagick).
* ``base_ipc`` — instructions per cycle when compute-bound, which turns
  the model into instruction counts for the IPS telemetry that
  performance shares consume.

The classic roofline-style runtime decomposition is

    ``T(f) = T_cpu(f_ref) * (f_ref / f) + T_mem``

which gives the throughput ratio used throughout::

    speedup(f) = 1 / ((1 - m) * f_ref / f + m)

Phases add small deterministic pseudo-random modulation on IPC and power
demand.  SPEC benchmarks are steady (the paper chose them for that), so
amplitudes are small, but they are what make performance shares jittery
relative to frequency shares (paper section 6.2).
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigError

#: name -> phase offset, computed once per app model name.
_PHASE_OFFSET_CACHE: dict[str, float] = {}


@dataclass(frozen=True)
class AppPhase:
    """Deterministic sinusoidal modulation of app behaviour.

    ``ipc_amplitude`` and ``power_amplitude`` are relative (0.05 = +/-5%);
    ``period_s`` is the phase period in seconds.
    """

    ipc_amplitude: float = 0.0
    power_amplitude: float = 0.0
    period_s: float = 40.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.ipc_amplitude < 1.0:
            raise ConfigError("ipc_amplitude must be in [0, 1)")
        if not 0.0 <= self.power_amplitude < 1.0:
            raise ConfigError("power_amplitude must be in [0, 1)")
        if self.period_s <= 0.0:
            raise ConfigError("phase period must be positive")


@dataclass(frozen=True)
class AppModel:
    """Immutable description of an application's frequency response."""

    name: str
    #: total instructions to retire before the app completes; ``None``
    #: models a continuously running service.
    instructions: float | None
    mem_fraction: float
    c_eff: float
    base_ipc: float
    uses_avx: bool = False
    phase: AppPhase = field(default_factory=AppPhase)
    #: power multiplier applied while stalled on memory (stalled cores
    #: still clock but switch less logic).
    stall_power_factor: float = 0.45

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("app needs a name")
        if self.instructions is not None and self.instructions <= 0:
            raise ConfigError(f"{self.name}: instructions must be positive")
        if not 0.0 <= self.mem_fraction < 1.0:
            raise ConfigError(
                f"{self.name}: mem_fraction must be in [0, 1)"
            )
        if self.c_eff <= 0:
            raise ConfigError(f"{self.name}: c_eff must be positive")
        if self.base_ipc <= 0:
            raise ConfigError(f"{self.name}: base_ipc must be positive")
        if not 0.0 < self.stall_power_factor <= 1.0:
            raise ConfigError(
                f"{self.name}: stall_power_factor must be in (0, 1]"
            )

    # -- frequency response -------------------------------------------------

    def speedup(self, frequency_mhz: float, reference_mhz: float) -> float:
        """Throughput at ``frequency_mhz`` relative to ``reference_mhz``."""
        if frequency_mhz <= 0 or reference_mhz <= 0:
            raise ConfigError("frequencies must be positive")
        m = self.mem_fraction
        return 1.0 / ((1.0 - m) * reference_mhz / frequency_mhz + m)

    def ips(self, frequency_mhz: float, reference_mhz: float) -> float:
        """Instructions per second at a frequency.

        At the reference frequency the app retires ``base_ipc`` per cycle
        scaled by the non-stalled fraction, i.e. IPS_ref =
        base_ipc * f_ref * (1 - m) + memory-phase retirement, collapsed
        into the roofline form.
        """
        ips_ref = self.base_ipc * reference_mhz * 1e6
        return ips_ref * self.speedup(frequency_mhz, reference_mhz)

    def compute_activity(
        self, frequency_mhz: float, reference_mhz: float
    ) -> float:
        """Fraction of wall time spent compute-bound at this frequency.

        As frequency rises, compute shrinks while memory time is fixed, so
        activity falls — capturing why memory-bound apps save little power
        from high clocks and gain little performance.
        """
        m = self.mem_fraction
        cpu_time = (1.0 - m) * reference_mhz / frequency_mhz
        return cpu_time / (cpu_time + m)

    def activity_power_factor(
        self, frequency_mhz: float, reference_mhz: float
    ) -> float:
        """Time-weighted dynamic-power activity factor in (0, 1]."""
        active = self.compute_activity(frequency_mhz, reference_mhz)
        return active + (1.0 - active) * self.stall_power_factor

    # -- phase modulation ----------------------------------------------------

    def _phase_offset(self) -> float:
        # Per-app deterministic phase offset so co-running copies of
        # different apps do not modulate in lockstep.  Cached: it is hit
        # every simulator tick.
        cached = _PHASE_OFFSET_CACHE.get(self.name)
        if cached is None:
            digest = hashlib.sha256(self.name.encode()).digest()
            cached = digest[0] / 255.0 * 2.0 * math.pi
            # repro-lint: disable=shared-state-race — memo of a pure hash of the app name; identical in every process
            _PHASE_OFFSET_CACHE[self.name] = cached
        return cached

    def _phase_angle(self, sim_time_s: float) -> float:
        return (
            2.0 * math.pi * sim_time_s / self.phase.period_s
            + self._phase_offset()
        )

    def ipc_factor(self, sim_time_s: float) -> float:
        """Instantaneous IPC multiplier from phase behaviour."""
        # repro-lint: disable=float-equality — 0.0 amplitude is a config literal meaning "no phases"
        if self.phase.ipc_amplitude == 0.0:
            return 1.0
        return 1.0 + self.phase.ipc_amplitude * math.sin(
            self._phase_angle(sim_time_s)
        )

    def power_factor(self, sim_time_s: float) -> float:
        """Instantaneous power-demand multiplier from phase behaviour."""
        # repro-lint: disable=float-equality — 0.0 amplitude is a config literal meaning "no phases"
        if self.phase.power_amplitude == 0.0:
            return 1.0
        return 1.0 + self.phase.power_amplitude * math.sin(
            self._phase_angle(sim_time_s) * 0.5
        )

    def with_instructions(self, instructions: float | None) -> "AppModel":
        """Copy of this model with a different total work size."""
        return replace(self, instructions=instructions)


class RunningApp:
    """Mutable execution state of one :class:`AppModel` instance.

    Tracks retired instructions and completion.  A ``RunningApp`` is what
    gets placed onto a simulated core; several instances of the same model
    may run concurrently (the paper runs two copies of each app in the
    random experiments).
    """

    def __init__(self, model: AppModel, *, instance: int = 0):
        self.model = model
        self.instance = instance
        self.retired_instructions = 0.0
        self.elapsed_s = 0.0
        self.finished = False

    @property
    def label(self) -> str:
        return f"{self.model.name}#{self.instance}"

    def advance(
        self,
        dt_s: float,
        frequency_mhz: float,
        reference_mhz: float,
        sim_time_s: float,
        share: float = 1.0,
    ) -> float:
        """Run for ``dt_s`` seconds at ``frequency_mhz``.

        ``share`` scales residency for time-shared cores (fraction of the
        interval the app actually held the core).  Returns instructions
        retired this interval.
        """
        if self.finished:
            return 0.0
        if dt_s < 0 or not 0.0 <= share <= 1.0:
            raise ConfigError("bad advance arguments")
        rate = self.model.ips(frequency_mhz, reference_mhz)
        rate *= self.model.ipc_factor(sim_time_s)
        retired = rate * dt_s * share
        budget = self.model.instructions
        if budget is not None:
            remaining = budget - self.retired_instructions
            if retired >= remaining:
                retired = max(remaining, 0.0)
                self.finished = True
        self.retired_instructions += retired
        self.elapsed_s += dt_s * share
        return retired

    def progress(self) -> float:
        """Completed fraction in [0, 1]; services always report 0."""
        if self.model.instructions is None:
            return 0.0
        return min(
            1.0, self.retired_instructions / self.model.instructions
        )
