"""SPEC CPU2017-like benchmark catalog.

The paper evaluates with the 11-benchmark subset recommended by Limaye &
Adegbija's SPEC CPU2017 characterisation: *lbm, cactusBSSN, povray,
imagick, cam4, gcc, exchange2, deepsjeng, leela, perlbench, omnetpp*
(paper section 3.1).  We do not have SPEC sources or licenses, so each
entry is an :class:`~repro.workloads.app.AppModel` whose parameters are
calibrated to the qualitative behaviour the paper reports:

* **Demand class** — cactusBSSN/cam4/lbm/imagick are high demand (HD);
  gcc/leela and the rest are low demand (LD).  The headline experiments
  use *cactusBSSN* (HD) vs *leela* (LD) and Fig 1 uses *cam4* vs *gcc*.
* **AVX** — lbm, imagick and cam4 use AVX, making them power outliers and
  capping their frequency (Fig 2's saturation near 1.9 GHz on Skylake).
* **Frequency sensitivity** — exchange2 is highly frequency sensitive and
  perlbench relatively insensitive (Fig 11 commentary); lbm and omnetpp
  are memory bound.

Instruction totals are sized so each benchmark runs for roughly
``NOMINAL_RUNTIME_S`` at its platform reference frequency — long relative
to the daemon's 1 s control period, short enough to simulate quickly.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.app import AppModel, AppPhase

#: Target standalone runtime at the reference frequency, seconds.
NOMINAL_RUNTIME_S = 200.0

#: Reference frequency used to size instruction budgets (the paper's
#: Ryzen normalization point; actual experiments renormalize per platform).
_SIZING_FREQ_MHZ = 3000.0


def _sized(base_ipc: float, mem_fraction: float) -> float:
    """Instruction budget for ~NOMINAL_RUNTIME_S at the sizing frequency."""
    ips_ref = base_ipc * _SIZING_FREQ_MHZ * 1e6
    return ips_ref * NOMINAL_RUNTIME_S


def _bench(
    name: str,
    mem_fraction: float,
    c_eff: float,
    base_ipc: float,
    uses_avx: bool = False,
    ipc_amplitude: float = 0.02,
    power_amplitude: float = 0.02,
) -> AppModel:
    return AppModel(
        name=name,
        instructions=_sized(base_ipc, mem_fraction),
        mem_fraction=mem_fraction,
        c_eff=c_eff,
        base_ipc=base_ipc,
        uses_avx=uses_avx,
        phase=AppPhase(
            ipc_amplitude=ipc_amplitude,
            power_amplitude=power_amplitude,
            period_s=37.0,
        ),
    )


#: The 11-benchmark catalog.  c_eff ~1 is mid demand; >1.2 is the paper's
#: "high demand" class; AVX entries additionally pay the platform AVX
#: frequency cap and extra switching power.
SPEC_BENCHMARKS: dict[str, AppModel] = {
    bench.name: bench
    for bench in (
        # -- high demand ------------------------------------------------
        _bench("cactusBSSN", 0.28, 1.25, 1.10),
        _bench("cam4", 0.12, 1.38, 1.30, uses_avx=True, ipc_amplitude=0.04),
        _bench("lbm", 0.45, 1.30, 1.00, uses_avx=True),
        _bench("imagick", 0.05, 1.30, 2.40, uses_avx=True),
        # -- low demand ---------------------------------------------------
        _bench("gcc", 0.25, 0.85, 1.20, ipc_amplitude=0.05),
        _bench("leela", 0.08, 0.80, 1.40),
        _bench("povray", 0.04, 1.00, 2.00),
        _bench("exchange2", 0.02, 0.90, 2.20),
        _bench("deepsjeng", 0.10, 0.92, 1.60, ipc_amplitude=0.03),
        _bench("perlbench", 0.30, 0.88, 1.80, ipc_amplitude=0.06),
        _bench("omnetpp", 0.42, 0.75, 0.70, ipc_amplitude=0.04),
    )
}

#: Aliases matching the paper's naming (it calls gcc both "gcc" and
#: "cpugcc", and uses "exchange" in Table 3).
_ALIASES = {
    "cpugcc": "gcc",
    "exchange": "exchange2",
    "omentpp": "omnetpp",  # Table 3 typo in the paper
    "cactuBSSN": "cactusBSSN",
}


def spec_names() -> tuple[str, ...]:
    """Canonical benchmark names, stable order."""
    return tuple(SPEC_BENCHMARKS)


def spec_app(name: str, *, steady: bool = False) -> AppModel:
    """Look up a benchmark by name (paper aliases accepted).

    ``steady=True`` returns a continuously-running variant (no instruction
    budget) for steady-state policy experiments.
    """
    canonical = _ALIASES.get(name, name)
    try:
        model = SPEC_BENCHMARKS[canonical]
    except KeyError:
        known = ", ".join(spec_names())
        raise ConfigError(f"unknown benchmark {name!r}; known: {known}") from None
    if steady:
        return model.with_instructions(None)
    return model


#: Demand split used when composing priority mixes (paper section 4.1).
_HIGH_DEMAND = ("cactusBSSN", "cam4", "lbm", "imagick")


def high_demand_names() -> tuple[str, ...]:
    return _HIGH_DEMAND


def low_demand_names() -> tuple[str, ...]:
    return tuple(n for n in SPEC_BENCHMARKS if n not in _HIGH_DEMAND)
