"""The ``cpuburn`` power virus (paper sections 3.2 and 6.4).

cpuburn issues a tight loop of maximum-switching-activity instructions;
one core of it drew 32 W on the paper's Skylake at 3 GHz while nine cores
of websearch drew 44 W.  We model it as a service (never finishes) with
by far the highest effective capacitance in the catalog and zero memory
stall time, so its power demand scales all the way up the frequency
range.  It is deliberately *not* AVX-flagged: the classic cpuburn kernels
hammer the legacy FPU, and the paper runs it at the full 3 GHz.
"""

from __future__ import annotations

from repro.workloads.app import AppModel, AppPhase


def cpuburn() -> AppModel:
    """A maximum-power spin loop that runs until killed."""
    return AppModel(
        name="cpuburn",
        instructions=None,
        mem_fraction=0.0,
        c_eff=2.8,
        base_ipc=3.0,
        uses_avx=False,
        phase=AppPhase(),  # perfectly steady, by construction
        stall_power_factor=1.0,
    )
