"""Workload models: SPEC CPU2017-like apps, cpuburn, and websearch.

The paper drives its policies with 11 SPEC CPU2017 benchmarks, the
``cpuburn`` power virus and CloudSuite's ``websearch``.  We model each as
an analytic application whose performance and power demand respond to
frequency the way the measured programs do (see DESIGN.md section 2 for
the substitution argument).
"""

from repro.workloads.app import AppModel, AppPhase, RunningApp
from repro.workloads.spec import (
    SPEC_BENCHMARKS,
    spec_app,
    spec_names,
    high_demand_names,
    low_demand_names,
)
from repro.workloads.cpuburn import cpuburn
from repro.workloads.websearch import WebsearchCluster, WebsearchConfig
from repro.workloads.generator import RandomMixGenerator, table3_set
from repro.workloads.gaming import nop_padded, useful_fraction

__all__ = [
    "AppModel",
    "AppPhase",
    "RunningApp",
    "SPEC_BENCHMARKS",
    "spec_app",
    "spec_names",
    "high_demand_names",
    "low_demand_names",
    "cpuburn",
    "WebsearchCluster",
    "WebsearchConfig",
    "RandomMixGenerator",
    "table3_set",
    "nop_padded",
    "useful_fraction",
]
