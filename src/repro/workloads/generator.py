"""Random workload mixes (paper section 6.3, Table 3).

The paper draws random subsets of the 11 SPEC benchmarks (using
numbergenerator.org) to generalise beyond hand-picked HD/LD pairs.  The
two sets it reports are reproduced verbatim as :func:`table3_set`;
:class:`RandomMixGenerator` produces additional seeded mixes for wider
sweeps.
"""

from __future__ import annotations

import random

from repro.errors import ConfigError
from repro.workloads.app import AppModel
from repro.workloads.spec import spec_app, spec_names

#: Table 3 of the paper: application sets for the random experiments.
TABLE3_SETS: dict[str, tuple[str, ...]] = {
    "A": ("deepsjeng", "perlbench", "cactusBSSN", "exchange2", "gcc"),
    "B": ("deepsjeng", "omnetpp", "perlbench", "cam4", "lbm"),
}


def table3_set(which: str, *, steady: bool = True) -> list[AppModel]:
    """The paper's random set A or B, in Table 3 order (App. #0..#4)."""
    try:
        names = TABLE3_SETS[which.upper()]
    except KeyError:
        raise ConfigError(f"unknown Table 3 set {which!r}; use 'A' or 'B'") from None
    return [spec_app(name, steady=steady) for name in names]


class RandomMixGenerator:
    """Seeded generator of random SPEC subsets.

    Mirrors the paper's methodology: sample ``k`` distinct benchmarks,
    then optionally replicate each ``copies`` times (the paper runs two
    copies of each of 5 apps on the 10-core Skylake).
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def sample(
        self, k: int, *, copies: int = 1, steady: bool = True
    ) -> list[AppModel]:
        """Draw ``k`` distinct benchmarks, replicated ``copies`` times."""
        names = spec_names()
        if not 0 < k <= len(names):
            raise ConfigError(f"k must be in [1, {len(names)}]")
        if copies <= 0:
            raise ConfigError("copies must be positive")
        chosen = self._rng.sample(list(names), k)
        mix: list[AppModel] = []
        for name in chosen:
            app = spec_app(name, steady=steady)
            mix.extend([app] * copies)
        return mix

    def sample_names(self, k: int) -> list[str]:
        """Draw ``k`` distinct benchmark names without building models."""
        names = spec_names()
        if not 0 < k <= len(names):
            raise ConfigError(f"k must be in [1, {len(names)}]")
        return self._rng.sample(list(names), k)
