"""CloudSuite-websearch-like latency-sensitive workload.

The paper's unfair-throttling and latency experiments (sections 3.2 and
6.4, Figs 5, 12, 13) co-locate *websearch* — a multithreaded,
latency-sensitive service loaded with 300 users for 600 s — with the
*cpuburn* power virus, and report normalized 90th-percentile latencies.

We model websearch as a **closed-loop interactive cluster**: ``n_users``
users repeatedly think (exponential think time), submit a search request,
and wait for its response.  Requests queue FCFS onto the serving cores;
service demand is split into a frequency-scaled CPU part and a fixed
memory part, so throttling the serving cores inflates service times and,
through queueing, blows up the latency tail — the convex degradation
Fig 5 shows below 40 W.

The closed loop is essential: an open Poisson stream would diverge to
infinite latency under throttling, while 300 closed users saturate
gracefully exactly as the measured system does.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import percentile


@dataclass(frozen=True)
class WebsearchConfig:
    """Tunables for the websearch cluster.

    Defaults are calibrated so nine serving cores at 3 GHz draw roughly
    the 44 W the paper reports and run at moderate utilization, leaving
    latency healthy at 85 W and collapsing below ~40 W package limits.
    """

    n_users: int = 300
    #: mean think time between a user's requests, seconds.
    think_time_s: float = 1.0
    #: mean CPU service demand per request at the reference frequency, s.
    service_cpu_s: float = 0.010
    #: frequency-invariant (memory/IO) part of each request, seconds.
    service_mem_s: float = 0.008
    #: reference frequency for the CPU part, MHz.
    reference_mhz: float = 3000.0
    #: effective capacitance while serving (low demand per core).
    c_eff: float = 0.62
    base_ipc: float = 1.1
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.n_users <= 0:
            raise ConfigError("websearch needs at least one user")
        if min(self.think_time_s, self.service_cpu_s) <= 0:
            raise ConfigError("think and CPU service times must be positive")
        if self.service_mem_s < 0:
            raise ConfigError("memory service time cannot be negative")

    def service_time_s(self, frequency_mhz: float) -> float:
        """Mean request service time on a core at ``frequency_mhz``."""
        return (
            self.service_cpu_s * self.reference_mhz / frequency_mhz
            + self.service_mem_s
        )


@dataclass
class _Request:
    submitted_at: float
    #: remaining CPU work, expressed in reference-frequency seconds.
    cpu_work_s: float
    #: remaining memory work, in wall seconds.
    mem_work_s: float


@dataclass
class _CoreState:
    current: _Request | None = None
    busy_time_s: float = 0.0
    instructions: float = 0.0
    #: lifetime busy seconds; unlike ``busy_time_s`` this survives
    #: :meth:`WebsearchCluster.take_core_sample`.
    total_busy_s: float = 0.0


class WebsearchCluster:
    """Closed-loop request-serving cluster spread over a set of cores.

    Drive it from the simulation by calling :meth:`advance` every tick
    with the current per-core frequencies; attach its per-core loads to
    simulated cores via :meth:`core_load` (see
    :class:`repro.sim.core.ClusterCoreLoad`).
    """

    def __init__(self, core_ids: list[int], config: WebsearchConfig | None = None):
        if not core_ids:
            raise ConfigError("websearch cluster needs serving cores")
        if len(set(core_ids)) != len(core_ids):
            raise ConfigError("duplicate serving core ids")
        self.config = config or WebsearchConfig()
        self.core_ids = list(core_ids)
        self._rng = random.Random(self.config.seed)
        self._queue: list[_Request] = []
        self._cores: dict[int, _CoreState] = {c: _CoreState() for c in core_ids}
        #: (wakeup_time, sequence) heap of thinking users.
        self._thinkers: list[tuple[float, int]] = []
        self._think_seq = 0
        self._latencies: list[float] = []
        self._completed = 0
        self._now = 0.0
        for _ in range(self.config.n_users):
            self._schedule_think(0.0)

    # -- internal helpers ----------------------------------------------------

    def _schedule_think(self, now: float) -> None:
        wake = now + self._rng.expovariate(1.0 / self.config.think_time_s)
        heapq.heappush(self._thinkers, (wake, self._think_seq))
        self._think_seq += 1

    def _new_request(self, now: float) -> _Request:
        cfg = self.config
        cpu = self._rng.expovariate(1.0 / cfg.service_cpu_s)
        mem = (
            self._rng.expovariate(1.0 / cfg.service_mem_s)
            if cfg.service_mem_s > 0
            else 0.0
        )
        return _Request(submitted_at=now, cpu_work_s=cpu, mem_work_s=mem)

    def _admit_arrivals(self, until: float) -> None:
        while self._thinkers and self._thinkers[0][0] <= until:
            wake, _seq = heapq.heappop(self._thinkers)
            self._queue.append(self._new_request(max(wake, self._now)))

    # -- simulation interface --------------------------------------------------

    def advance(self, dt_s: float, core_freqs_mhz: dict[int, float]) -> None:
        """Advance the cluster by ``dt_s`` at the given core frequencies.

        Requests in service consume frequency-scaled CPU work then fixed
        memory work; a core may complete several short requests within one
        tick.  Completed requests record their latency and put the user
        back to thinking.
        """
        if dt_s <= 0:
            raise ConfigError("dt must be positive")
        end = self._now + dt_s
        self._admit_arrivals(end)
        cfg = self.config
        for core_id in self.core_ids:
            freq = core_freqs_mhz.get(core_id)
            if freq is None or freq <= 0:
                continue  # core parked: requests wait in queue
            state = self._cores[core_id]
            budget = dt_s
            scale = cfg.reference_mhz / freq  # CPU seconds -> wall seconds
            while budget > 1e-12:
                if state.current is None:
                    if not self._queue:
                        break
                    state.current = self._queue.pop(0)
                req = state.current
                # serve CPU part first, then memory part
                cpu_wall = req.cpu_work_s * scale
                if cpu_wall > budget:
                    consumed_cpu = budget / scale
                    req.cpu_work_s -= consumed_cpu
                    state.busy_time_s += budget
                    state.total_busy_s += budget
                    state.instructions += (
                        cfg.base_ipc * freq * 1e6 * budget
                    )
                    budget = 0.0
                    break
                budget -= cpu_wall
                state.busy_time_s += cpu_wall
                state.total_busy_s += cpu_wall
                state.instructions += cfg.base_ipc * freq * 1e6 * cpu_wall
                req.cpu_work_s = 0.0
                if req.mem_work_s > budget:
                    req.mem_work_s -= budget
                    state.busy_time_s += budget
                    state.total_busy_s += budget
                    budget = 0.0
                    break
                budget -= req.mem_work_s
                state.busy_time_s += req.mem_work_s
                state.total_busy_s += req.mem_work_s
                finish_time = end - budget
                # sub-tick approximation: arrivals admitted mid-tick can
                # be served by budget that notionally preceded them;
                # completion cannot precede submission, so clamp
                latency = max(finish_time - req.submitted_at, 1e-9)
                self._latencies.append(latency)
                self._completed += 1
                self._schedule_think(finish_time)
                state.current = None
                self._admit_arrivals(end)
        self._now = end

    # -- results ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self._now

    @property
    def completed_requests(self) -> int:
        return self._completed

    def queue_length(self) -> int:
        return len(self._queue)

    def latency_percentile(self, pct: float = 90.0) -> float:
        """Percentile of completed-request latency, seconds."""
        if not self._latencies:
            raise ConfigError("no completed requests yet")
        return percentile(self._latencies, pct)

    def throughput(self) -> float:
        """Completed requests per second since the start."""
        if self._now <= 0:
            return 0.0
        return self._completed / self._now

    def core_utilization(self, core_id: int) -> float:
        """Lifetime busy fraction of one serving core."""
        if self._now <= 0:
            return 0.0
        return self._cores[core_id].total_busy_s / self._now

    def take_core_sample(self, core_id: int) -> tuple[float, float]:
        """Consume and return (busy_seconds, instructions) accumulated on a
        core since the last call.  Used by the per-core load adapter."""
        state = self._cores[core_id]
        sample = (state.busy_time_s, state.instructions)
        state.busy_time_s = 0.0
        state.instructions = 0.0
        return sample

    def reset_latency_window(self) -> None:
        """Discard recorded latencies (e.g. to drop warm-up samples)."""
        self._latencies.clear()

    def latencies(self) -> list[float]:
        return list(self._latencies)
