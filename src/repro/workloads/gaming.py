"""Game-ability of power-allocation policies (paper section 8).

The paper's conclusions warn that "an application can vary its
instruction mix to change its measured resource usage": padding with
NOPs inflates the IPS a performance-share policy measures, and adding
vector/floating-point busywork inflates measured power.  A sound policy
ensures "any gaming steps an application takes have an overall larger
negative impact on their performance than any benefit they might
receive".

:func:`nop_padded` builds the gamed variant of an application: it
retires more *instructions* per second (NOPs are nearly free) but every
retired instruction carries less useful work, and the padding costs a
little real pipeline throughput.  The gaming experiment
(:mod:`repro.experiments.gaming_exp`) runs gamed and honest copies under
the performance-share policy and measures *useful* throughput — which is
what the gamer actually cares about.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import ConfigError
from repro.workloads.app import AppModel


def nop_padded(
    app: AppModel,
    nop_fraction: float,
    *,
    pipeline_overhead: float = 0.05,
) -> AppModel:
    """A variant of ``app`` padded so a ``nop_fraction`` of retired
    instructions are NOPs.

    ``nop_fraction = 0.5`` doubles apparent instruction throughput per
    unit of useful work.  ``pipeline_overhead`` is the real slowdown the
    padding inflicts on useful work (fetch/decode bandwidth the NOPs
    consume).  Use :func:`useful_fraction` to convert the gamed app's
    measured IPS back to useful IPS.
    """
    if not 0.0 <= nop_fraction < 1.0:
        raise ConfigError("nop_fraction must be in [0, 1)")
    if not 0.0 <= pipeline_overhead < 1.0:
        raise ConfigError("pipeline_overhead must be in [0, 1)")
    # repro-lint: disable=float-equality — 0.0 is the config-literal "feature off" sentinel
    if nop_fraction == 0.0:
        return app
    inflation = 1.0 / (1.0 - nop_fraction)
    gamed_ipc = app.base_ipc * inflation * (1.0 - pipeline_overhead)
    gamed = replace(
        app,
        name=f"{app.name}+nop{int(100 * nop_fraction)}",
        base_ipc=gamed_ipc,
        # the instruction *budget* inflates identically, so wall-clock
        # runtime semantics are preserved modulo the overhead
        instructions=(
            app.instructions * inflation
            if app.instructions is not None
            else None
        ),
    )
    return gamed


def useful_fraction(nop_fraction: float) -> float:
    """Fraction of a gamed app's retired instructions that do real work."""
    if not 0.0 <= nop_fraction < 1.0:
        raise ConfigError("nop_fraction must be in [0, 1)")
    return 1.0 - nop_fraction
