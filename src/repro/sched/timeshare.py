"""Proportional-share time sharing of a single core (paper section 4.3).

The paper demonstrates, using docker CPU shares, that when two apps time
share one core the core's average power is the **residency-weighted sum**
of the individual apps' power draws (Fig 6).  :class:`TimeSharedCoreLoad`
implements that: it is a :class:`~repro.sim.core.CoreLoad` multiplexing
several applications on one core with configurable shares, like the
cgroups ``cpu.shares`` / docker ``--cpu-shares`` mechanism.

Each tick the runnable apps split the core's time in proportion to their
shares; the reported effective capacitance is the same residency-weighted
mixture, which is exactly what produces the paper's linear power
interpolation between the two standalone draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError, ShareError
from repro.sim.core import LoadSample
from repro.workloads.app import RunningApp


@dataclass
class TimeShareEntry:
    """One app in the time-share group with its CPU shares."""

    app: RunningApp
    shares: float

    def __post_init__(self) -> None:
        if self.shares <= 0:
            raise ShareError(
                f"{self.app.label}: CPU shares must be positive"
            )


class TimeSharedCoreLoad:
    """Multiple apps sharing one core by proportional CPU shares."""

    def __init__(
        self,
        entries: list[TimeShareEntry],
        reference_mhz: float,
        *,
        absolute_quotas: bool = False,
    ):
        """``absolute_quotas=True`` treats shares as fixed fractions of
        the core (docker ``--cpus`` style: 0.5 = 50% of the core) whose
        sum must be <= 1, leaving the remainder idle — the configuration
        of the paper's Fig 6.  The default treats them as relative
        weights that always fill the core (``--cpu-shares`` style)."""
        if not entries:
            raise SchedulerError("time-share group cannot be empty")
        labels = [e.app.label for e in entries]
        if len(set(labels)) != len(labels):
            raise SchedulerError("duplicate app labels in time-share group")
        if reference_mhz <= 0:
            raise SchedulerError("reference frequency must be positive")
        if absolute_quotas and sum(e.shares for e in entries) > 1.0 + 1e-9:
            raise ShareError("absolute quotas cannot exceed 100% of the core")
        self.entries = list(entries)
        self.reference_mhz = reference_mhz
        self.absolute_quotas = absolute_quotas

    @property
    def name(self) -> str:
        return "+".join(e.app.label for e in self.entries)

    @property
    def uses_avx(self) -> bool:
        return any(
            e.app.model.uses_avx and not e.app.finished for e in self.entries
        )

    def set_shares(self, label: str, shares: float) -> None:
        """Adjust one app's CPU shares at runtime.

        Dynamic share adjustment is the knob the paper suggests for the
        mixed-demand/equal-share case: give low-demand apps more runtime
        to compensate for frequency throttling (section 4.3, case 2).
        """
        if shares <= 0:
            raise ShareError("CPU shares must be positive")
        for entry in self.entries:
            if entry.app.label == label:
                old = entry.shares
                entry.shares = shares
                if self.absolute_quotas and (
                    sum(e.shares for e in self.entries) > 1.0 + 1e-9
                ):
                    entry.shares = old
                    raise ShareError(
                        "absolute quotas cannot exceed 100% of the core"
                    )
                return
        raise SchedulerError(f"no app {label!r} in time-share group")

    def residencies(self) -> dict[str, float]:
        """Current core-time split among unfinished apps."""
        runnable = [e for e in self.entries if not e.app.finished]
        if self.absolute_quotas:
            return {e.app.label: e.shares for e in runnable}
        total = sum(e.shares for e in runnable)
        if total <= 0:
            return {}
        return {e.app.label: e.shares / total for e in runnable}

    def advance(
        self, dt_s: float, frequency_mhz: float, sim_time_s: float
    ) -> LoadSample:
        split = self.residencies()
        if not split:
            return LoadSample(0.0, 0.0, 0.0, done=True)
        instructions = 0.0
        c_eff_weighted = 0.0
        busy = 0.0
        for entry in self.entries:
            share = split.get(entry.app.label)
            if share is None:
                continue
            retired = entry.app.advance(
                dt_s, frequency_mhz, self.reference_mhz, sim_time_s,
                share=share,
            )
            instructions += retired
            model = entry.app.model
            c_eff_weighted += share * (
                model.c_eff
                * model.activity_power_factor(frequency_mhz, self.reference_mhz)
                * model.power_factor(sim_time_s)
            )
            busy += share
        done = all(e.app.finished for e in self.entries)
        busy = min(1.0, busy)
        # c_eff is defined per unit of busy time (the power model scales
        # by busy_fraction); normalize the residency-weighted mixture
        c_eff = c_eff_weighted / busy if busy > 0 else 0.0
        return LoadSample(
            instructions=instructions,
            busy_fraction=busy,
            c_eff=c_eff,
            done=done,
        )
