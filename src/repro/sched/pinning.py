"""Core pinning: place applications on dedicated cores.

The paper's daemon "takes a list of programs as input ... Applications
are pinned to cores" (section 5).  :func:`pin_apps` performs that
placement onto a simulated chip and returns the mapping the policy layer
works with.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerError
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.workloads.app import AppModel, RunningApp


@dataclass(frozen=True)
class Placement:
    """One pinned application instance."""

    core_id: int
    app: RunningApp
    load: BatchCoreLoad

    @property
    def label(self) -> str:
        return self.app.label


def pin_apps(
    chip: Chip,
    apps: list[AppModel],
    *,
    core_ids: list[int] | None = None,
) -> list[Placement]:
    """Pin one application instance per core.

    Apps are placed onto ``core_ids`` in order (default: cores 0..n-1).
    Instances of the same model get distinct instance numbers so labels
    stay unique, matching how the paper runs two copies of each random
    app.
    """
    if not apps:
        raise SchedulerError("no applications to place")
    if core_ids is None:
        core_ids = list(range(len(apps)))
    if len(core_ids) != len(apps):
        raise SchedulerError(
            f"{len(apps)} apps but {len(core_ids)} cores given"
        )
    if len(set(core_ids)) != len(core_ids):
        raise SchedulerError("duplicate core ids in placement")
    if len(apps) > chip.platform.n_cores:
        raise SchedulerError(
            f"{len(apps)} apps exceed {chip.platform.n_cores} cores; "
            "space-sharing requires one core per app (use time sharing "
            "for oversubscription)"
        )
    counts: dict[str, int] = {}
    placements: list[Placement] = []
    reference = chip.platform.reference_frequency_mhz
    for core_id, model in zip(core_ids, apps):
        instance = counts.get(model.name, 0)
        counts[model.name] = instance + 1
        running = RunningApp(model, instance=instance)
        load = BatchCoreLoad(running, reference)
        chip.assign_load(core_id, load)
        placements.append(Placement(core_id=core_id, app=running, load=load))
    return placements
