"""Scheduling substrate: core pinning and single-core time sharing.

The paper pins one application per core (space sharing) for all the main
experiments, and separately studies time sharing of one core between two
applications with docker CPU shares (section 4.3, Fig 6).
"""

from repro.sched.pinning import Placement, pin_apps
from repro.sched.timeshare import TimeSharedCoreLoad, TimeShareEntry

__all__ = ["Placement", "pin_apps", "TimeSharedCoreLoad", "TimeShareEntry"]
