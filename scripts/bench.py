#!/usr/bin/env python
"""Simulator benchmark: ticks/sec and quick-report wall time.

Measures the numbers that bound every workflow in this repo:

* **ticks_per_sec** — simulated ticks per wall second on a
  representative stack (priority and shares policies, Table-2-style mix
  on the 10-core Skylake, daemon attached), averaged over both
  policies, on the default **array** engine.  This is the hot path
  :mod:`repro.sim.kernel` / :mod:`repro.sim.soa` optimise.
* **scalar_ticks_per_sec** — the same stacks on the scalar reference
  engine (:mod:`repro.sim.chip` stepping core by core).  The scalar
  engine is the semantic ground truth the array kernel must match
  bit-for-bit, so its speed still matters: every fault gate and every
  equivalence test runs it.
* **array_speedup** — ``ticks_per_sec / scalar_ticks_per_sec`` on the
  identical configs and seeds: the batching win in isolation, immune to
  machine-to-machine speed differences.
* **cluster_ticks_per_sec** — aggregate node-ticks per wall second of
  the canonical four-node cluster under the arbiter's epoch loop
  (:mod:`repro.cluster`), in-process stacked stepping (array engine).
  Guards the cluster path's per-epoch node rebuild/condense overhead.
* **fleet_ticks_per_sec** — nominal node-ticks per wall second of a
  128-node diurnal fleet (:mod:`repro.fleet`), idle-skipped ticks
  included: the diurnal schedule leaves most nodes idle, the stacked
  stepper skips them, and this metric guards exactly that sparsity win
  plus the hierarchical arbitration overhead.
* **fleet_arbitration_ms** — mean wall milliseconds per
  ``FleetArbiter.rebalance`` over a synthetic steady-state
  1,024-node fleet where only ~2 % of nodes move demand per epoch,
  alongside ``fleet_arbitration_full_ms`` (the same epochs with the
  dirty-subtree cache disabled) and ``fleet_arbitration_speedup`` —
  the incremental win the fleet design doc promises, measured.
* **trust_overhead_pct** — percent wall-clock overhead the telemetry
  validation layer (demand validator screen + trust bookkeeping) adds
  to a full 1,024-node arbitration epoch, measured by stepping the
  identical steady report stream through a real arbiter and one with
  ``validator = None`` (the break-glass mode that takes reports at
  face value) in lockstep.  Both sides run the full (non-incremental)
  water-fill: the incremental fast path skips most claim work by
  design, so dividing the validator's fixed per-report cost by its
  much smaller denominator would gate the dirty-subtree cache's win,
  not validation's cost.  ``--check`` fails when this exceeds
  :data:`TRUST_OVERHEAD_LIMIT_PCT`.
* **report_quick_s** — wall time of ``generate_report(quick=True)``
  with a cold cache and one worker: the end-to-end cost of the thing a
  user actually runs.

Each throughput metric carries an engine label in the ``engines`` map
of ``BENCH_sim.json`` so the committed trajectory records which engine
produced each number.

``python scripts/bench.py`` writes the committed baseline
``BENCH_sim.json``; ``--check`` re-measures the array-engine
ticks/sec metrics and exits nonzero when any regresses more than
30 % against that baseline, or when the trust overhead exceeds its
absolute limit (the chaos-smoke CI path runs this).  On a
gate failure the check re-measures the scalar engine too and prints
both engines' throughputs, so the log says whether the array kernel
itself regressed or the underlying simulator model got slower.
``--skip-report`` skips the slow report measurement and carries the
previous value forward.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.config import AppSpec, ExperimentConfig, Priority, build_stack

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_sim.json"

#: fail --check when ticks/sec drops more than this vs the baseline.
REGRESSION_TOLERANCE = 0.30

#: simulated seconds per policy for the ticks/sec measurement.
SIM_SECONDS = 20.0
TICK_S = 5e-3

#: simulated seconds for the cluster measurement (two arbiter epochs
#: at the default 10 s epoch).
CLUSTER_SIM_SECONDS = 20.0

#: fleet throughput grid: 2 rows x 4 racks x 16 nodes = 128 nodes.
FLEET_GRID = (2, 4, 16)

#: arbitration-latency grid: 4 rows x 8 racks x 32 nodes = 1,024 nodes.
FLEET_ARB_GRID = (4, 8, 32)

#: epochs timed for the arbitration-latency measurement (after warmup).
FLEET_ARB_EPOCHS = 8

#: racks whose nodes move demand per steady-state epoch (~3 % of the
#: fleet, localized the way real load shifts are: a spike rolls
#: through one rack while the rest of the fleet jitters sub-quantum).
FLEET_ARB_CHURN_RACKS = 1

#: --check fails when telemetry validation costs more than this
#: percentage of a full 1,024-node arbitration epoch.
TRUST_OVERHEAD_LIMIT_PCT = 5.0

#: lockstep rounds for the trust overhead.  Each round times
#: :data:`TRUST_OVERHEAD_ROUND_EPOCHS` epochs on both arbiters back to
#: back (one validated-minus-unvalidated delta per epoch, both sides
#: under the same instantaneous machine load) and condenses to a
#: median-delta overhead; the *minimum* round is the reported cost.
#: Interference from neighbors is one-sided — it can only make the
#: validation layer look more expensive, never cheaper — so the
#: quietest round estimates the intrinsic cost, the same reasoning
#: behind ``timeit``'s min-over-repeats doctrine.
TRUST_OVERHEAD_ROUNDS = 8

#: lockstep epoch pairs timed per trust-overhead round.
TRUST_OVERHEAD_ROUND_EPOCHS = 24

#: which engine produced each committed throughput metric.
METRIC_ENGINES = {
    "ticks_per_sec": "array",
    "scalar_ticks_per_sec": "scalar",
    "array_speedup": "array/scalar",
    "cluster_ticks_per_sec": "array",
    "fleet_ticks_per_sec": "array",
    "fleet_arbitration_ms": "arbiter-only",
    "trust_overhead_pct": "arbiter-only",
}


def _bench_config(policy: str, engine: str) -> ExperimentConfig:
    """A representative stack: 4 HP + 4 LP apps under a 50 W limit."""
    specs = (
        (AppSpec("cactusBSSN", shares=75.0, priority=Priority.HIGH),) * 2
        + (AppSpec("leela", shares=100.0, priority=Priority.HIGH),) * 2
        + (AppSpec("cactusBSSN", shares=25.0, priority=Priority.LOW),) * 2
        + (AppSpec("leela", shares=50.0, priority=Priority.LOW),) * 2
    )
    return ExperimentConfig(
        platform="skylake",
        policy=policy,
        limit_w=50.0,
        apps=specs,
        tick_s=TICK_S,
        engine=engine,
    )


def measure_ticks_per_sec(
    sim_seconds: float = SIM_SECONDS,
    engine: str = "array",
) -> float:
    """Mean ticks/sec across a priority and a frequency-shares stack.

    Both engines run the identical configs (same seeds, same policies),
    so ``measure_ticks_per_sec(engine="array") /
    measure_ticks_per_sec(engine="scalar")`` is a like-for-like
    speedup.
    """
    rates = []
    for policy in ("priority", "frequency-shares"):
        stack = build_stack(_bench_config(policy, engine))
        # warm up allocations and caches outside the timed region
        stack.engine.run(1.0)
        n_ticks = int(round(sim_seconds / TICK_S))
        start = time.perf_counter()
        stack.engine.run_ticks(n_ticks)
        rates.append(n_ticks / (time.perf_counter() - start))
    return sum(rates) / len(rates)


def measure_cluster_ticks_per_sec(
    sim_seconds: float = CLUSTER_SIM_SECONDS,
    engine: str = "array",
) -> float:
    """Aggregate node-ticks/sec of the canonical 4-node cluster.

    In-process stepping (``jobs=1``) so the number measures per-node
    simulation plus arbiter/condense overhead, not fork fan-out.  With
    the array engine that path is the stacked stepper: every node's
    chip advances as one batch per epoch.
    """
    from repro.cluster import run_cluster
    from repro.experiments.cluster_exp import default_cluster_config

    config = dataclasses.replace(default_cluster_config(), engine=engine)
    node_ticks = len(config.nodes) * int(round(sim_seconds / config.tick_s))
    start = time.perf_counter()
    run_cluster(config, sim_seconds, jobs=1)
    return node_ticks / (time.perf_counter() - start)


def measure_fleet_ticks_per_sec(engine: str = "array") -> float:
    """Nominal node-ticks/sec of a 128-node idle-heavy diurnal fleet.

    One short diurnal period at 10–30 % activation: most of the fleet
    is idle every epoch and the stacked stepper must skip it.  The
    numerator counts every node's nominal ticks — idle-skipped ones
    included — because the skip *is* the throughput being guarded; the
    wall clock also pays the hierarchical refill every epoch.
    """
    from repro.cluster import run_cluster
    from repro.experiments.fleet_exp import fleet_config
    from repro.fleet import DiurnalSchedule

    schedule = DiurnalSchedule(
        period_epochs=8,
        base_active_fraction=0.1,
        peak_active_fraction=0.3,
        row_phase_epochs=2,
    )
    config = fleet_config(
        *FLEET_GRID, schedule=schedule, epoch_ticks=5, engine=engine
    )
    duration_s = schedule.period_epochs * config.epoch_s
    node_ticks = len(config.nodes) * int(round(duration_s / config.tick_s))
    start = time.perf_counter()
    run_cluster(config, duration_s, jobs=1)
    return node_ticks / (time.perf_counter() - start)


def _fleet_arb_reports(config, epoch: int, movers: range):
    """Steady grid-stable demand with a rolling rack of movers.

    Bases are multiples of 0.4 W, so after the arbiter's 1.25x demand
    slack they land exactly on the 0.5 W claim quantum and a clean rack
    re-quantizes to the identical fill; movers step by a whole number
    of grid cells, dirtying only their own rack.
    """
    from repro.cluster.node import NodeEpochReport

    reports = {}
    for index, spec in enumerate(config.nodes):
        power = 16.0 + 0.4 * (index % 40)
        if index in movers:
            power += 6.0
        reports[spec.name] = NodeEpochReport(
            name=spec.name,
            epoch=epoch,
            t_end_s=(epoch + 1) * 1.0,
            cap_w=45.0,
            mean_power_w=power,
            throttle_pressure=0.2,
            headroom_w=max(45.0 - power, 0.0),
            parked_cores=0,
            quarantined_cores=0,
            samples=10,
        )
    return reports


def measure_fleet_arbitration_ms() -> dict:
    """Mean rebalance wall-ms at 1,024 nodes: incremental vs full.

    The same steady-state epoch stream (one rack's worth of demand
    movement rolling through the fleet per epoch, everything else
    jittering below the claim quantum) drives two FleetArbiters — one
    with the dirty-subtree cache, one with ``incremental = False``
    re-water-filling every rack — so the speedup is the incremental
    refill's win in isolation.
    """
    from repro.experiments.fleet_exp import fleet_config
    from repro.fleet.arbiter import FleetArbiter

    config = fleet_config(
        *FLEET_ARB_GRID,
        schedule=None,
        budget_w=FLEET_ARB_GRID[0] * FLEET_ARB_GRID[1]
        * FLEET_ARB_GRID[2] * 24.0,  # contended: below mean demand-hi
    )
    names = [spec.name for spec in config.nodes]
    n = len(names)
    timings = {}
    for label, incremental in (("incremental", True), ("full", False)):
        arbiter = FleetArbiter(config)
        arbiter.incremental = incremental
        arbiter.admit(names)
        elapsed = 0.0
        rack_size = FLEET_ARB_GRID[2]
        n_racks = n // rack_size
        for epoch in range(2 + FLEET_ARB_EPOCHS):
            first = (epoch % n_racks) * rack_size
            movers = range(first, first + FLEET_ARB_CHURN_RACKS * rack_size)
            reports = _fleet_arb_reports(config, epoch, movers)
            start = time.perf_counter()
            arbiter.rebalance(epoch, reports)
            if epoch >= 2:  # first epochs build the caches: warmup
                elapsed += time.perf_counter() - start
        timings[label] = 1e3 * elapsed / FLEET_ARB_EPOCHS
    timings["speedup"] = (
        timings["full"] / timings["incremental"]
        if timings["incremental"] > 0 else float("inf")
    )
    return timings


def measure_trust_overhead_pct() -> float:
    """Validated vs. unvalidated arbitration at 1,024 nodes, percent.

    The same steady report stream as the arbitration-latency
    measurement drives two FleetArbiters in lockstep: one real, one
    with ``validator = None`` — the arbiter's break-glass mode that
    takes reports at face value and skips all trust bookkeeping — so
    the difference is exactly what the telemetry-robustness layer
    costs per epoch.  Both sides water-fill every rack
    (``incremental = False``): validation cost is fixed per report,
    and the full pass is the work arbitration actually performs for
    1,024 fresh demand moves, while the incremental path's
    denominator measures the dirty-subtree cache instead.

    Every epoch is timed on both arbiters back to back (order
    alternating per epoch), yielding one per-epoch delta under the
    same instantaneous machine load.  Each of
    :data:`TRUST_OVERHEAD_ROUNDS` rounds condenses its epochs to a
    median-delta overhead, and the minimum round wins: neighbor
    interference on a shared machine is one-sided — the validator's
    extra memory traffic only ever gets *more* expensive under cache
    contention — so the quietest round is the intrinsic-cost
    estimate.  The collector is paused while timing (the validated
    side allocates more, so GC pauses would bias the delta, the same
    reason ``timeit`` disables GC).
    """
    import gc
    import statistics

    from repro.experiments.fleet_exp import fleet_config
    from repro.fleet.arbiter import FleetArbiter

    config = fleet_config(
        *FLEET_ARB_GRID,
        schedule=None,
        budget_w=FLEET_ARB_GRID[0] * FLEET_ARB_GRID[1]
        * FLEET_ARB_GRID[2] * 24.0,
    )
    names = [spec.name for spec in config.nodes]
    rack_size = FLEET_ARB_GRID[2]
    n_racks = len(names) // rack_size

    def make(validated: bool) -> FleetArbiter:
        arbiter = FleetArbiter(config)
        arbiter.incremental = False
        if not validated:
            arbiter.validator = None
        arbiter.admit(names)
        return arbiter

    plain = make(validated=False)
    checked = make(validated=True)

    def step(arbiter: FleetArbiter, epoch: int, reports) -> float:
        start = time.perf_counter()
        arbiter.rebalance(epoch, reports)
        return time.perf_counter() - start

    rounds: list[float] = []
    epoch = 0
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_no in range(TRUST_OVERHEAD_ROUNDS):
            deltas: list[float] = []
            bases: list[float] = []
            warmup = 2 if round_no == 0 else 0
            for i in range(warmup + TRUST_OVERHEAD_ROUND_EPOCHS):
                first = (epoch % n_racks) * rack_size
                movers = range(
                    first, first + FLEET_ARB_CHURN_RACKS * rack_size
                )
                reports = _fleet_arb_reports(config, epoch, movers)
                if epoch % 2:
                    t_checked = step(checked, epoch, reports)
                    t_plain = step(plain, epoch, dict(reports))
                else:
                    t_plain = step(plain, epoch, reports)
                    t_checked = step(checked, epoch, dict(reports))
                if i >= warmup:  # first epochs seed anchors
                    deltas.append(t_checked - t_plain)
                    bases.append(t_plain)
                epoch += 1
            rounds.append(
                100.0 * statistics.median(deltas)
                / statistics.median(bases)
            )
            gc.collect()
    finally:
        if gc_was_enabled:
            gc.enable()
    return min(rounds)


def measure_report_quick_s() -> float:
    """Wall time of a quick report, cold cache, one worker."""
    from repro.experiments.full_report import generate_report

    os.environ["REPRO_NO_CACHE"] = "1"
    try:
        start = time.perf_counter()
        generate_report(quick=True, use_cache=False)
        return time.perf_counter() - start
    finally:
        os.environ.pop("REPRO_NO_CACHE", None)


def git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def check_regression(baseline_path: Path = BASELINE_PATH) -> int:
    """Exit code 0 when both ticks/sec metrics are within tolerance.

    On failure the offending metric is re-measured on the scalar
    engine and both engines' throughputs are printed — a collapsed
    array speedup means the batching kernel regressed, while both
    engines slowing together points at the simulator model itself.
    """
    try:
        baseline = json.loads(baseline_path.read_text())
        baselines = {
            "ticks/sec": float(baseline["ticks_per_sec"]),
            "cluster ticks/sec": float(baseline["cluster_ticks_per_sec"]),
            "fleet ticks/sec": float(baseline["fleet_ticks_per_sec"]),
        }
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"bench: no usable baseline at {baseline_path}: {exc}",
              file=sys.stderr)
        return 2
    scalar_measures = {
        "ticks/sec": measure_ticks_per_sec,
        "cluster ticks/sec": measure_cluster_ticks_per_sec,
        "fleet ticks/sec": measure_fleet_ticks_per_sec,
    }
    measured = {
        "ticks/sec": measure_ticks_per_sec(),
        "cluster ticks/sec": measure_cluster_ticks_per_sec(),
        "fleet ticks/sec": measure_fleet_ticks_per_sec(),
    }
    rc = 0
    for name, baseline_rate in baselines.items():
        rate = measured[name]
        floor = baseline_rate * (1.0 - REGRESSION_TOLERANCE)
        status = "ok" if rate >= floor else "FAIL"
        print(f"[{status}] {name} {rate:,.0f} vs baseline "
              f"{baseline_rate:,.0f} (floor {floor:,.0f}, "
              f"git {baseline.get('git', '?')})")
        if rate < floor:
            scalar_rate = scalar_measures[name](engine="scalar")
            speedup = rate / scalar_rate if scalar_rate > 0 else float("inf")
            print(f"       {name} by engine: array {rate:,.0f}, "
                  f"scalar {scalar_rate:,.0f} "
                  f"(array speedup {speedup:.1f}x)")
            rc = 1
    overhead = measure_trust_overhead_pct()
    status = "ok" if overhead <= TRUST_OVERHEAD_LIMIT_PCT else "FAIL"
    print(f"[{status}] trust overhead {overhead:.2f}% of a full "
          f"1,024-node arbitration epoch "
          f"(limit {TRUST_OVERHEAD_LIMIT_PCT:.1f}%)")
    if overhead > TRUST_OVERHEAD_LIMIT_PCT:
        rc = 1
    return rc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="compare ticks/sec against the committed "
                             "baseline; fail on >30%% regression")
    parser.add_argument("--skip-report", action="store_true",
                        help="skip the quick-report timing (reuse the "
                             "baseline's value)")
    parser.add_argument("--output", type=Path, default=BASELINE_PATH,
                        help="where to write the result JSON")
    args = parser.parse_args(argv)

    if args.check:
        return check_regression()

    array_rate = measure_ticks_per_sec(engine="array")
    scalar_rate = measure_ticks_per_sec(engine="scalar")
    fleet_arb = measure_fleet_arbitration_ms()
    result = {
        "ticks_per_sec": round(array_rate, 1),
        "scalar_ticks_per_sec": round(scalar_rate, 1),
        "array_speedup": round(array_rate / scalar_rate, 2),
        "cluster_ticks_per_sec": round(
            measure_cluster_ticks_per_sec(engine="array"), 1
        ),
        "fleet_ticks_per_sec": round(
            measure_fleet_ticks_per_sec(engine="array"), 1
        ),
        "fleet_arbitration_ms": round(fleet_arb["incremental"], 3),
        "fleet_arbitration_full_ms": round(fleet_arb["full"], 3),
        "fleet_arbitration_speedup": round(fleet_arb["speedup"], 2),
        "trust_overhead_pct": round(measure_trust_overhead_pct(), 2),
        "report_quick_s": None,
        "engines": METRIC_ENGINES,
        "git": git_revision(),
    }
    print(f"ticks/sec: {result['ticks_per_sec']:,.0f} (array)")
    print(f"ticks/sec: {result['scalar_ticks_per_sec']:,.0f} (scalar)")
    print(f"array speedup: {result['array_speedup']:.1f}x")
    print(f"cluster ticks/sec: {result['cluster_ticks_per_sec']:,.0f} "
          f"(array, stacked)")
    print(f"fleet ticks/sec: {result['fleet_ticks_per_sec']:,.0f} "
          f"(array, 128 nodes, idle-skipped ticks included)")
    print(f"fleet arbitration: {result['fleet_arbitration_ms']:.2f} ms "
          f"incremental vs {result['fleet_arbitration_full_ms']:.2f} ms "
          f"full at 1,024 nodes "
          f"({result['fleet_arbitration_speedup']:.1f}x)")
    print(f"trust overhead: {result['trust_overhead_pct']:.2f}% of a "
          f"full 1,024-node arbitration epoch "
          f"(limit {TRUST_OVERHEAD_LIMIT_PCT:.1f}%)")
    if args.skip_report:
        try:
            previous = json.loads(args.output.read_text())
            result["report_quick_s"] = previous.get("report_quick_s")
        except (OSError, ValueError):
            pass
    else:
        result["report_quick_s"] = round(measure_report_quick_s(), 1)
        print(f"quick report: {result['report_quick_s']:.0f} s")
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
