#!/usr/bin/env python
"""repro-lint gate: static contract analysis over the source tree.

Thin wrapper around :mod:`repro.analysis.cli` so CI (and pre-commit
habits) can run the linter exactly like the chaos smoke gate::

    PYTHONPATH=src python scripts/lint.py --check
    PYTHONPATH=src python scripts/lint.py --changed
    PYTHONPATH=src python scripts/lint.py --explain determinism
    PYTHONPATH=src python scripts/lint.py --write-baseline

``--check`` is the CI mode: any finding not covered by an inline
``# repro-lint: disable=<rule> — <reason>`` comment *and* the committed
``.repro-lint-baseline.json`` ledger fails the run, as does a stale or
reasonless suppression.  Exits nonzero on violations.

``--changed`` is the incremental pre-commit mode: lint only the Python
files under ``src/`` that differ from the merge base with ``main``
(plus untracked ones).  The whole-program rules see just the changed
files, so cross-module reachability is reduced to what the diff
touches — fast feedback, not the CI gate; run ``--check`` for the
sound whole-tree pass.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

# runnable without PYTHONPATH=src: resolve the in-repo package
_REPO = Path(__file__).resolve().parent.parent
_SRC = _REPO / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.cli import run_lint  # noqa: E402


def _git_lines(args: list[str]) -> list[str]:
    result = subprocess.run(
        ["git", *args], cwd=_REPO, capture_output=True, text=True,
    )
    if result.returncode != 0:
        return []
    return [line for line in result.stdout.splitlines() if line]


def changed_python_files() -> list[str] | None:
    """Repo-relative ``src/**.py`` paths that differ from the merge base.

    The base is the merge base with ``origin/main`` when that ref
    exists, else local ``main``; untracked files count as changed.
    Returns ``None`` when git itself is unusable (not a repo, no
    refs) so the caller can fall back to a full lint.
    """
    base = None
    for ref in ("origin/main", "main"):
        lines = _git_lines(["merge-base", "HEAD", ref])
        if lines:
            base = lines[0]
            break
    if base is None:
        return None
    changed = set(_git_lines(["diff", "--name-only", base, "--"]))
    changed.update(
        _git_lines(["ls-files", "--others", "--exclude-standard"])
    )
    return sorted(
        path for path in changed
        if path.endswith(".py")
        and path.startswith("src/")
        and (_REPO / path).exists()
    )


def main(argv: list[str]) -> int:
    if "--changed" in argv:
        argv = [arg for arg in argv if arg != "--changed"]
        files = changed_python_files()
        if files is None:
            print(
                "lint --changed: no merge base with main; "
                "linting the full tree",
                file=sys.stderr,
            )
        elif not files:
            print("lint --changed: no Python files changed under src/")
            return 0
        else:
            argv = argv + files
    return run_lint(argv)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
