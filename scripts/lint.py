#!/usr/bin/env python
"""repro-lint gate: static contract analysis over the source tree.

Thin wrapper around :mod:`repro.analysis.cli` so CI (and pre-commit
habits) can run the linter exactly like the chaos smoke gate::

    PYTHONPATH=src python scripts/lint.py --check
    PYTHONPATH=src python scripts/lint.py --explain determinism
    PYTHONPATH=src python scripts/lint.py --write-baseline

``--check`` is the CI mode: any finding not covered by an inline
``# repro-lint: disable=<rule> — <reason>`` comment *and* the committed
``.repro-lint-baseline.json`` ledger fails the run, as does a stale or
reasonless suppression.  Exits nonzero on violations.
"""

from __future__ import annotations

import sys
from pathlib import Path

# runnable without PYTHONPATH=src: resolve the in-repo package
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.analysis.cli import run_lint  # noqa: E402


if __name__ == "__main__":
    sys.exit(run_lint(sys.argv[1:]))
